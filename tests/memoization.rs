//! Memoization behaviour of the CAL checker, sequential and parallel:
//! the failed-state memo table must actually fire on backtracking-heavy
//! histories, and turning it off must never change a verdict.

use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::par::check_cal_par_with;
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;

const O: ObjectId = ObjectId(0);

/// `k` pairwise-concurrent identical successful exchanges. For odd `k`
/// one operation is always left unmatched, so every maximal matching
/// fails and the DFS revisits the same residue states exponentially
/// often — the adversarial case the memo table exists for.
fn hard_history(k: u32) -> History {
    let mut actions = Vec::new();
    for t in 0..k {
        actions.push(Action::invoke(ThreadId(t), O, Method("exchange"), Value::Int(1)));
    }
    for t in 0..k {
        actions.push(Action::response(ThreadId(t), O, Method("exchange"), Value::Pair(true, 1)));
    }
    History::from_actions(actions)
}

#[test]
fn memo_fires_on_backtracking_heavy_history() {
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let out = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert!(
        out.stats.memo_hits > 0,
        "expected memo hits on the adversarial history, stats: {:?}",
        out.stats
    );
}

#[test]
fn memo_fires_in_the_parallel_checker_too() {
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let options = CheckOptions { threads: 4, ..CheckOptions::default() };
    let out = check_cal_par_with(&h, &spec, &options).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert!(
        out.stats.memo_hits > 0,
        "expected shared-memo hits across workers, stats: {:?}",
        out.stats
    );
}

#[test]
fn disabling_memoization_never_changes_the_verdict() {
    let spec = ExchangerSpec::new(O);
    for k in [1u32, 2, 3, 5, 7] {
        let h = hard_history(k);
        let on = CheckOptions::default();
        let off = CheckOptions { memoize: false, ..CheckOptions::default() };
        let with_memo = check_cal_with(&h, &spec, &on).unwrap();
        let without = check_cal_with(&h, &spec, &off).unwrap();
        assert_eq!(
            matches!(with_memo.verdict, Verdict::Cal(_)),
            matches!(without.verdict, Verdict::Cal(_)),
            "k={k}: memoize on/off diverged sequentially"
        );
        for threads in [2usize, 8] {
            let par_on = CheckOptions { threads, ..CheckOptions::default() };
            let par_off = CheckOptions { threads, memoize: false, ..CheckOptions::default() };
            let p_with = check_cal_par_with(&h, &spec, &par_on).unwrap();
            let p_without = check_cal_par_with(&h, &spec, &par_off).unwrap();
            assert_eq!(
                matches!(with_memo.verdict, Verdict::Cal(_)),
                matches!(p_with.verdict, Verdict::Cal(_)),
                "k={k}, threads={threads}: parallel verdict diverged from sequential"
            );
            assert_eq!(
                matches!(p_with.verdict, Verdict::Cal(_)),
                matches!(p_without.verdict, Verdict::Cal(_)),
                "k={k}, threads={threads}: memoize on/off diverged in parallel"
            );
        }
    }
}

#[test]
fn memoization_saves_work() {
    // Not a performance test per se, but the memo table should strictly
    // reduce explored nodes on the adversarial history.
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let on = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    let off_options = CheckOptions { memoize: false, ..CheckOptions::default() };
    let off = check_cal_with(&h, &spec, &off_options).unwrap();
    assert!(
        on.stats.nodes < off.stats.nodes,
        "memoized search explored {} nodes, unmemoized {}",
        on.stats.nodes,
        off.stats.nodes
    );
}
