//! Memoization behaviour of all three checkers, sequential and parallel:
//! the failed-state memo table must actually fire on backtracking-heavy
//! histories, turning it off must never change a verdict, and the
//! [`CountingSink`] must account for every probe — hits plus misses
//! equal charged nodes, with inserts bounded by misses.

use std::sync::Arc;

use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::interval::check_interval_with;
use cal::core::obs::{CountingSink, StatsSink};
use cal::core::par::check_cal_par_with;
use cal::core::seqlin::check_linearizable_with;
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{read_op, write_op, RegisterSpec};
use cal::specs::snapshot::{view, write_snapshot_op, WriteSnapshotSpec};

const O: ObjectId = ObjectId(0);

/// `k` pairwise-concurrent identical successful exchanges. For odd `k`
/// one operation is always left unmatched, so every maximal matching
/// fails and the DFS revisits the same residue states exponentially
/// often — the adversarial case the memo table exists for.
fn hard_history(k: u32) -> History {
    let mut actions = Vec::new();
    for t in 0..k {
        actions.push(Action::invoke(ThreadId(t), O, Method("exchange"), Value::Int(1)));
    }
    for t in 0..k {
        actions.push(Action::response(ThreadId(t), O, Method("exchange"), Value::Pair(true, 1)));
    }
    History::from_actions(actions)
}

#[test]
fn memo_fires_on_backtracking_heavy_history() {
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let out = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert!(
        out.stats.memo_hits > 0,
        "expected memo hits on the adversarial history, stats: {:?}",
        out.stats
    );
}

#[test]
fn memo_fires_in_the_parallel_checker_too() {
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let options = CheckOptions { threads: 4, ..CheckOptions::default() };
    let out = check_cal_par_with(&h, &spec, &options).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert!(
        out.stats.memo_hits > 0,
        "expected shared-memo hits across workers, stats: {:?}",
        out.stats
    );
}

#[test]
fn disabling_memoization_never_changes_the_verdict() {
    let spec = ExchangerSpec::new(O);
    for k in [1u32, 2, 3, 5, 7] {
        let h = hard_history(k);
        let on = CheckOptions::default();
        let off = CheckOptions { memoize: false, ..CheckOptions::default() };
        let with_memo = check_cal_with(&h, &spec, &on).unwrap();
        let without = check_cal_with(&h, &spec, &off).unwrap();
        assert_eq!(
            matches!(with_memo.verdict, Verdict::Cal(_)),
            matches!(without.verdict, Verdict::Cal(_)),
            "k={k}: memoize on/off diverged sequentially"
        );
        for threads in [2usize, 8] {
            let par_on = CheckOptions { threads, ..CheckOptions::default() };
            let par_off = CheckOptions { threads, memoize: false, ..CheckOptions::default() };
            let p_with = check_cal_par_with(&h, &spec, &par_on).unwrap();
            let p_without = check_cal_par_with(&h, &spec, &par_off).unwrap();
            assert_eq!(
                matches!(with_memo.verdict, Verdict::Cal(_)),
                matches!(p_with.verdict, Verdict::Cal(_)),
                "k={k}, threads={threads}: parallel verdict diverged from sequential"
            );
            assert_eq!(
                matches!(p_with.verdict, Verdict::Cal(_)),
                matches!(p_without.verdict, Verdict::Cal(_)),
                "k={k}, threads={threads}: memoize on/off diverged in parallel"
            );
        }
    }
}

/// `k` pairwise-concurrent writes of distinct values plus one concurrent
/// read of a never-written value: unsatisfiable, and distinct orders of
/// the same write set converge on the same `(matched, value)` residue
/// whenever their final writes agree — memo fodder for the seqlin
/// domain.
fn hard_seq_history(k: usize) -> History {
    let writes: Vec<_> = (0..k).map(|i| write_op(O, ThreadId(i as u32), i as i64)).collect();
    let read = read_op(O, ThreadId(k as u32), 99);
    let mut actions = Vec::new();
    actions.extend(writes.iter().map(|op| op.invocation()));
    actions.push(read.invocation());
    actions.extend(writes.iter().map(|op| op.response()));
    actions.push(read.response());
    History::from_actions(actions)
}

/// `k` pairwise-concurrent `write_snapshot(i) ▷ {i}` calls: at most one
/// can close with a singleton view, so `k ≥ 2` is unsatisfiable and the
/// interval point search revisits shared `(done, open, state)` residues.
fn hard_interval_history(k: usize) -> History {
    let ops: Vec<_> = (0..k)
        .map(|i| write_snapshot_op(O, ThreadId(i as u32), i as i64, view(&[i as i64])))
        .collect();
    let mut actions = Vec::new();
    actions.extend(ops.iter().map(|op| op.invocation()));
    actions.extend(ops.iter().map(|op| op.response()));
    History::from_actions(actions)
}

/// Runs a sequential memoized check with a [`CountingSink`] attached and
/// asserts the memo accounting invariants shared by every domain on the
/// engine: the memo actually fired, every charged node was probed
/// exactly once (hits + misses = nodes), and inserts happened but never
/// outnumbered misses (only a missed state can be newly refuted).
fn assert_memo_accounting(sink: &CountingSink, nodes: u64, what: &str) {
    assert!(sink.memo_hits() > 0, "{what}: expected memo hits, got none");
    assert!(sink.memo_inserts() > 0, "{what}: expected memo inserts, got none");
    assert_eq!(
        sink.memo_hits() + sink.memo_misses(),
        nodes,
        "{what}: every charged node must be probed exactly once"
    );
    assert!(
        sink.memo_inserts() <= sink.memo_misses(),
        "{what}: inserts ({}) cannot exceed misses ({})",
        sink.memo_inserts(),
        sink.memo_misses()
    );
}

#[test]
fn memo_fires_in_the_seqlin_checker() {
    let h = hard_seq_history(6);
    let spec = RegisterSpec::new(O);
    let sink = Arc::new(CountingSink::new());
    let options = CheckOptions {
        sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let out = check_linearizable_with(&h, &spec, &options).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert_memo_accounting(&sink, out.stats.nodes, "seqlin");
    assert_eq!(sink.memo_hits(), out.stats.memo_hits, "sink and stats must agree");

    let off = CheckOptions { memoize: false, ..CheckOptions::default() };
    let without = check_linearizable_with(&h, &spec, &off).unwrap();
    assert!(matches!(without.verdict, Verdict::NotCal), "memoize off changed the verdict");
    assert!(
        out.stats.nodes < without.stats.nodes,
        "seqlin memo saved nothing: {} vs {} nodes",
        out.stats.nodes,
        without.stats.nodes
    );
}

#[test]
fn memo_fires_in_the_interval_checker() {
    let h = hard_interval_history(6);
    let spec = WriteSnapshotSpec::new(O, 3);
    let sink = Arc::new(CountingSink::new());
    let options = CheckOptions {
        sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let out = check_interval_with(&h, &spec, &options).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert_memo_accounting(&sink, out.stats.nodes, "interval");
    assert_eq!(sink.memo_hits(), out.stats.memo_hits, "sink and stats must agree");

    let off = CheckOptions { memoize: false, ..CheckOptions::default() };
    let without = check_interval_with(&h, &spec, &off).unwrap();
    assert!(matches!(without.verdict, Verdict::NotCal), "memoize off changed the verdict");
    assert!(
        out.stats.nodes < without.stats.nodes,
        "interval memo saved nothing: {} vs {} nodes",
        out.stats.nodes,
        without.stats.nodes
    );
}

#[test]
fn cal_memo_accounting_with_counting_sink() {
    // The original CAL family through the same accounting lens. Symmetry
    // is left on (the default): canonicalized keys must still satisfy
    // one-probe-per-node exactly.
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let sink = Arc::new(CountingSink::new());
    let options = CheckOptions {
        sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let out = check_cal_with(&h, &spec, &options).unwrap();
    assert!(matches!(out.verdict, Verdict::NotCal));
    assert_memo_accounting(&sink, out.stats.nodes, "cal");
}

#[test]
fn memoization_saves_work() {
    // Not a performance test per se, but the memo table should strictly
    // reduce explored nodes on the adversarial history.
    let h = hard_history(7);
    let spec = ExchangerSpec::new(O);
    let on = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    let off_options = CheckOptions { memoize: false, ..CheckOptions::default() };
    let off = check_cal_with(&h, &spec, &off_options).unwrap();
    assert!(
        on.stats.nodes < off.stats.nodes,
        "memoized search explored {} nodes, unmemoized {}",
        on.stats.nodes,
        off.stats.nodes
    );
}
