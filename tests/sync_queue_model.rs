//! E9 — the synchronous queue client, verified in the simulator via `F_Q`
//! and on real concurrent runs.

use cal::core::agree::agrees_bool;
use cal::core::check::is_cal;
use cal::core::compose::TraceMap;
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::objects::recorded::{run_threads, RecordedSyncQueue};
use cal::sim::models::sync_queue::SyncQueueModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::sync_queue::{FQMap, SyncQueueSpec};
use cal::specs::vocab::{PUT, TAKE};

const Q: ObjectId = ObjectId(0);
const E: ObjectId = ObjectId(10);

fn put(v: i64) -> OpRequest {
    OpRequest::new(PUT, Value::Int(v))
}

fn take() -> OpRequest {
    OpRequest::new(TAKE, Value::Unit)
}

#[test]
fn producer_consumer_exhaustive() {
    let model = SyncQueueModel::new(Q, E, 0);
    let fq = FQMap::new(Q, E);
    let spec = SyncQueueSpec::new(Q);
    let w = Workload::new(vec![vec![put(5)], vec![take()]]);
    let mut n = 0;
    let mut transferred = false;
    Explorer::new(&model, w).run(|e| {
        n += 1;
        let mapped = fq.apply(&e.trace);
        assert!(spec.accepts(&mapped));
        assert!(agrees_bool(&e.history, &mapped));
        if mapped.elements().iter().any(|el| el.len() == 2) {
            transferred = true;
        }
    });
    assert!(n > 5);
    assert!(transferred, "some schedule must transfer");
}

#[test]
fn mixed_roles_exhaustive() {
    let model = SyncQueueModel::new(Q, E, 0);
    let fq = FQMap::new(Q, E);
    let spec = SyncQueueSpec::new(Q);
    let w = Workload::new(vec![vec![put(5)], vec![take()], vec![take()]]);
    let mut n = 0;
    Explorer::new(&model, w).max_paths(100_000).run(|e| {
        n += 1;
        let mapped = fq.apply(&e.trace);
        assert!(spec.accepts(&mapped), "illegal {mapped} for {}", e.history);
        assert!(agrees_bool(&e.history, &mapped));
    });
    assert!(n > 50);
}

#[test]
fn same_role_pairs_never_transfer() {
    let model = SyncQueueModel::new(Q, E, 0);
    let fq = FQMap::new(Q, E);
    let w = Workload::new(vec![vec![put(1)], vec![put(2)]]);
    Explorer::new(&model, w).run(|e| {
        let mapped = fq.apply(&e.trace);
        assert!(
            mapped.elements().iter().all(|el| el.len() == 1),
            "two puts transferred: {mapped}"
        );
        for op in e.history.operations() {
            assert_eq!(op.ret, Value::Bool(false));
        }
    });
}

#[test]
fn retrying_model_sampled() {
    let model = SyncQueueModel::new(Q, E, 2);
    let fq = FQMap::new(Q, E);
    let spec = SyncQueueSpec::new(Q);
    let w = Workload::new(vec![vec![put(5), put(6)], vec![take(), take()], vec![put(7)]]);
    Explorer::new(&model, w).sample(31, 2_000, |e| {
        let mapped = fq.apply(&e.trace);
        assert!(spec.accepts(&mapped));
        assert!(agrees_bool(&e.history, &mapped));
    });
}

#[test]
fn real_queue_history_is_cal() {
    let q = RecordedSyncQueue::new(Q, 128);
    run_threads(4, |t| {
        for i in 0..8 {
            if t.0 < 2 {
                q.try_put(t, (t.0 as i64) * 100 + i, 48);
            } else {
                q.try_take(t, 48);
            }
        }
    });
    let h = q.recorder().history();
    assert!(h.is_complete());
    assert!(is_cal(&h, &SyncQueueSpec::new(Q)).unwrap(), "real history not CAL:\n{h}");
}
