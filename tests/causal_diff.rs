//! The causal-mode differential anchor: on **totally ordered** histories
//! — the happens-before relation instantiated as
//! [`HbRelation::real_time`] — causal mode must return exactly the CAL
//! verdict, for every shipped specification family, at 1, 2 and 4
//! threads. Causal mode is the same membership search with the order
//! relation swapped underneath; when the order *is* `≺H`, nothing may
//! change. Accepting runs additionally cross-validate their witness
//! through [`witness_explains_causal`], so agreement is on evidence, not
//! just on the verdict bit.

use cal::core::causal::{check_causal_par_with, check_causal_with, witness_explains_causal};
use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::gen::interleave;
use cal::core::history::HbRelation;
use cal::core::par::check_cal_par_with;
use cal::core::spec::{CaSpec, SeqAsCa};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::kv::KvMapSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;

const O: ObjectId = ObjectId(0);

// --- history generation ----------------------------------------------------

/// One generated operation: object, method, argument, response value and
/// whether the final occurrence completes (earlier ops on a thread always
/// complete — only the last may stay pending).
type OpShape = (ObjectId, Method, Value, Value, bool);

fn arb_exchange_op() -> BoxedStrategy<OpShape> {
    (0i64..3, any::<bool>(), 0i64..3, any::<bool>())
        .prop_map(|(arg, ok, got, complete)| {
            (O, Method("exchange"), Value::Int(arg), Value::Pair(ok, got), complete)
        })
        .boxed()
}

fn arb_queue_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (O, Method("put"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (O, Method("take"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_dual_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (O, Method("push"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (O, Method("pop"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (O, Method("push"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>()).prop_map(|(ok, v, c)| {
            // Failed pops report (false, 0).
            let v = if ok { v } else { 0 };
            (O, Method("pop"), Value::Unit, Value::Pair(ok, v), c)
        }),
    ]
    .boxed()
}

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (O, Method("write"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (O, Method("read"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_counter_op() -> BoxedStrategy<OpShape> {
    (0i64..4, any::<bool>())
        .prop_map(|(n, c)| (O, Method("inc"), Value::Unit, Value::Int(n), c))
        .boxed()
}

fn arb_kv_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0u32..2, 0i64..3, any::<bool>()).prop_map(|(k, v, c)| {
            (ObjectId(k), Method("write"), Value::Int(v), Value::Unit, c)
        }),
        (0u32..2, 0i64..3, any::<bool>()).prop_map(|(k, v, c)| {
            (ObjectId(k), Method("read"), Value::Unit, Value::Int(v), c)
        }),
    ]
    .boxed()
}

/// Builds a seeded interleaving of the per-thread programs — the same
/// construction `tests/engine_invariants.rs` uses, extended with
/// per-operation objects for the multi-key kv family.
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64) -> History {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (obj, m, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t as u32), obj, m, arg));
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), obj, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(op: impl Strategy<Value = OpShape>) -> impl Strategy<Value = History> {
    (prop::collection::vec(prop::collection::vec(op, 0..4), 1..4), any::<u64>())
        .prop_map(|(threads, seed)| build_history(threads, seed))
}

// --- the differential ------------------------------------------------------

/// Checks `h` against `spec` in CAL mode and in causal mode under the
/// real-time order, at 1, 2 and 4 threads, and asserts every decided
/// verdict agrees with the sequential CAL baseline. Causal acceptances
/// must come with a witness the causal oracle confirms.
fn assert_causal_matches_cal<S>(h: &History, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let hb = HbRelation::real_time(&h.spans());
    assert!(hb.is_real_time(), "the anchor order must be recognized as total");

    let baseline = check_cal_with(h, spec, &CheckOptions::default()).expect("well-formed").verdict;
    assert!(
        !baseline.is_undecided(),
        "CAL baseline must decide tiny instances, got {baseline:?}\nhistory:\n{h}"
    );

    for threads in [1usize, 2, 4] {
        let options = CheckOptions { threads, ..CheckOptions::default() };
        let (cal, causal) = if threads == 1 {
            (
                check_cal_with(h, spec, &options).expect("well-formed").verdict,
                check_causal_with(h, spec, &hb, &options).expect("well-formed").verdict,
            )
        } else {
            (
                check_cal_par_with(h, spec, &options).expect("well-formed").verdict,
                check_causal_par_with(h, spec, &hb, &options).expect("well-formed").verdict,
            )
        };
        assert_eq!(
            baseline.is_cal(),
            cal.is_cal(),
            "CAL mode diverged from its own baseline at threads={threads}\nhistory:\n{h}"
        );
        assert_eq!(
            baseline.is_cal(),
            causal.is_cal(),
            "causal mode under real time diverged from CAL at threads={threads}: \
             {baseline:?} vs {causal:?}\nhistory:\n{h}"
        );
        if let Verdict::Cal(witness) = &causal {
            assert!(
                witness_explains_causal(h, spec, witness, &hb),
                "causal witness fails the oracle at threads={threads}\nhistory:\n{h}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn exchanger_family_agrees(h in history_of(arb_exchange_op())) {
        assert_causal_matches_cal(&h, &ExchangerSpec::new(O));
    }

    #[test]
    fn elim_array_family_agrees(h in history_of(arb_exchange_op())) {
        assert_causal_matches_cal(&h, &ElimArraySpec::new(O));
    }

    #[test]
    fn sync_queue_family_agrees(h in history_of(arb_queue_op())) {
        assert_causal_matches_cal(&h, &SyncQueueSpec::new(O));
    }

    #[test]
    fn dual_stack_family_agrees(h in history_of(arb_dual_stack_op())) {
        assert_causal_matches_cal(&h, &DualStackSpec::new(O));
    }

    #[test]
    fn stack_family_agrees(h in history_of(arb_stack_op())) {
        let spec = SeqAsCa::new(StackSpec::total(O).with_pop_universe(vec![0, 1, 2]));
        assert_causal_matches_cal(&h, &spec);
    }

    #[test]
    fn failing_stack_family_agrees(h in history_of(arb_stack_op())) {
        let spec = SeqAsCa::new(StackSpec::failing(O).with_pop_universe(vec![0, 1, 2]));
        assert_causal_matches_cal(&h, &spec);
    }

    #[test]
    fn register_family_agrees(h in history_of(arb_register_op())) {
        let spec = SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]));
        assert_causal_matches_cal(&h, &spec);
    }

    #[test]
    fn counter_family_agrees(h in history_of(arb_counter_op())) {
        assert_causal_matches_cal(&h, &SeqAsCa::new(CounterSpec::new(O)));
    }

    #[test]
    fn kv_family_agrees(h in history_of(arb_kv_op())) {
        let spec = SeqAsCa::new(KvMapSpec::new().with_read_universe(vec![0, 1, 2]));
        assert_causal_matches_cal(&h, &spec);
    }
}
