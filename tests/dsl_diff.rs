//! Differential suite for the spec DSL: the `.cal` programs shipped in
//! `specs/` and their native Rust counterparts must decide identically.
//! Each family is driven over random histories and compared verdict-for-
//! verdict — sequentially and through the shared parallel driver at 1, 2
//! and 4 threads — so the interpreter cannot silently diverge from the
//! hand-written specifications on any reachable code path (guards,
//! effects, element shapes, or pending-operation completions).

use std::sync::Arc;

use cal::core::check::{check_cal_with, CheckError, CheckOptions, CheckOutcome, Verdict};
use cal::core::dsl::{self, SpecDef};
use cal::core::gen::interleave;
use cal::core::par::check_cal_par_with;
use cal::core::seqlin::{check_linearizable_par_with, check_linearizable_with};
use cal::core::spec::{CaSpec, SeqAsCa, SeqSpec};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;

const O: ObjectId = ObjectId(0);

/// Compiles one shipped `.cal` file and returns its single spec. The
/// sources are embedded at compile time so the suite cannot pass against
/// stale copies.
fn shipped(name: &str) -> Arc<SpecDef> {
    let src = match name {
        "register" => include_str!("../specs/register.cal"),
        "counter" => include_str!("../specs/counter.cal"),
        "stack" => include_str!("../specs/stack.cal"),
        "exchanger" => include_str!("../specs/exchanger.cal"),
        "sync_queue" => include_str!("../specs/sync_queue.cal"),
        other => panic!("no shipped spec named {other}"),
    };
    let file = dsl::parse_str(src).unwrap_or_else(|d| panic!("specs/{name}.cal: {d}"));
    Arc::clone(file.get(name).unwrap_or_else(|| panic!("specs/{name}.cal does not define {name}")))
}

/// One generated operation: method, argument, return value, and whether
/// the response is recorded (the last op of a thread may stay pending).
type OpShape = (Method, Value, Value, bool);

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("write"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("read"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_counter_op() -> BoxedStrategy<OpShape> {
    (0i64..4, any::<bool>())
        .prop_map(|(n, c)| (Method("inc"), Value::Unit, Value::Int(n), c))
        .boxed()
}

fn arb_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("push"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("pop"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_exchanger_op() -> BoxedStrategy<OpShape> {
    (0i64..3, any::<bool>(), 0i64..3, any::<bool>())
        .prop_map(|(v, ok, got, c)| {
            (Method("exchange"), Value::Int(v), Value::Pair(ok, got), c)
        })
        .boxed()
}

fn arb_sync_queue_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("put"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("take"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

/// Builds a history: up to 3 threads × up to 3 ops on one object,
/// interleaved by seed.
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64) -> History {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t as u32), O, m, arg));
                // Only the final op of a thread may stay pending.
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), O, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(op: impl Strategy<Value = OpShape>) -> impl Strategy<Value = History> {
    (prop::collection::vec(prop::collection::vec(op, 0..4), 1..4), any::<u64>())
        .prop_map(|(threads, seed)| build_history(threads, seed))
}

/// The bucket of a check result, ignoring the witness payload — the unit
/// of DSL/native agreement.
fn category<W>(r: &Result<CheckOutcome<W>, CheckError>) -> String {
    match r {
        Ok(o) => match &o.verdict {
            Verdict::Cal(_) => "accepted".into(),
            Verdict::NotCal => "rejected".into(),
            Verdict::ResourcesExhausted => "exhausted".into(),
            Verdict::Interrupted { reason } => format!("interrupted({reason:?})"),
        },
        Err(e) => format!("error({e:?})"),
    }
}

/// The oracle for concurrency-aware families: the interpreted spec and
/// the native one agree under the CAL checker, sequentially and in
/// parallel at 1, 2 and 4 threads.
fn assert_ca_agreement<S>(h: &History, name: &str, native: &S)
where
    S: CaSpec + Clone + Sync,
    S::State: Send + Sync,
{
    let def = shipped(name);
    let interpreted = def.to_ca(O);
    let options = CheckOptions::default();
    let want = category(&check_cal_with(h, native, &options));
    let got = category(&check_cal_with(h, &interpreted, &options));
    assert_eq!(want, got, "{name}: DSL vs native diverge\nhistory:\n{h}");
    for threads in [1usize, 2, 4] {
        let par = CheckOptions { threads, ..CheckOptions::default() };
        let pgot = category(&check_cal_par_with(h, &interpreted, &par));
        assert_eq!(want, pgot, "{name}: threads={threads}: parallel DSL diverged\nhistory:\n{h}");
    }
}

/// The oracle for sequential families: the interpreted spec agrees with
/// the native one under the seqlin checker *and* under the CAL checker
/// with singleton lifting, sequentially and in parallel.
fn assert_seq_agreement<S>(h: &History, name: &str, native: &S)
where
    S: SeqSpec + Clone + Sync,
    S::State: Send + Sync,
{
    let def = shipped(name);
    let interpreted = def.to_seq(O).expect("shipped seq spec has a sequential reading");
    let options = CheckOptions::default();
    let want = category(&check_linearizable_with(h, native, &options));
    let got = category(&check_linearizable_with(h, &interpreted, &options));
    assert_eq!(want, got, "{name}: DSL vs native diverge (seqlin)\nhistory:\n{h}");
    let want_ca = category(&check_cal_with(h, &SeqAsCa::new(native.clone()), &options));
    let got_ca = category(&check_cal_with(h, &def.to_ca(O), &options));
    assert_eq!(want_ca, got_ca, "{name}: DSL vs native diverge (CAL lift)\nhistory:\n{h}");
    for threads in [1usize, 2, 4] {
        let par = CheckOptions { threads, ..CheckOptions::default() };
        let pseq = category(&check_linearizable_par_with(h, &interpreted, &par));
        let pca = category(&check_cal_par_with(h, &def.to_ca(O), &par));
        assert_eq!(want, pseq, "{name}: threads={threads}: parallel seqlin diverged\nhistory:\n{h}");
        assert_eq!(
            want_ca, pca,
            "{name}: threads={threads}: parallel CAL lift diverged\nhistory:\n{h}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn register_dsl_matches_native(h in history_of(arb_register_op())) {
        assert_seq_agreement(&h, "register", &RegisterSpec::new(O));
    }

    #[test]
    fn counter_dsl_matches_native(h in history_of(arb_counter_op())) {
        assert_seq_agreement(&h, "counter", &CounterSpec::new(O));
    }

    #[test]
    fn stack_dsl_matches_native(h in history_of(arb_stack_op())) {
        assert_seq_agreement(&h, "stack", &StackSpec::total(O));
    }

    #[test]
    fn exchanger_dsl_matches_native(h in history_of(arb_exchanger_op())) {
        assert_ca_agreement(&h, "exchanger", &ExchangerSpec::new(O));
    }

    #[test]
    fn sync_queue_dsl_matches_native(h in history_of(arb_sync_queue_op())) {
        assert_ca_agreement(&h, "sync_queue", &SyncQueueSpec::new(O));
    }
}

/// Fixed histories with known verdicts, so the agreement suite cannot
/// vacuously pass on generator quirks.
#[test]
fn fixed_exchanger_histories_have_known_verdicts() {
    let def = shipped("exchanger");
    let spec = def.to_ca(O);
    let options = CheckOptions::default();
    let m = Method("exchange");
    // Fig. 1: two concurrent exchanges swapping 3 and 4 — accepted.
    let good = History::from_actions(vec![
        Action::invoke(ThreadId(1), O, m, Value::Int(3)),
        Action::invoke(ThreadId(2), O, m, Value::Int(4)),
        Action::response(ThreadId(1), O, m, Value::Pair(true, 4)),
        Action::response(ThreadId(2), O, m, Value::Pair(true, 3)),
    ]);
    assert_eq!(category(&check_cal_with(&good, &spec, &options)), "accepted");
    // A sequential "swap" has no concurrent peer — rejected.
    let bad = History::from_actions(vec![
        Action::invoke(ThreadId(1), O, m, Value::Int(3)),
        Action::response(ThreadId(1), O, m, Value::Pair(true, 4)),
        Action::invoke(ThreadId(2), O, m, Value::Int(4)),
        Action::response(ThreadId(2), O, m, Value::Pair(true, 3)),
    ]);
    assert_eq!(category(&check_cal_with(&bad, &spec, &options)), "rejected");
}

#[test]
fn fixed_stack_histories_have_known_verdicts() {
    let def = shipped("stack");
    let spec = def.to_seq(O).unwrap();
    let options = CheckOptions::default();
    let (push, pop) = (Method("push"), Method("pop"));
    // push 1; push 2; pop -> (true, 2) — LIFO, accepted.
    let good = History::from_actions(vec![
        Action::invoke(ThreadId(1), O, push, Value::Int(1)),
        Action::response(ThreadId(1), O, push, Value::Bool(true)),
        Action::invoke(ThreadId(1), O, push, Value::Int(2)),
        Action::response(ThreadId(1), O, push, Value::Bool(true)),
        Action::invoke(ThreadId(1), O, pop, Value::Unit),
        Action::response(ThreadId(1), O, pop, Value::Pair(true, 2)),
    ]);
    assert_eq!(category(&check_linearizable_with(&good, &spec, &options)), "accepted");
    // pop -> (true, 1) after pushing only 2 — FIFO order, rejected.
    let bad = History::from_actions(vec![
        Action::invoke(ThreadId(1), O, push, Value::Int(1)),
        Action::response(ThreadId(1), O, push, Value::Bool(true)),
        Action::invoke(ThreadId(1), O, push, Value::Int(2)),
        Action::response(ThreadId(1), O, push, Value::Bool(true)),
        Action::invoke(ThreadId(1), O, pop, Value::Unit),
        Action::response(ThreadId(1), O, pop, Value::Pair(true, 1)),
    ]);
    assert_eq!(category(&check_linearizable_with(&bad, &spec, &options)), "rejected");
}
