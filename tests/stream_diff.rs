//! Differential validation of the streaming checker: pushing a history
//! through [`cal::core::stream::StreamChecker`] — with checkpoints forced
//! at random chunk boundaries, so retirement happens at arbitrary
//! moments — must reach exactly the batch [`check_cal`] verdict. Runs
//! over every spec family (a rendezvous spec, a queue spec, and two
//! lifted sequential specs) at 1, 2 and 4 threads, on both consistent
//! and corrupted histories.

use cal::core::check::{check_cal, Verdict};
use cal::core::gen::{interleave, mutate, render_loose, Mutation};
use cal::core::spec::{CaSpec, SeqAsCa};
use cal::core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::gen::{random_exchanger_trace, random_sync_queue_trace};
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBJ: ObjectId = ObjectId(0);

/// Streams `history` through a fresh checker, checkpointing after
/// rng-sized chunks, and returns the closing verdict. Panics on
/// rejected events: every generated history is well-formed.
fn stream_verdict<S: CaSpec>(spec: S, history: &History, rng: &mut StdRng) -> StreamVerdict {
    let opts = StreamOptions {
        // Manual checkpoints only: the chunking is the thing under test.
        checkpoint_every: 0,
        ..StreamOptions::default()
    };
    let mut checker = StreamChecker::new(spec, opts);
    let mut until_checkpoint = rng.gen_range(1usize..6);
    for action in history.actions() {
        match checker.push(*action) {
            Push::Admitted => {}
            Push::Refused => return checker.verdict(), // violation latched mid-stream
            other => panic!("well-formed event not admitted: {other:?}"),
        }
        until_checkpoint -= 1;
        if until_checkpoint == 0 {
            checker.checkpoint();
            until_checkpoint = rng.gen_range(1usize..6);
        }
    }
    checker.finish()
}

/// Asserts verdict parity between the batch checker and a chunked
/// streaming replay of the same history.
fn assert_parity<S: CaSpec + Clone>(spec: S, history: &History, rng: &mut StdRng) {
    let batch = check_cal(history, &spec).expect("batch check must not error");
    let streamed = stream_verdict(spec, history, rng);
    match batch.verdict {
        Verdict::Cal(_) => assert_eq!(
            streamed,
            StreamVerdict::Consistent,
            "batch accepted but stream said {streamed}:\n{history}"
        ),
        Verdict::NotCal => assert_eq!(
            streamed,
            StreamVerdict::Violation,
            "batch rejected but stream said {streamed}:\n{history}"
        ),
        // Budget-bound batch outcomes have no parity obligation.
        Verdict::ResourcesExhausted | Verdict::Interrupted { .. } => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exchanger (rendezvous) family, 2/4 threads (a rendezvous needs
    /// two), loosened renderings. Single-thread coverage comes from the
    /// lifted sequential families below.
    #[test]
    fn exchanger_streams_match_batch(seed in 0u64..5_000, size in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        for threads in [2u32, 4] {
            let trace = random_exchanger_trace(&mut rng, OBJ, threads, size);
            let h = render_loose(&trace, &mut rng, 25);
            assert_parity(ExchangerSpec::new(OBJ), &h, &mut rng);
        }
    }

    /// Corrupted exchanger histories: violation parity.
    #[test]
    fn corrupted_exchanger_streams_match_batch(seed in 0u64..5_000, size in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 3, size);
        let h = render_loose(&trace, &mut rng, 25);
        if let Some(bad) = mutate(&h, Mutation::CorruptReturn, &mut rng,
                                  |_| Value::Pair(true, 777_777_777)) {
            assert_parity(ExchangerSpec::new(OBJ), &bad, &mut rng);
        }
    }

    /// Synchronous queue family.
    #[test]
    fn sync_queue_streams_match_batch(seed in 0u64..5_000, size in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        for threads in [2u32, 4] {
            let trace = random_sync_queue_trace(&mut rng, OBJ, threads, size);
            let h = render_loose(&trace, &mut rng, 25);
            assert_parity(SyncQueueSpec::new(OBJ), &h, &mut rng);
        }
    }

    /// Lifted sequential counter: each `inc` returns the pre-increment
    /// count, assigned along a random global order, then re-interleaved —
    /// the re-interleaving sometimes contradicts real-time order, so both
    /// verdicts are exercised through the same generator.
    #[test]
    fn counter_streams_match_batch(seed in 0u64..5_000, per_thread in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        for threads in [1usize, 2, 4] {
            // A random global sequence of thread slots fixes the returns.
            let mut slots: Vec<usize> =
                (0..threads).flat_map(|t| std::iter::repeat_n(t, per_thread)).collect();
            for i in (1..slots.len()).rev() {
                slots.swap(i, rng.gen_range(0..=i));
            }
            let mut per: Vec<Vec<Action>> = vec![Vec::new(); threads];
            for (count, &t) in slots.iter().enumerate() {
                let tid = ThreadId(t as u32);
                per[t].push(Action::invoke(tid, OBJ, Method("inc"), Value::Unit));
                per[t].push(Action::response(tid, OBJ, Method("inc"), Value::Int(count as i64)));
            }
            let h = interleave(&per, &mut rng);
            assert_parity(SeqAsCa::new(CounterSpec::new(OBJ)), &h, &mut rng);
        }
    }

    /// Lifted sequential register with reads that may or may not be
    /// justified — exercises both verdicts through the same generator.
    #[test]
    fn register_streams_match_batch(seed in 0u64..5_000, ops in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        for threads in [1usize, 2, 4] {
            let per: Vec<Vec<Action>> = (0..threads)
                .map(|t| {
                    let tid = ThreadId(t as u32);
                    (0..ops)
                        .flat_map(|_| {
                            if rng.gen_bool(0.5) {
                                let v = rng.gen_range(0i64..3);
                                [
                                    Action::invoke(tid, OBJ, Method("write"), Value::Int(v)),
                                    Action::response(tid, OBJ, Method("write"), Value::Unit),
                                ]
                            } else {
                                let v = rng.gen_range(0i64..3);
                                [
                                    Action::invoke(tid, OBJ, Method("read"), Value::Unit),
                                    Action::response(tid, OBJ, Method("read"), Value::Int(v)),
                                ]
                            }
                        })
                        .collect()
                })
                .collect();
            let h = interleave(&per, &mut rng);
            assert_parity(SeqAsCa::new(RegisterSpec::new(OBJ)), &h, &mut rng);
        }
    }
}
