//! Differential testing of the parallel checker against the sequential
//! one: for arbitrary generated histories and every specification in
//! `cal-specs`, `check_cal_par_with` at 1, 2 and 8 threads must return
//! the same verdict as `check_cal_with` — and, when the verdict is CAL,
//! a witness the sequential machinery validates ([`witness_explains`]).

use std::sync::Arc;

use cal::core::check::{check_cal_with, witness_explains, CheckOptions, Verdict};
use cal::core::gen::interleave;
use cal::core::obs::{CountingSink, StatsSink};
use cal::core::par::check_cal_par_with;
use cal::core::spec::{CaSpec, PerObject, SeqAsCa};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;

const O: ObjectId = ObjectId(0);
const O2: ObjectId = ObjectId(1);

/// One generated operation: method, argument, return value, and whether
/// the response is recorded (the last op of a thread may stay pending).
type OpShape = (Method, Value, Value, bool);

fn arb_exchange_op() -> BoxedStrategy<OpShape> {
    (0i64..3, any::<bool>(), 0i64..3, any::<bool>())
        .prop_map(|(arg, ok, got, complete)| {
            (Method("exchange"), Value::Int(arg), Value::Pair(ok, got), complete)
        })
        .boxed()
}

fn arb_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("push"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("pop"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_queue_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("put"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("take"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_dual_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("push"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("pop"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("write"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("read"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_counter_op() -> BoxedStrategy<OpShape> {
    (0i64..4, any::<bool>())
        .prop_map(|(n, c)| (Method("inc"), Value::Unit, Value::Int(n), c))
        .boxed()
}

/// Builds a history: up to 3 threads × up to 3 ops, interleaved by seed.
/// `objects` maps each op to an object round-robin (1 = single-object).
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64, objects: usize) -> History {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, arg, ret, complete)) in ops.into_iter().enumerate() {
                let obj = if objects > 1 { ObjectId((i % objects) as u32) } else { O };
                out.push(Action::invoke(ThreadId(t as u32), obj, m, arg));
                // Only the final op of a thread may stay pending.
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), obj, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(
    op: impl Strategy<Value = OpShape>,
    objects: usize,
) -> impl Strategy<Value = History> {
    (
        prop::collection::vec(prop::collection::vec(op, 0..4), 1..4),
        any::<u64>(),
    )
        .prop_map(move |(threads, seed)| build_history(threads, seed, objects))
}

/// The category of a check result, ignoring the witness: enabling a
/// stats sink must never move a result between these buckets.
fn category(r: &Result<cal::core::check::CheckOutcome, cal::core::check::CheckError>) -> String {
    match r {
        Ok(o) => match &o.verdict {
            Verdict::Cal(_) => "cal".into(),
            Verdict::NotCal => "not-cal".into(),
            Verdict::ResourcesExhausted => "exhausted".into(),
            Verdict::Interrupted { reason } => format!("interrupted({reason:?})"),
        },
        Err(e) => format!("error({e:?})"),
    }
}

/// Re-runs a check with a [`CountingSink`] attached and asserts the
/// verdict category is unchanged — observation must not perturb the
/// search. For deterministic (sequential) runs the sink's node count
/// must also agree with the checker's own stats.
fn assert_sink_is_inert<S>(
    h: &History,
    spec: &S,
    options: &CheckOptions,
    baseline: &Result<cal::core::check::CheckOutcome, cal::core::check::CheckError>,
    parallel: bool,
) where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let sink = Arc::new(CountingSink::new());
    let counted = CheckOptions {
        sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
        ..options.clone()
    };
    let observed = if parallel {
        check_cal_par_with(h, spec, &counted)
    } else {
        check_cal_with(h, spec, &counted)
    };
    assert_eq!(
        category(baseline),
        category(&observed),
        "attaching a stats sink changed the verdict (threads={})\nhistory:\n{h}",
        options.threads,
    );
    if let Ok(outcome) = &observed {
        assert_eq!(
            sink.nodes(),
            outcome.stats.nodes,
            "sink and CheckStats disagree on nodes (threads={})\nhistory:\n{h}",
            options.threads,
        );
    }
}

/// The core oracle: sequential and parallel checks agree on `h`, and
/// parallel CAL witnesses explain `h`. Panics on divergence.
fn assert_equivalent<S>(h: &History, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let options = CheckOptions::default();
    let seq = check_cal_with(h, spec, &options);
    assert_sink_is_inert(h, spec, &options, &seq, false);
    for threads in [1usize, 2, 8] {
        let par_options = CheckOptions { threads, ..CheckOptions::default() };
        let par = check_cal_par_with(h, spec, &par_options);
        assert_sink_is_inert(h, spec, &par_options, &par, true);
        match (&seq, &par) {
            (Ok(s), Ok(p)) => match (&s.verdict, &p.verdict) {
                (Verdict::Cal(_), Verdict::Cal(w)) => {
                    assert!(
                        witness_explains(h, spec, w),
                        "threads={threads}: parallel witness not validated\nhistory:\n{h}\nwitness: {w}"
                    );
                }
                (Verdict::NotCal, Verdict::NotCal) => {}
                (a, b) => {
                    panic!("threads={threads}: sequential {a:?} vs parallel {b:?}\nhistory:\n{h}")
                }
            },
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => {
                panic!("threads={threads}: sequential {a:?} vs parallel {b:?}\nhistory:\n{h}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchanger_parallel_equivalent(h in history_of(arb_exchange_op(), 1)) {
        assert_equivalent(&h, &ExchangerSpec::new(O));
    }

    #[test]
    fn elim_array_parallel_equivalent(h in history_of(arb_exchange_op(), 1)) {
        assert_equivalent(&h, &ElimArraySpec::new(O));
    }

    #[test]
    fn sync_queue_parallel_equivalent(h in history_of(arb_queue_op(), 1)) {
        assert_equivalent(&h, &SyncQueueSpec::new(O));
    }

    #[test]
    fn dual_stack_parallel_equivalent(h in history_of(arb_dual_op(), 1)) {
        assert_equivalent(&h, &DualStackSpec::with_timeouts(O));
    }

    #[test]
    fn stack_parallel_equivalent(h in history_of(arb_stack_op(), 1)) {
        let spec = SeqAsCa::new(StackSpec::failing(O).with_pop_universe(vec![0, 1, 2]));
        assert_equivalent(&h, &spec);
    }

    #[test]
    fn register_parallel_equivalent(h in history_of(arb_register_op(), 1)) {
        let spec = SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]));
        assert_equivalent(&h, &spec);
    }

    #[test]
    fn counter_parallel_equivalent(h in history_of(arb_counter_op(), 1)) {
        assert_equivalent(&h, &SeqAsCa::new(CounterSpec::new(O)));
    }

    #[test]
    fn multi_object_decomposition_equivalent(h in history_of(arb_exchange_op(), 2)) {
        // Two independent exchangers: the parallel checker takes the
        // per-object decomposition path, the sequential one does not —
        // exactly the asymmetry this differential test targets.
        let spec = PerObject::new(vec![
            (O, ExchangerSpec::new(O)),
            (O2, ExchangerSpec::new(O2)),
        ]);
        assert_equivalent(&h, &spec);
    }

    #[test]
    fn multi_object_registers_equivalent(h in history_of(arb_register_op(), 2)) {
        let spec = PerObject::new(vec![
            (O, SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]))),
            (O2, SeqAsCa::new(RegisterSpec::new(O2).with_read_universe(vec![0, 1, 2]))),
        ]);
        assert_equivalent(&h, &spec);
    }
}
