//! E1 — the paper's Fig. 3: which histories of program `P` the exchanger
//! specification explains, and why no sequential specification works (§3).

use cal::core::check::{check_cal, is_cal};
use cal::core::spec::{Invocation, SeqSpec};
use cal::core::{seqlin, Action, History, ObjectId, Operation, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::vocab::EXCHANGE;

const E: ObjectId = ObjectId(0);

fn inv(t: u32, v: i64) -> Action {
    Action::invoke(ThreadId(t), E, EXCHANGE, Value::Int(v))
}

fn res(t: u32, ok: bool, v: i64) -> Action {
    Action::response(ThreadId(t), E, EXCHANGE, Value::Pair(ok, v))
}

fn h1() -> History {
    History::from_actions(vec![
        inv(1, 3),
        inv(2, 4),
        inv(3, 7),
        res(1, true, 4),
        res(2, true, 3),
        res(3, false, 7),
    ])
}

fn h2() -> History {
    History::from_actions(vec![
        inv(1, 3),
        inv(2, 4),
        res(1, true, 4),
        inv(3, 7),
        res(2, true, 3),
        res(3, false, 7),
    ])
}

fn h3() -> History {
    History::from_actions(vec![
        inv(1, 3),
        res(1, true, 4),
        inv(2, 4),
        res(2, true, 3),
        inv(3, 7),
        res(3, false, 7),
    ])
}

#[test]
fn h1_is_cal() {
    assert!(is_cal(&h1(), &ExchangerSpec::new(E)).unwrap());
}

#[test]
fn h2_is_cal() {
    assert!(is_cal(&h2(), &ExchangerSpec::new(E)).unwrap());
}

#[test]
fn h3_is_not_cal() {
    // The sequential explanation is rejected: non-overlapping operations
    // cannot form a swap element.
    assert!(!is_cal(&h3(), &ExchangerSpec::new(E)).unwrap());
}

#[test]
fn h3_bad_prefix_is_not_cal() {
    let h3_prefix = History::from_actions(vec![inv(1, 3), res(1, true, 4)]);
    assert!(!is_cal(&h3_prefix, &ExchangerSpec::new(E)).unwrap());
}

#[test]
fn h1_witness_pairs_the_swappers() {
    let outcome = check_cal(&h1(), &ExchangerSpec::new(E)).unwrap();
    let witness = outcome.verdict.witness().unwrap();
    assert_eq!(witness.total_ops(), 3);
    let swap = witness.elements().iter().find(|e| e.len() == 2).expect("swap element");
    assert!(swap.mentions_thread(ThreadId(1)) && swap.mentions_thread(ThreadId(2)));
    let fail = witness.elements().iter().find(|e| e.len() == 1).expect("fail element");
    assert!(fail.mentions_thread(ThreadId(3)));
}

/// The §3 dilemma, mechanized: a prefix-closed sequential specification
/// that explains H3 (and hence the successful swap outcome) must also
/// admit H3's prefix in which one thread succeeds alone — while a
/// sequential specification that admits only failures rejects H1 entirely.
#[test]
fn sequential_specs_are_too_loose_or_too_restrictive() {
    #[derive(Debug)]
    struct Lax;
    impl SeqSpec for Lax {
        type State = ();
        fn initial(&self) {}
        fn apply(&self, _: &(), op: &Operation) -> Option<()> {
            (op.method == EXCHANGE).then_some(())
        }
        fn completions_of(&self, _: &Invocation) -> Vec<Value> {
            vec![]
        }
    }

    #[derive(Debug)]
    struct FailOnly;
    impl SeqSpec for FailOnly {
        type State = ();
        fn initial(&self) {}
        fn apply(&self, _: &(), op: &Operation) -> Option<()> {
            let (ok, v) = op.ret.as_pair()?;
            (!ok && op.arg == Value::Int(v)).then_some(())
        }
        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            inv.arg.as_int().map(|v| Value::Pair(false, v)).into_iter().collect()
        }
    }

    // Lax admits the undesired lone success (too loose):
    let h3_prefix = History::from_actions(vec![inv(1, 3), res(1, true, 4)]);
    assert!(seqlin::is_linearizable(&h3(), &Lax).unwrap());
    assert!(seqlin::is_linearizable(&h3_prefix, &Lax).unwrap());
    // FailOnly rejects the legitimate concurrent swap (too restrictive):
    assert!(!seqlin::is_linearizable(&h1(), &FailOnly).unwrap());
    // While CAL threads the needle:
    assert!(is_cal(&h1(), &ExchangerSpec::new(E)).unwrap());
    assert!(!is_cal(&h3_prefix, &ExchangerSpec::new(E)).unwrap());
}
