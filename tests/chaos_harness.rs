//! E14 — the chaos harness: every harvested history is well-formed
//! (pending invocations from abandoned workers included), same-seed runs
//! are bit-for-bit reproducible, and the planted exchanger bug is caught
//! and shrunk to a minimal reproducer carrying its seed.

use std::time::Duration;

use cal::chaos::driver::{run_once, soak, Mode, RunConfig, SoakResult, TargetKind};
use cal::chaos::{FailureClass, Profile};
use proptest::prelude::*;

fn target_from(index: usize) -> TargetKind {
    TargetKind::ALL[index % TargetKind::ALL.len()]
}

fn profile_from(index: usize) -> Profile {
    [Profile::Light, Profile::Heavy, Profile::Starvation][index % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the seed, shape, target and fault profile, the harvested
    /// history satisfies the `History` invariants: responses follow
    /// invocations, per-thread well-nesting holds, and abandoned
    /// operations appear as pending invocations, never as orphans.
    #[test]
    fn harvested_histories_are_well_formed(
        seed in 0u64..10_000,
        threads in 2usize..5,
        ops in 1usize..7,
        target_ix in 0usize..6,
        profile_ix in 0usize..3,
    ) {
        let config = RunConfig {
            seed,
            threads,
            ops_per_thread: ops,
            target: target_from(target_ix),
            profile: profile_from(profile_ix),
            mode: Mode::Deterministic,
            ..RunConfig::default()
        };
        let outcome = run_once(&config);
        prop_assert!(outcome.history.validate().is_ok(),
            "ill-formed history from seed {seed:#x}: {}", outcome.history);
    }

    /// Deterministic mode is a pure function of the seed: replaying the
    /// same config yields the same bytes, fault schedule included.
    #[test]
    fn same_seed_same_history(seed in 0u64..10_000, target_ix in 0usize..6) {
        let config = RunConfig {
            seed,
            target: target_from(target_ix),
            profile: Profile::Starvation,
            ..RunConfig::default()
        };
        let first = run_once(&config);
        let second = run_once(&config);
        prop_assert_eq!(first.history.to_string(), second.history.to_string());
    }
}

/// Abandonment actually happens: across a spread of seeds, some heavy
/// profile run leaves a pending invocation in its history.
#[test]
fn heavy_profile_abandons_operations() {
    let pending_somewhere = (0..200u64).any(|seed| {
        let config = RunConfig { seed, profile: Profile::Heavy, ..RunConfig::default() };
        let h = run_once(&config).history;
        !h.is_complete()
    });
    assert!(pending_somewhere, "no seed in 0..200 abandoned an operation");
}

/// Acceptance: the deliberately buggy exchanger (same value handed to
/// both sides) is caught within the 10 s budget, and the report carries
/// the seed and a replayable minimal reproducer.
#[test]
fn planted_bug_is_caught_and_shrunk() {
    let config =
        RunConfig { seed: 1, target: TargetKind::BuggyExchanger, ..RunConfig::default() };
    match soak(&config, Duration::from_secs(10)) {
        SoakResult::Failed { report, .. } => {
            assert_eq!(report.class, FailureClass::Violation);
            let text = report.to_string();
            assert!(text.contains("seed"), "report must print the seed:\n{text}");
            assert!(
                text.contains("chaos-soak --seed"),
                "report must print a repro command:\n{text}"
            );
            // The reproducer replays to the same failure class.
            let replay = run_once(&report.config);
            assert_eq!(replay.verdict.class(), Some(FailureClass::Violation));
            // And it is minimal for this bug: one exchange per side.
            assert_eq!(report.config.threads, 2);
            assert_eq!(report.config.ops_per_thread, 1);
        }
        SoakResult::Clean { runs } => {
            panic!("planted bug survived {runs} runs without detection")
        }
    }
}

/// The healthy objects survive a short soak on every profile without a
/// single violation, undecided verdict, or checker error.
#[test]
fn healthy_targets_soak_clean() {
    for target in TargetKind::ALL {
        if target == TargetKind::BuggyExchanger {
            continue;
        }
        for profile in [Profile::Light, Profile::Heavy, Profile::Starvation] {
            let config = RunConfig { seed: 0xCA11, target, profile, ..RunConfig::default() };
            match soak(&config, Duration::from_millis(200)) {
                SoakResult::Clean { .. } => {}
                SoakResult::Failed { report, .. } => {
                    panic!("false positive on {target} under {profile}:\n{report}")
                }
            }
        }
    }
}
