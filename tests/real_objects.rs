//! Recorded real concurrent runs of the atomics-based objects, checked
//! against their specifications — the end-to-end path a downstream user
//! of this library follows.

use cal::core::check::is_cal;
use cal::core::{seqlin, ObjectId};
use cal::objects::recorded::{
    run_threads, RecordedEliminationStack, RecordedExchanger, RecordedTreiberStack,
};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::stack::StackSpec;

const OBJ: ObjectId = ObjectId(0);

#[test]
fn exchanger_real_run_is_cal() {
    let e = RecordedExchanger::new(OBJ);
    run_threads(4, |t| {
        for i in 0..8 {
            e.exchange(t, (t.0 as i64) * 1_000 + i, 128);
        }
    });
    let h = e.recorder().history();
    assert!(h.is_complete());
    assert!(is_cal(&h, &ExchangerSpec::new(OBJ)).unwrap(), "not CAL:\n{h}");
}

#[test]
fn exchanger_real_run_high_spin_is_cal() {
    // Longer waits make real pairing more likely even on one core.
    let e = RecordedExchanger::new(OBJ);
    run_threads(2, |t| {
        for i in 0..30 {
            e.exchange(t, (t.0 as i64) * 1_000 + i, 2_000);
        }
    });
    let h = e.recorder().history();
    assert!(is_cal(&h, &ExchangerSpec::new(OBJ)).unwrap(), "not CAL:\n{h}");
}

#[test]
fn treiber_real_run_is_linearizable() {
    let s = RecordedTreiberStack::new(OBJ);
    run_threads(4, |t| {
        for i in 0..12 {
            let v = (t.0 as i64) * 1_000 + i;
            s.push(t, v);
            if i % 2 == 0 {
                s.pop(t);
            }
        }
    });
    let h = s.recorder().history();
    let out = seqlin::check_linearizable(&h, &StackSpec::total(OBJ)).unwrap();
    assert!(out.verdict.is_cal(), "not linearizable:\n{h}");
}

#[test]
fn elimination_stack_real_run_is_linearizable() {
    let s = RecordedEliminationStack::new(OBJ, 2, 128);
    run_threads(4, |t| {
        for i in 0..10 {
            let v = (t.0 as i64) * 1_000 + i;
            s.push(t, v);
            s.pop_wait(t);
        }
    });
    let h = s.recorder().history();
    let out = seqlin::check_linearizable(&h, &StackSpec::total(OBJ)).unwrap();
    assert!(out.verdict.is_cal(), "not linearizable:\n{h}");
}

#[test]
fn elimination_stack_balanced_producers_consumers() {
    let s = RecordedEliminationStack::new(OBJ, 2, 256);
    run_threads(4, |t| {
        if t.0 < 2 {
            for i in 0..10 {
                s.push(t, (t.0 as i64) * 1_000 + i);
            }
        } else {
            for _ in 0..10 {
                s.pop_wait(t);
            }
        }
    });
    let h = s.recorder().history();
    let out = seqlin::check_linearizable(&h, &StackSpec::total(OBJ)).unwrap();
    assert!(out.verdict.is_cal(), "not linearizable:\n{h}");
}
