//! Golden verdict corpus: every fixture under `tests/corpus/` (walked
//! recursively — native `.hist` histories next to foreign `.jepsen` and
//! `.kvlog` traces) carries a `# spec:` and `# expect:` header. For each
//! fixture this test parses the history in its format, runs the
//! sequential checker and the parallel checker at 1, 2 and 8 threads,
//! and asserts the verdict matches the recorded expectation (validating
//! the witness whenever the verdict is CAL). Fixtures whose spec the
//! `cal-check` binary knows are additionally run through the binary in
//! every supported `--mode`, pinning the documented exit code.
//!
//! Expectations: `cal` (accepted, exit 0), `not-cal` (rejected, exit 1),
//! `undecided` (budget exhausted under the fixture's `# max-nodes:`,
//! exit 2) and `error` (the file must fail to parse with a line-anchored
//! diagnostic, exit 3).
//!
//! Fixtures under `tests/corpus/causal/` carry causality metadata
//! (kvlog `hb` lines) and an optional `# expect-causal:` header: the
//! `--mode causal` verdict when it differs from the CAL one. Every
//! fixture with a binary-known spec — annotated or not — is also run
//! through `cal-check --mode causal`; unannotated fixtures fall back to
//! the real-time order and so double as the differential anchor (causal
//! must equal CAL), while annotated ones pin genuine divergences, the
//! flagship being a store-buffering reordering CAL rejects and causal
//! mode explains.
//!
//! A second corpus under `tests/corpus/dsl/` holds malformed `.cal` spec
//! files. Each carries `# expect-code:`, `# expect-line:`, `# expect-col:`
//! and `# expect-message:` headers pinning the diagnostic the DSL
//! front-end must produce, both through the library ([`dsl::parse_str`])
//! and through `cal-check --spec` (exit 3, code and position on stderr).
//! Finally, the shipped `specs/*.cal` programs are replayed over every
//! history fixture their family owns and must land on the same exit code
//! as the built-in Rust spec they mirror.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use cal::core::causal::{
    causal_order, check_causal_par_with, check_causal_with, witness_explains_causal,
};
use cal::core::check::{check_cal_with, witness_explains, CheckOptions, Verdict};
use cal::core::dsl;
use cal::core::format::{parse_annotated, Format};
use cal::core::history::HbRelation;
use cal::core::par::check_cal_par_with;
use cal::core::spec::{CaSpec, PerObject, SeqAsCa};
use cal::core::{History, ObjectId};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::kv::KvMapSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;

const O: ObjectId = ObjectId(0);
const O1: ObjectId = ObjectId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Cal,
    NotCal,
    Undecided,
    Error,
}

impl Expect {
    fn exit_code(self) -> i32 {
        match self {
            Expect::Cal => 0,
            Expect::NotCal => 1,
            Expect::Undecided => 2,
            Expect::Error => 3,
        }
    }
}

struct Fixture {
    name: String,
    path: PathBuf,
    spec: String,
    expect: Expect,
    /// The `--mode causal` expectation when it differs from `expect`
    /// (`# expect-causal:` header); divergence requires causality
    /// metadata, since unannotated traces check under the real-time
    /// order on which the modes agree by construction.
    expect_causal: Option<Expect>,
    format: Format,
    max_nodes: Option<u64>,
    /// Parsed history; `None` for `expect: error` fixtures (whose whole
    /// point is that parsing fails).
    history: Option<History>,
    /// Declared happens-before edges; `Some` iff the trace carries
    /// causality metadata (kvlog `hb` lines).
    hb_edges: Option<Vec<(usize, usize)>>,
}

impl Fixture {
    /// The expected `--mode causal` verdict.
    fn causal_expect(&self) -> Expect {
        self.expect_causal.unwrap_or(self.expect)
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.unwrap().path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|x| x == "hist" || x == "jepsen" || x == "kvlog") {
            out.push(path);
        }
    }
}

fn load_corpus() -> Vec<Fixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths = Vec::new();
    walk(&dir, &mut paths);
    paths.sort();
    let mut fixtures = Vec::new();
    for path in paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let format = match path.extension().unwrap().to_str().unwrap() {
            "hist" => Format::Native,
            "jepsen" => Format::Jepsen,
            "kvlog" => Format::KvLog,
            other => panic!("{name}: unmapped extension {other:?}"),
        };
        let text = fs::read_to_string(&path).unwrap();
        let parse_expect = |rest: &str| match rest.trim() {
            "cal" => Expect::Cal,
            "not-cal" => Expect::NotCal,
            "undecided" => Expect::Undecided,
            "error" => Expect::Error,
            other => panic!("{name}: unknown expectation {other:?}"),
        };
        let (mut spec, mut expect, mut expect_causal, mut max_nodes) = (None, None, None, None);
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# spec:") {
                spec = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("# expect-causal:") {
                expect_causal = Some(parse_expect(rest));
            } else if let Some(rest) = line.strip_prefix("# expect:") {
                expect = Some(parse_expect(rest));
            } else if let Some(rest) = line.strip_prefix("# max-nodes:") {
                max_nodes = Some(rest.trim().parse().unwrap_or_else(|e| {
                    panic!("{name}: bad max-nodes header: {e}")
                }));
            }
        }
        let expect = expect.unwrap_or_else(|| panic!("{name}: missing `# expect:` header"));
        let (history, hb_edges) = match parse_annotated(format, &text) {
            Ok(a) => {
                assert_ne!(
                    expect,
                    Expect::Error,
                    "{name}: expected a parse error, but the file parsed"
                );
                (Some(a.history), a.hb_edges)
            }
            Err(e) => {
                assert_eq!(expect, Expect::Error, "{name}: parse error: {e}");
                assert!(e.line > 0, "{name}: parse diagnostic must be line-anchored: {e}");
                (None, None)
            }
        };
        if expect_causal.is_some_and(|c| c != expect) {
            assert!(
                hb_edges.is_some(),
                "{name}: a divergent `# expect-causal:` needs causality metadata — \
                 unannotated traces check under real time, where the modes agree"
            );
        }
        fixtures.push(Fixture {
            spec: spec.unwrap_or_else(|| panic!("{name}: missing `# spec:` header")),
            expect,
            expect_causal,
            format,
            max_nodes,
            name,
            path,
            history,
            hb_edges,
        });
    }
    fixtures
}

/// Runs one fixture against `spec`, sequentially and in parallel.
fn run_fixture<S>(fx: &Fixture, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let Some(history) = &fx.history else { return };
    let check = |label: &str, verdict: &Verdict| match (fx.expect, verdict) {
        (Expect::Cal, Verdict::Cal(w)) => {
            assert!(
                witness_explains(history, spec, w),
                "{}: {label} produced an invalid witness {w}",
                fx.name
            );
        }
        (Expect::NotCal, Verdict::NotCal) => {}
        (Expect::Undecided, Verdict::ResourcesExhausted) => {}
        (want, got) => panic!("{}: {label} returned {got:?}, expected {want:?}", fx.name),
    };
    let mut options = CheckOptions::default();
    if let Some(n) = fx.max_nodes {
        options.max_nodes = n;
    }
    let seq = check_cal_with(history, spec, &options)
        .unwrap_or_else(|e| panic!("{}: sequential checker errored: {e}", fx.name));
    check("sequential", &seq.verdict);
    for threads in [1usize, 2, 8] {
        let par_options = CheckOptions { threads, ..options.clone() };
        let par = check_cal_par_with(history, spec, &par_options)
            .unwrap_or_else(|e| panic!("{}: parallel checker errored: {e}", fx.name));
        check(&format!("parallel({threads})"), &par.verdict);
    }
}

/// Runs one fixture in causal mode: the happens-before order is the
/// declared edges when the trace is annotated and the real-time order
/// otherwise (the binary's `--hb auto` policy), and the expected verdict
/// is [`Fixture::causal_expect`].
fn run_causal_fixture<S>(fx: &Fixture, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let Some(history) = &fx.history else { return };
    let hb = match &fx.hb_edges {
        Some(edges) => causal_order(history, edges)
            .unwrap_or_else(|e| panic!("{}: declared edges must build: {e}", fx.name)),
        None => HbRelation::real_time(&history.spans()),
    };
    let expect = fx.causal_expect();
    let check = |label: &str, verdict: &Verdict| match (expect, verdict) {
        (Expect::Cal, Verdict::Cal(w)) => {
            assert!(
                witness_explains_causal(history, spec, w, &hb),
                "{}: {label} produced an invalid causal witness {w}",
                fx.name
            );
        }
        (Expect::NotCal, Verdict::NotCal) => {}
        (Expect::Undecided, Verdict::ResourcesExhausted) => {}
        (want, got) => panic!("{}: {label} returned {got:?}, expected {want:?}", fx.name),
    };
    let mut options = CheckOptions::default();
    if let Some(n) = fx.max_nodes {
        options.max_nodes = n;
    }
    let seq = check_causal_with(history, spec, &hb, &options)
        .unwrap_or_else(|e| panic!("{}: sequential causal checker errored: {e}", fx.name));
    check("causal sequential", &seq.verdict);
    for threads in [2usize, 8] {
        let par_options = CheckOptions { threads, ..options.clone() };
        let par = check_causal_par_with(history, spec, &hb, &par_options)
            .unwrap_or_else(|e| panic!("{}: parallel causal checker errored: {e}", fx.name));
        check(&format!("causal parallel({threads})"), &par.verdict);
    }
}

/// How a fixture is checked against its (generically typed) spec —
/// implemented once for CAL mode and once for causal mode so the
/// spec-name dispatch below is written a single time.
trait FixtureRunner {
    fn run<S>(&self, fx: &Fixture, spec: &S)
    where
        S: CaSpec + Sync,
        S::State: Send + Sync;
}

struct CalRunner;

impl FixtureRunner for CalRunner {
    fn run<S>(&self, fx: &Fixture, spec: &S)
    where
        S: CaSpec + Sync,
        S::State: Send + Sync,
    {
        run_fixture(fx, spec);
    }
}

struct CausalRunner;

impl FixtureRunner for CausalRunner {
    fn run<S>(&self, fx: &Fixture, spec: &S)
    where
        S: CaSpec + Sync,
        S::State: Send + Sync,
    {
        run_causal_fixture(fx, spec);
    }
}

fn dispatch(fx: &Fixture, runner: &impl FixtureRunner) {
    match fx.spec.as_str() {
        "exchanger" => runner.run(fx, &ExchangerSpec::new(O)),
        "elim-array" => runner.run(fx, &ElimArraySpec::new(O)),
        "sync-queue" => runner.run(fx, &SyncQueueSpec::new(O)),
        "dual-stack" => runner.run(fx, &DualStackSpec::with_timeouts(O)),
        "stack" => runner.run(fx, &SeqAsCa::new(StackSpec::total(O))),
        "register" => runner.run(fx, &SeqAsCa::new(RegisterSpec::new(O))),
        "counter" => runner.run(fx, &SeqAsCa::new(CounterSpec::new(O))),
        "kv" => runner.run(fx, &SeqAsCa::new(KvMapSpec::new())),
        "two-exchangers" => runner.run(
            fx,
            &PerObject::new(vec![(O, ExchangerSpec::new(O)), (O1, ExchangerSpec::new(O1))]),
        ),
        other => panic!("{}: no spec named {other:?}", fx.name),
    }
}

/// The `--mode`s the `cal-check` binary supports for each spec name;
/// empty for specs only the in-process harness knows.
fn binary_modes(spec: &str) -> &'static [&'static str] {
    match spec {
        "exchanger" | "elim-array" | "sync-queue" | "dual-stack" => &["cal"],
        "stack" | "register" | "counter" | "kv" => &["cal", "seq", "interval"],
        _ => &[],
    }
}

fn format_flag(format: Format) -> &'static str {
    match format {
        Format::Native => "native",
        Format::Jepsen => "jepsen",
        Format::KvLog => "kvlog",
    }
}

#[test]
fn corpus_verdicts_match_golden_expectations() {
    let fixtures = load_corpus();
    assert!(
        fixtures.len() >= 20,
        "corpus shrank to {} fixtures; expected at least 20",
        fixtures.len()
    );
    for fx in &fixtures {
        dispatch(fx, &CalRunner);
    }
}

/// Every fixture again in causal mode: annotated traces check under
/// their declared order against `# expect-causal:` (defaulting to
/// `# expect:`), unannotated ones under real time — where the causal
/// verdict must equal the CAL verdict, fixture by fixture.
#[test]
fn causal_corpus_verdicts_match_golden_expectations() {
    let fixtures = load_corpus();
    for fx in &fixtures {
        dispatch(fx, &CausalRunner);
    }
    // The causal corpus must keep its divergence coverage: at least one
    // reordering witness causal mode accepts and CAL mode rejects, and
    // at least one annotated trace whose declared edges *restore* a
    // rejection — relaxation is a choice, not a foregone conclusion.
    let divergent = fixtures
        .iter()
        .any(|f| f.expect == Expect::NotCal && f.causal_expect() == Expect::Cal);
    assert!(divergent, "no fixture diverges: causal-accepts vs CAL-rejects is the point");
    let annotated_reject = fixtures.iter().any(|f| {
        f.hb_edges.as_ref().is_some_and(|e| !e.is_empty()) && f.causal_expect() == Expect::NotCal
    });
    assert!(annotated_reject, "no annotated fixture keeps its rejection under declared edges");
}

/// Every fixture with a binary-known spec lands on its documented exit
/// code through `cal-check`, in every mode that spec supports, with the
/// format given explicitly.
#[test]
fn corpus_exit_codes_match_through_the_binary() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    for fx in &load_corpus() {
        for mode in binary_modes(&fx.spec) {
            let mut cmd = Command::new(exe);
            cmd.args(["--mode", mode, "--format", format_flag(fx.format)]);
            if let Some(n) = fx.max_nodes {
                cmd.args(["--max-nodes", &n.to_string()]);
            }
            let out = cmd
                .arg(&fx.spec)
                .arg(&fx.path)
                .output()
                .unwrap_or_else(|e| panic!("{}: cannot run cal-check: {e}", fx.name));
            assert_eq!(
                out.status.code(),
                Some(fx.expect.exit_code()),
                "{} --mode {mode}: stderr: {}",
                fx.name,
                String::from_utf8_lossy(&out.stderr)
            );
            if fx.expect == Expect::Error {
                let stderr = String::from_utf8_lossy(&out.stderr);
                assert!(
                    stderr.contains("line "),
                    "{} --mode {mode}: error diagnostics must name the line: {stderr}",
                    fx.name
                );
            }
        }
    }
}

#[test]
fn corpus_covers_both_verdict_classes_per_spec_family() {
    // Guard against a corpus that only exercises one side of a spec:
    // the exchanger family must have both CAL and not-CAL fixtures.
    let fixtures = load_corpus();
    let cal = fixtures.iter().any(|f| f.spec == "exchanger" && f.expect == Expect::Cal);
    let not = fixtures.iter().any(|f| f.spec == "exchanger" && f.expect == Expect::NotCal);
    assert!(cal && not, "exchanger fixtures must cover both verdicts");
}

/// The same fixtures through `cal-check --mode causal` (default
/// `--hb auto`): annotated traces land on their `# expect-causal:` exit
/// code, unannotated ones on the CAL exit code — the differential
/// anchor, pinned end to end through the binary.
#[test]
fn corpus_exit_codes_match_in_causal_mode() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    for fx in &load_corpus() {
        if binary_modes(&fx.spec).is_empty() {
            continue;
        }
        let mut cmd = Command::new(exe);
        cmd.args(["--mode", "causal", "--format", format_flag(fx.format)]);
        if let Some(n) = fx.max_nodes {
            cmd.args(["--max-nodes", &n.to_string()]);
        }
        let out = cmd
            .arg(&fx.spec)
            .arg(&fx.path)
            .output()
            .unwrap_or_else(|e| panic!("{}: cannot run cal-check: {e}", fx.name));
        assert_eq!(
            out.status.code(),
            Some(fx.causal_expect().exit_code()),
            "{} --mode causal: stderr: {}",
            fx.name,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// A malformed-spec fixture from `tests/corpus/dsl/`: the `.cal` source
/// plus the diagnostic it must produce.
struct DslFixture {
    name: String,
    path: PathBuf,
    text: String,
    code: String,
    line: u32,
    col: u32,
    message: String,
}

fn load_dsl_corpus() -> Vec<DslFixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/dsl");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cal"))
        .collect();
    paths.sort();
    let mut fixtures = Vec::new();
    for path in paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).unwrap();
        let header = |key: &str| -> Option<String> {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!("# {key}:")))
                .map(|rest| rest.trim().to_string())
        };
        let required =
            |key: &str| header(key).unwrap_or_else(|| panic!("{name}: missing `# {key}:` header"));
        fixtures.push(DslFixture {
            code: required("expect-code"),
            line: required("expect-line").parse().unwrap(),
            col: required("expect-col").parse().unwrap(),
            message: required("expect-message"),
            name,
            path,
            text,
        });
    }
    fixtures
}

/// Every malformed `.cal` fixture fails compilation with exactly the
/// pinned diagnostic code, position and message substring — and the
/// corpus covers every diagnostic code the DSL defines, so no code can
/// be added without a fixture demonstrating it.
#[test]
fn dsl_corpus_diagnostics_pin_code_and_position() {
    let fixtures = load_dsl_corpus();
    let mut covered = std::collections::HashSet::new();
    for fx in &fixtures {
        let diag = dsl::parse_str(&fx.text)
            .err()
            .unwrap_or_else(|| panic!("{}: expected a diagnostic, but the file compiled", fx.name));
        assert_eq!(diag.code.as_str(), fx.code, "{}: wrong code: {diag}", fx.name);
        assert_eq!((diag.line, diag.col), (fx.line, fx.col), "{}: wrong position: {diag}", fx.name);
        assert!(
            diag.message.contains(&fx.message),
            "{}: message {:?} does not contain {:?}",
            fx.name,
            diag.message,
            fx.message
        );
        covered.insert(fx.code.clone());
    }
    for code in dsl::DiagCode::ALL {
        assert!(
            covered.contains(code.as_str()),
            "no tests/corpus/dsl/ fixture triggers {}",
            code.as_str()
        );
    }
}

/// The same fixtures through the binary: `cal-check --spec bad.cal` must
/// exit 3 before reading any input, printing the pinned code and position.
#[test]
fn dsl_corpus_diagnostics_through_the_binary() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    for fx in &load_dsl_corpus() {
        let out = Command::new(exe)
            .arg("--spec")
            .arg(&fx.path)
            .arg("-")
            .stdin(std::process::Stdio::null())
            .output()
            .unwrap_or_else(|e| panic!("{}: cannot run cal-check: {e}", fx.name));
        assert_eq!(
            out.status.code(),
            Some(3),
            "{}: stderr: {}",
            fx.name,
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let want = format!("error[{}]", fx.code);
        assert!(stderr.contains(&want), "{}: stderr lacks {want}: {stderr}", fx.name);
        let pos = format!("(line {}, column {})", fx.line, fx.col);
        assert!(stderr.contains(&pos), "{}: stderr lacks {pos}: {stderr}", fx.name);
    }
}

/// The history-fixture spec names that have a shipped `.cal` counterpart:
/// `(corpus spec, .cal file, DSL spec name)`.
const SHIPPED_DSL: &[(&str, &str, &str)] = &[
    ("exchanger", "specs/exchanger.cal", "exchanger"),
    ("sync-queue", "specs/sync_queue.cal", "sync_queue"),
    ("stack", "specs/stack.cal", "stack"),
    ("register", "specs/register.cal", "register"),
    ("counter", "specs/counter.cal", "counter"),
];

/// Replaying the verdict corpus through `cal-check --spec` with the
/// shipped DSL programs lands on the same exit code as the built-in
/// specs, in every mode the built-in supports (DSL seq specs support
/// all three modes; DSL ca specs are cal-only, like their built-ins).
#[test]
fn dsl_specs_match_builtins_on_golden_corpus() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut replayed = 0;
    for fx in &load_corpus() {
        let Some((_, cal_file, dsl_name)) =
            SHIPPED_DSL.iter().find(|(spec, _, _)| *spec == fx.spec)
        else {
            continue;
        };
        for mode in binary_modes(&fx.spec) {
            let mut cmd = Command::new(exe);
            cmd.args(["--mode", mode, "--format", format_flag(fx.format)]);
            cmd.arg("--spec").arg(root.join(cal_file));
            if let Some(n) = fx.max_nodes {
                cmd.args(["--max-nodes", &n.to_string()]);
            }
            let out = cmd
                .arg(dsl_name)
                .arg(&fx.path)
                .output()
                .unwrap_or_else(|e| panic!("{}: cannot run cal-check: {e}", fx.name));
            assert_eq!(
                out.status.code(),
                Some(fx.expect.exit_code()),
                "{} --mode {mode} via {cal_file}: stderr: {}",
                fx.name,
                String::from_utf8_lossy(&out.stderr)
            );
            replayed += 1;
        }
    }
    assert!(replayed >= 15, "only {replayed} corpus runs were replayed through the DSL");
}

/// The foreign corpus keeps its guaranteed coverage: at least a dozen
/// verdict fixtures across both foreign formats, both verdict classes,
/// plus malformed and budget-bounded entries.
#[test]
fn foreign_corpus_covers_formats_verdicts_and_failure_classes() {
    let fixtures = load_corpus();
    let foreign: Vec<_> = fixtures
        .iter()
        .filter(|f| f.path.parent().unwrap().file_name().unwrap() == "foreign")
        .collect();
    let verdicts = foreign
        .iter()
        .filter(|f| matches!(f.expect, Expect::Cal | Expect::NotCal | Expect::Undecided))
        .count();
    assert!(verdicts >= 12, "foreign corpus needs at least 12 verdict fixtures, has {verdicts}");
    assert!(foreign.iter().any(|f| f.format == Format::Jepsen), "no jepsen fixture");
    assert!(foreign.iter().any(|f| f.format == Format::KvLog), "no kvlog fixture");
    assert!(foreign.iter().any(|f| f.expect == Expect::Cal), "no accepted foreign trace");
    assert!(foreign.iter().any(|f| f.expect == Expect::NotCal), "no rejected foreign trace");
    assert!(foreign.iter().any(|f| f.expect == Expect::Undecided), "no undecided foreign trace");
    assert!(foreign.iter().any(|f| f.expect == Expect::Error), "no malformed foreign trace");
}
