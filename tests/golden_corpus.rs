//! Golden verdict corpus: every fixture under `tests/corpus/` carries a
//! `# spec:` and `# expect:` header; this test parses each history, runs
//! the sequential checker and the parallel checker at 1, 2 and 8
//! threads, and asserts the verdict matches the recorded expectation
//! (validating the witness whenever the verdict is CAL).

use std::fs;
use std::path::PathBuf;

use cal::core::check::{check_cal_with, witness_explains, CheckOptions, Verdict};
use cal::core::par::check_cal_par_with;
use cal::core::spec::{CaSpec, PerObject, SeqAsCa};
use cal::core::text::parse_history;
use cal::core::{History, ObjectId};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;

const O: ObjectId = ObjectId(0);
const O1: ObjectId = ObjectId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Cal,
    NotCal,
}

struct Fixture {
    name: String,
    spec: String,
    expect: Expect,
    history: History,
}

fn load_corpus() -> Vec<Fixture> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut fixtures = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hist"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).unwrap();
        let mut spec = None;
        let mut expect = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# spec:") {
                spec = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("# expect:") {
                expect = Some(match rest.trim() {
                    "cal" => Expect::Cal,
                    "not-cal" => Expect::NotCal,
                    other => panic!("{name}: unknown expectation {other:?}"),
                });
            }
        }
        let history =
            parse_history(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        fixtures.push(Fixture {
            spec: spec.unwrap_or_else(|| panic!("{name}: missing `# spec:` header")),
            expect: expect.unwrap_or_else(|| panic!("{name}: missing `# expect:` header")),
            name,
            history,
        });
    }
    fixtures
}

/// Runs one fixture against `spec`, sequentially and in parallel.
fn run_fixture<S>(fx: &Fixture, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let check = |label: &str, verdict: &Verdict| match (fx.expect, verdict) {
        (Expect::Cal, Verdict::Cal(w)) => {
            assert!(
                witness_explains(&fx.history, spec, w),
                "{}: {label} produced an invalid witness {w}",
                fx.name
            );
        }
        (Expect::NotCal, Verdict::NotCal) => {}
        (want, got) => panic!("{}: {label} returned {got:?}, expected {want:?}", fx.name),
    };
    let options = CheckOptions::default();
    let seq = check_cal_with(&fx.history, spec, &options)
        .unwrap_or_else(|e| panic!("{}: sequential checker errored: {e}", fx.name));
    check("sequential", &seq.verdict);
    for threads in [1usize, 2, 8] {
        let par_options = CheckOptions { threads, ..CheckOptions::default() };
        let par = check_cal_par_with(&fx.history, spec, &par_options)
            .unwrap_or_else(|e| panic!("{}: parallel checker errored: {e}", fx.name));
        check(&format!("parallel({threads})"), &par.verdict);
    }
}

fn dispatch(fx: &Fixture) {
    match fx.spec.as_str() {
        "exchanger" => run_fixture(fx, &ExchangerSpec::new(O)),
        "elim-array" => run_fixture(fx, &ElimArraySpec::new(O)),
        "sync-queue" => run_fixture(fx, &SyncQueueSpec::new(O)),
        "dual-stack" => run_fixture(fx, &DualStackSpec::with_timeouts(O)),
        "stack" => run_fixture(fx, &SeqAsCa::new(StackSpec::total(O))),
        "register" => run_fixture(fx, &SeqAsCa::new(RegisterSpec::new(O))),
        "counter" => run_fixture(fx, &SeqAsCa::new(CounterSpec::new(O))),
        "two-exchangers" => run_fixture(
            fx,
            &PerObject::new(vec![(O, ExchangerSpec::new(O)), (O1, ExchangerSpec::new(O1))]),
        ),
        other => panic!("{}: no spec named {other:?}", fx.name),
    }
}

#[test]
fn corpus_verdicts_match_golden_expectations() {
    let fixtures = load_corpus();
    assert!(
        fixtures.len() >= 20,
        "corpus shrank to {} fixtures; expected at least 20",
        fixtures.len()
    );
    for fx in &fixtures {
        dispatch(fx);
    }
}

#[test]
fn corpus_covers_both_verdict_classes_per_spec_family() {
    // Guard against a corpus that only exercises one side of a spec:
    // the exchanger family must have both CAL and not-CAL fixtures.
    let fixtures = load_corpus();
    let cal = fixtures.iter().any(|f| f.spec == "exchanger" && f.expect == Expect::Cal);
    let not = fixtures.iter().any(|f| f.spec == "exchanger" && f.expect == Expect::NotCal);
    assert!(cal && not, "exchanger fixtures must cover both verdicts");
}
