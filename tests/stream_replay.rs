//! Acceptance: the streaming checker replays a million-event generated
//! trace in bounded memory. The bound is verified through the retirement
//! counters — `retired_actions + window == events` with `peak_window`
//! pinned at the configured cap — not wall-clock or RSS sampling, so the
//! test is deterministic on any machine.

use cal::core::spec::SeqAsCa;
use cal::core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict};
use cal::core::{Action, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::RegisterSpec;

const OBJ: ObjectId = ObjectId(0);

/// One million events of a sequential register client: every operation
/// closes a retirement boundary, so the steady-state window is O(1)
/// regardless of history length. 500k ops = 1M actions.
#[test]
fn million_event_sequential_replay_stays_bounded() {
    let opts = StreamOptions {
        max_window: 64,
        checkpoint_every: 256,
        ..StreamOptions::default()
    };
    let mut c = StreamChecker::new(SeqAsCa::new(RegisterSpec::new(OBJ)), opts);
    let t = ThreadId(0);
    let ops = 500_000u64;
    for i in 0..ops {
        let v = (i % 10) as i64;
        let (m, arg, ret) = if i % 2 == 0 {
            (Method("write"), Value::Int(v), Value::Unit)
        } else {
            // Reads observe the value just written (i-1 wrote (i-1)%10).
            (Method("read"), Value::Unit, Value::Int(((i - 1) % 10) as i64))
        };
        assert_eq!(c.push(Action::invoke(t, OBJ, m, arg)), Push::Admitted);
        assert_eq!(c.push(Action::response(t, OBJ, m, ret)), Push::Admitted);
    }
    assert_eq!(c.finish(), StreamVerdict::Consistent);
    let s = c.stats();
    assert_eq!(s.events, 2 * ops);
    // The memory bound, in counters: everything the stream ever admitted
    // is either retired or still inside the (bounded) window.
    assert_eq!(s.retired_actions + s.window as u64, s.events);
    assert_eq!(s.retired_ops, ops);
    assert!(
        s.peak_window <= 2 * 64,
        "peak window {} exceeds the configured bound",
        s.peak_window
    );
    // A sequential stream never needs more than one reachable state.
    assert_eq!(s.peak_states, 1);
    // Retirement ran continuously, not in one giant deferred batch.
    assert!(s.retired_segments >= ops / 64, "only {} segments retired", s.retired_segments);
}

/// A long concurrent stream — overlapping exchange pairs — retires
/// through the real search path (segments are genuinely concurrent), and
/// the window still never outgrows the cap.
#[test]
fn concurrent_exchange_replay_stays_bounded() {
    let opts = StreamOptions {
        max_window: 32,
        checkpoint_every: 128,
        ..StreamOptions::default()
    };
    let mut c = StreamChecker::new(ExchangerSpec::new(OBJ), opts);
    let ex = Method("exchange");
    let pairs = 25_000u64;
    for i in 0..pairs {
        let (a, b) = (ThreadId(0), ThreadId(1));
        let (va, vb) = ((i % 100) as i64, ((i + 1) % 100) as i64);
        assert_eq!(c.push(Action::invoke(a, OBJ, ex, Value::Int(va))), Push::Admitted);
        assert_eq!(c.push(Action::invoke(b, OBJ, ex, Value::Int(vb))), Push::Admitted);
        assert_eq!(c.push(Action::response(a, OBJ, ex, Value::Pair(true, vb))), Push::Admitted);
        assert_eq!(c.push(Action::response(b, OBJ, ex, Value::Pair(true, va))), Push::Admitted);
    }
    assert_eq!(c.finish(), StreamVerdict::Consistent);
    let s = c.stats();
    assert_eq!(s.events, 4 * pairs);
    assert_eq!(s.retired_actions + s.window as u64, s.events);
    assert_eq!(s.retired_ops, 2 * pairs);
    assert!(s.peak_window <= 2 * 32, "peak window {}", s.peak_window);
    assert_eq!(s.peak_states, 1, "the exchanger is stateless across elements");
    assert_eq!(s.saturated, 0, "retirement kept up; backpressure never fired");
}

/// Saturation + degradation under a window too small for the workload:
/// the checker answers `undecided: window exceeded` instead of growing —
/// and the counters still reconcile.
#[test]
fn overflowing_replay_degrades_instead_of_growing() {
    let opts = StreamOptions { max_window: 4, checkpoint_every: 0, ..StreamOptions::default() };
    let mut c = StreamChecker::new(ExchangerSpec::new(OBJ), opts);
    let ex = Method("exchange");
    // Open invocations on distinct threads, never responding: nothing
    // can retire, so the cap must bite at the fifth invocation.
    let mut saturated_at = None;
    for i in 0..16u32 {
        match c.push(Action::invoke(ThreadId(i), OBJ, ex, Value::Int(i as i64))) {
            Push::Admitted => {}
            Push::Saturated => {
                saturated_at = Some(i);
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(saturated_at, Some(4), "cap counts open invocations");
    c.degrade();
    assert_eq!(
        c.finish().to_string(),
        "undecided: window exceeded",
        "degradation must be the explicit documented verdict"
    );
    let s = c.stats();
    assert_eq!(s.events, 4);
    assert_eq!(s.peak_window, 4);
}
