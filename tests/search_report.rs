//! The observability layer end to end: a [`CountingSink`] attached to a
//! check produces a [`SearchReport`] with nonzero node/memo counters on
//! real corpus fixtures, the report's counters agree with the checker's
//! own [`CheckStats`], and the `cal-check --stats-json` surface emits the
//! same report through the binary.

use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use cal::core::check::{check_cal_with, CheckOptions};
use cal::core::obs::{CountingSink, ObjectOutcome, SearchReport, StatsSink};
use cal::core::par::check_cal_par_with;
use cal::core::spec::PerObject;
use cal::core::text::parse_history;
use cal::core::ObjectId;
use cal::specs::exchanger::ExchangerSpec;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn counted_options(sink: &Arc<CountingSink>, threads: usize) -> CheckOptions {
    CheckOptions {
        sink: Some(Arc::clone(sink) as Arc<dyn StatsSink>),
        threads,
        ..CheckOptions::default()
    }
}

/// The three-way delivery cycle backtracks enough to exercise nodes,
/// elements, frontiers and the memo table in one sequential run.
#[test]
fn sequential_report_counters_are_nonzero_and_consistent() {
    let h = parse_history(&fixture("fig3_three_way_cycle.hist")).unwrap();
    let spec = ExchangerSpec::new(ObjectId(0));
    let sink = Arc::new(CountingSink::new());
    let options = counted_options(&sink, 1);
    let start = Instant::now();
    let outcome = check_cal_with(&h, &spec, &options).unwrap();
    let report = sink.report(&outcome, &options, start.elapsed());

    assert_eq!(report.verdict, "not-cal");
    assert!(report.nodes > 0, "no nodes counted: {report:?}");
    assert!(report.elements_tried > 0);
    // Sink and authoritative stats must agree event for event.
    assert_eq!(sink.nodes(), outcome.stats.nodes);
    assert_eq!(sink.elements_tried(), outcome.stats.elements_tried);
    assert_eq!(sink.memo_hits(), outcome.stats.memo_hits);
    // Every expanded node probes the memo exactly once (memoize is on).
    assert_eq!(sink.memo_hits() + sink.memo_misses(), outcome.stats.nodes);
    assert!(sink.memo_inserts() > 0, "a refuting search must record failed states");
    assert!(report.frontier_max >= 3, "three concurrent ops at the root");
    assert!(report.wall_ms >= 0.0);
}

#[test]
fn parallel_frontier_report_records_branches_and_workers() {
    // fig1_swap is single-object, so the parallel checker takes the
    // frontier-splitting path, and its successful swap gives the root a
    // nonempty frontier (the cycle fixture refutes at the root instead).
    let h = parse_history(&fixture("fig1_swap.hist")).unwrap();
    let spec = ExchangerSpec::new(ObjectId(0));
    let sink = Arc::new(CountingSink::new());
    let options = counted_options(&sink, 4);
    let start = Instant::now();
    let outcome = check_cal_par_with(&h, &spec, &options).unwrap();
    let report = sink.report(&outcome, &options, start.elapsed());

    assert_eq!(report.verdict, "cal");
    assert!(report.nodes > 0);
    assert!(report.root_branches > 0, "frontier split must report its branches");
    assert!(report.root_workers >= 1);
    assert_eq!(sink.nodes(), outcome.stats.nodes, "sink and stats disagree on nodes");
    assert_eq!(sink.elements_tried(), outcome.stats.elements_tried);
}

#[test]
fn decomposed_report_has_one_outcome_per_object() {
    let h = parse_history(&fixture("two_exchangers.hist")).unwrap();
    let objects = h.objects();
    assert!(objects.len() >= 2, "fixture must span several objects");
    let spec = PerObject::new(
        objects.iter().map(|&o| (o, ExchangerSpec::new(o))).collect::<Vec<_>>(),
    );
    let sink = Arc::new(CountingSink::new());
    let options = counted_options(&sink, 4);
    let start = Instant::now();
    let outcome = check_cal_par_with(&h, &spec, &options).unwrap();
    let report = sink.report(&outcome, &options, start.elapsed());

    assert_eq!(report.verdict, "cal");
    assert_eq!(report.objects.len(), objects.len());
    for object in report.objects {
        assert_eq!(object.outcome, ObjectOutcome::Cal, "o{}", object.object.0);
        assert!(object.wall_ms >= 0.0);
    }
    assert_eq!(sink.nodes(), outcome.stats.nodes);
}

/// Minimal JSON shape validation without a JSON parser: balanced braces,
/// the counters present, and numeric fields extractable.
fn json_u64_field(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = json.find(&pat).unwrap_or_else(|| panic!("missing {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {json}"))
}

#[test]
fn stats_json_flag_emits_nonzero_counters() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    let fixture_path =
        format!("{}/tests/corpus/fig3_three_way_cycle.hist", env!("CARGO_MANIFEST_DIR"));
    let out_path = std::env::temp_dir().join(format!("cal-check-report-{}.json", std::process::id()));
    let output = Command::new(exe)
        .args(["exchanger", &fixture_path, "--stats-json"])
        .arg(&out_path)
        .output()
        .expect("cal-check runs");
    assert_eq!(output.status.code(), Some(1), "cycle fixture is not-cal");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    let _ = std::fs::remove_file(&out_path);

    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'), "{json}");
    assert!(json.contains("\"verdict\": \"not-cal\""), "{json}");
    assert!(json_u64_field(&json, "nodes") > 0, "{json}");
    assert!(json_u64_field(&json, "elements_tried") > 0, "{json}");
    // The cycle search refutes states, so the memo table sees traffic.
    assert!(json_u64_field(&json, "memo_misses") > 0, "{json}");
    assert!(json_u64_field(&json, "memo_inserts") > 0, "{json}");
}

#[test]
fn stats_json_dash_writes_to_stdout() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    let fixture_path = format!("{}/tests/corpus/fig1_swap.hist", env!("CARGO_MANIFEST_DIR"));
    let output = Command::new(exe)
        .args(["exchanger", &fixture_path, "--stats-json", "-"])
        .output()
        .expect("cal-check runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON line in stdout:\n{stdout}"));
    assert!(json_line.contains("\"verdict\": \"cal\""), "{json_line}");
    assert!(json_u64_field(json_line, "nodes") > 0, "{json_line}");
}

#[test]
fn explain_flag_names_the_interrupt_cause() {
    let exe = env!("CARGO_BIN_EXE_cal-check");
    // 13 identical concurrent "successful" exchanges: unsatisfiable and
    // big enough that a zero deadline always fires at the first poll.
    let mut input = String::new();
    for t in 1..=13 {
        input.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 1..=13 {
        input.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    let mut child = Command::new(exe)
        .args(["exchanger", "-", "--deadline-ms", "0", "--explain"])
        .stdin(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("cal-check spawns");
    use std::io::Write;
    child.stdin.take().expect("stdin piped").write_all(input.as_bytes()).expect("write stdin");
    let output = child.wait_with_output().expect("cal-check runs");
    assert_eq!(output.status.code(), Some(2), "deadline-interrupted check is undecided");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("deadline-exceeded"), "explain must name the cause:\n{stderr}");
}

#[test]
fn report_survives_a_quiet_run_without_sink_events() {
    // An empty history decides at the root: the report must stay coherent
    // (no divide-by-zero in frontier_mean, valid JSON) with zero events.
    let h = parse_history("").unwrap();
    let spec = ExchangerSpec::new(ObjectId(0));
    let sink = Arc::new(CountingSink::new());
    let options = counted_options(&sink, 1);
    let start = Instant::now();
    let outcome = check_cal_with(&h, &spec, &options).unwrap();
    let report: SearchReport = sink.report(&outcome, &options, start.elapsed());
    assert_eq!(report.verdict, "cal");
    assert_eq!(report.frontier_mean, 0.0);
    assert!(report.to_json().contains("\"nodes\": 0"));
    assert!(!report.explain().is_empty());
}
