//! E12 — the dual stack (§6, Scherer & Scott): CAL specification with one
//! fulfillment element instead of two linearization points, verified in
//! the simulator and on real runs.

use cal::core::agree::agrees_bool;
use cal::core::check::is_cal;
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::objects::recorded::{run_threads, RecordedDualStack};
use cal::sim::models::dual_stack::DualStackModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::vocab::{POP, PUSH};

const S: ObjectId = ObjectId(0);

fn push(v: i64) -> OpRequest {
    OpRequest::new(PUSH, Value::Int(v))
}

fn pop() -> OpRequest {
    OpRequest::new(POP, Value::Unit)
}

#[test]
fn exhaustive_push_pop_with_fulfillment() {
    let model = DualStackModel::new(S, 2, 2);
    let spec = DualStackSpec::new(S);
    let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
    let mut fulfilled = false;
    let mut plain = false;
    Explorer::new(&model, w).run(|e| {
        assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
        if e.history.is_complete() {
            assert!(agrees_bool(&e.history, &e.trace));
        }
        for el in e.trace.elements() {
            if el.len() == 2 {
                fulfilled = true;
            } else if el.ops()[0].method == POP {
                plain = true;
            }
        }
    });
    assert!(fulfilled, "reservation/fulfillment must be reachable");
    assert!(plain, "the plain pop path must be reachable");
}

#[test]
fn popped_values_match_pushes() {
    let model = DualStackModel::new(S, 2, 2);
    let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
    Explorer::new(&model, w).max_paths(60_000).run(|e| {
        for op in e.history.operations() {
            if op.method == POP {
                let v = op.ret.as_int().unwrap();
                assert!(v == 1 || v == 2, "pop invented {v}");
            }
        }
    });
}

#[test]
fn waiting_pops_eventually_fulfilled_in_model() {
    // With enough patience, the pop in push‖pop always completes in some
    // schedule where the push fulfills it directly.
    let model = DualStackModel::new(S, 3, 6);
    let w = Workload::new(vec![vec![push(9)], vec![pop()]]);
    let mut completed = false;
    Explorer::new(&model, w).run(|e| {
        if e.history.is_complete() {
            completed = true;
        }
    });
    assert!(completed);
}

#[test]
fn real_dual_stack_runs_are_cal() {
    let s = RecordedDualStack::new(S);
    run_threads(4, |t| {
        for i in 0..8 {
            s.push(t, (t.0 as i64) * 1_000 + i);
            s.pop_wait(t);
        }
    });
    let h = s.recorder().history();
    assert!(h.is_complete());
    assert!(is_cal(&h, &DualStackSpec::new(S)).unwrap(), "real history not CAL:\n{h}");
}

#[test]
fn real_producers_consumers_are_cal() {
    let s = RecordedDualStack::new(S);
    run_threads(4, |t| {
        if t.0 < 2 {
            for i in 0..8 {
                s.push(t, (t.0 as i64) * 1_000 + i);
            }
        } else {
            for _ in 0..8 {
                s.pop_wait(t);
            }
        }
    });
    let h = s.recorder().history();
    assert!(is_cal(&h, &DualStackSpec::new(S)).unwrap(), "real history not CAL:\n{h}");
}
