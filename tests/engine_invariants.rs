//! Engine invariants locking in the parallel-search rebuild: whatever
//! combination of worker count, memoization, work-stealing and symmetry
//! reduction a check runs with, the *decided* verdict is the same — the
//! arena DFS, the lock-free fingerprint memo and subtree donation are
//! pure optimizations, never semantics. Alongside the differential
//! matrix, fingerprint-collision soundness for [`FpMemo`] and
//! cancellation-under-stealing accounting are property-tested here.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cal::core::causal::{causal_order, check_causal_par_with, check_causal_with};
use cal::core::check::{check_cal_with, CancelToken, CheckOptions, Verdict};
use cal::core::fpmemo::FpMemo;
use cal::core::history::HbRelation;
use cal::core::par::check_cal_par_with;
use cal::core::gen::interleave;
use cal::core::interval::{check_interval_par_with, check_interval_with};
use cal::core::obs::{CountingSink, StatsSink};
use cal::core::seqlin::{check_linearizable_par_with, check_linearizable_with};
use cal::core::spec::SeqAsCa;
use cal::core::text::parse_history;
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::RegisterSpec;
use cal::specs::snapshot::WriteSnapshotSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;

const O: ObjectId = ObjectId(0);

// --- history generation ----------------------------------------------------

type OpShape = (Method, Value, Value, bool);

fn arb_exchange_op() -> BoxedStrategy<OpShape> {
    (0i64..3, any::<bool>(), 0i64..3, any::<bool>())
        .prop_map(|(arg, ok, got, complete)| {
            (Method("exchange"), Value::Int(arg), Value::Pair(ok, got), complete)
        })
        .boxed()
}

fn arb_queue_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("put"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("take"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("write"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("read"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_snapshot_op() -> BoxedStrategy<OpShape> {
    // write_snapshot(v) ▷ view, the view a bitmask over values 0..3;
    // tiny values keep the interval point enumeration fast across the
    // whole option matrix.
    (0i64..3, 0i64..8, any::<bool>())
        .prop_map(|(v, view, complete)| {
            (Method("write_snapshot"), Value::Int(v), Value::Int(view), complete)
        })
        .boxed()
}

/// Builds a seeded interleaving of up to 3 threads × up to 3 ops.
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64) -> History {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t as u32), O, m, arg));
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), O, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(op: impl Strategy<Value = OpShape>) -> impl Strategy<Value = History> {
    (prop::collection::vec(prop::collection::vec(op, 0..4), 1..4), any::<u64>())
        .prop_map(|(threads, seed)| build_history(threads, seed))
}

// --- the option matrix -----------------------------------------------------

/// Every engine configuration a decided verdict must be invariant under:
/// a thread sweep with default flags, plus each flag ablated (and all
/// ablated at once) at 4 threads.
fn option_matrix() -> Vec<CheckOptions> {
    let mut matrix = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        matrix.push(CheckOptions { threads, ..CheckOptions::default() });
    }
    for (memoize, stealing, symmetry) in
        [(false, true, true), (true, false, true), (true, true, false), (false, false, false)]
    {
        matrix.push(CheckOptions {
            threads: 4,
            memoize,
            stealing,
            symmetry,
            ..CheckOptions::default()
        });
    }
    matrix
}

fn label(o: &CheckOptions) -> String {
    format!(
        "threads={} memoize={} stealing={} symmetry={}",
        o.threads, o.memoize, o.stealing, o.symmetry
    )
}

/// Runs `check` over the whole option matrix and asserts every decided
/// verdict matches the sequential default-flags baseline. `baseline` and
/// each matrix entry must decide (the generated instances are tiny and
/// budgets default to 4M nodes, so anything undecided is itself a bug).
fn assert_matrix_invariant<W: std::fmt::Debug>(
    h: &History,
    seq: impl Fn(&CheckOptions) -> Verdict<W>,
    par: impl Fn(&CheckOptions) -> Verdict<W>,
) {
    let baseline = seq(&CheckOptions::default());
    assert!(
        !baseline.is_undecided(),
        "baseline must decide tiny instances, got {baseline:?}\nhistory:\n{h}"
    );
    // Sequential flag ablations first: memoization and symmetry must not
    // change what the plain DFS decides.
    for options in [
        CheckOptions { memoize: false, ..CheckOptions::default() },
        CheckOptions { symmetry: false, ..CheckOptions::default() },
    ] {
        let v = seq(&options);
        assert_eq!(
            baseline.is_cal(),
            v.is_cal(),
            "sequential {} diverged: {baseline:?} vs {v:?}\nhistory:\n{h}",
            label(&options)
        );
    }
    for options in option_matrix() {
        let v = par(&options);
        assert_eq!(
            baseline.is_cal(),
            v.is_cal(),
            "parallel {} diverged: {baseline:?} vs {v:?}\nhistory:\n{h}",
            label(&options)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exchanger_verdict_invariant_across_engine_options(h in history_of(arb_exchange_op())) {
        let spec = ExchangerSpec::new(O);
        assert_matrix_invariant(
            &h,
            |o| check_cal_with(&h, &spec, o).expect("well-formed").verdict,
            |o| check_cal_par_with(&h, &spec, o).expect("well-formed").verdict,
        );
    }

    #[test]
    fn sync_queue_verdict_invariant_across_engine_options(h in history_of(arb_queue_op())) {
        let spec = SyncQueueSpec::new(O);
        assert_matrix_invariant(
            &h,
            |o| check_cal_with(&h, &spec, o).expect("well-formed").verdict,
            |o| check_cal_par_with(&h, &spec, o).expect("well-formed").verdict,
        );
    }

    #[test]
    fn seqlin_verdict_invariant_across_engine_options(h in history_of(arb_register_op())) {
        let spec = RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]);
        assert_matrix_invariant(
            &h,
            |o| check_linearizable_with(&h, &spec, o).expect("well-formed").verdict,
            |o| check_linearizable_par_with(&h, &spec, o).expect("well-formed").verdict,
        );
    }

    #[test]
    fn cal_via_seq_adapter_verdict_invariant(h in history_of(arb_register_op())) {
        // The same register family through the CAL checker's singleton
        // embedding: exercises CalDomain's symmetry classes on a spec
        // whose ops rarely clone, i.e. the `is_trivial` fast path.
        let spec = SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]));
        assert_matrix_invariant(
            &h,
            |o| check_cal_with(&h, &spec, o).expect("well-formed").verdict,
            |o| check_cal_par_with(&h, &spec, o).expect("well-formed").verdict,
        );
    }

    #[test]
    fn causal_verdict_invariant_across_engine_options(h in history_of(arb_exchange_op())) {
        // A genuinely *partial* order — session order only — through the
        // same matrix: the hb-constraint symmetry classes, the memo keyed
        // on hb frontiers and root-frontier splitting (per-object
        // decomposition is off under a partial order) must all be
        // verdict-preserving.
        let spec = ExchangerSpec::new(O);
        let hb = causal_order(&h, &[]).expect("well-formed");
        assert_matrix_invariant(
            &h,
            |o| check_causal_with(&h, &spec, &hb, o).expect("well-formed").verdict,
            |o| check_causal_par_with(&h, &spec, &hb, o).expect("well-formed").verdict,
        );
    }

    #[test]
    fn causal_real_time_verdict_invariant_across_engine_options(h in history_of(arb_queue_op())) {
        // The total-order instance through the matrix: causal mode on
        // `≺H` is CAL, so on top of self-consistency the baseline must
        // equal the CAL baseline (the differential anchor, ablated).
        let spec = SyncQueueSpec::new(O);
        let hb = HbRelation::real_time(&h.spans());
        assert_matrix_invariant(
            &h,
            |o| check_causal_with(&h, &spec, &hb, o).expect("well-formed").verdict,
            |o| check_causal_par_with(&h, &spec, &hb, o).expect("well-formed").verdict,
        );
        let cal = check_cal_with(&h, &spec, &CheckOptions::default()).expect("well-formed");
        let causal = check_causal_with(&h, &spec, &hb, &CheckOptions::default())
            .expect("well-formed");
        prop_assert_eq!(
            cal.verdict.is_cal(),
            causal.verdict.is_cal(),
            "causal-on-real-time diverged from CAL\nhistory:\n{}", h
        );
    }

    #[test]
    fn interval_verdict_invariant_across_engine_options(h in history_of(arb_snapshot_op())) {
        let spec = WriteSnapshotSpec::new(O, 3);
        assert_matrix_invariant(
            &h,
            |o| check_interval_with(&h, &spec, o).expect("well-formed").verdict,
            |o| check_interval_par_with(&h, &spec, o).expect("well-formed").verdict,
        );
    }
}

// --- fingerprint-collision soundness ---------------------------------------

/// A key whose `Hash` collapses to a constant: every key lands on the
/// same fingerprint *and* the same probe sequence, the worst case for an
/// open-addressed fingerprint table.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Colliding(u64);

impl Hash for Colliding {
    fn hash<H: Hasher>(&self, state: &mut H) {
        0u64.hash(state);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false hits, ever: a `contains` that answers `true` must be for
    /// a key that was actually inserted, under honest hashing...
    #[test]
    fn fpmemo_never_false_hits(
        inserts in prop::collection::vec(0u64..1_000, 0..200),
        probes in prop::collection::vec(0u64..1_000, 0..200),
    ) {
        let inserts: HashSet<u64> = inserts.into_iter().collect();
        let memo: FpMemo<u64> = FpMemo::with_capacity(256);
        for k in &inserts {
            memo.insert(k);
        }
        for p in &probes {
            if memo.contains(p) {
                prop_assert!(inserts.contains(p), "false hit for {p}");
            }
        }
    }

    /// ...and under total fingerprint collision, where only the boxed-key
    /// `Eq` confirmation stands between a shared fingerprint and an
    /// unsound prune.
    #[test]
    fn fpmemo_never_false_hits_under_total_collision(
        inserts in prop::collection::vec(0u64..1_000, 0..40),
        probes in prop::collection::vec(0u64..1_000, 0..100),
    ) {
        let inserts: HashSet<u64> = inserts.into_iter().collect();
        let memo: FpMemo<Colliding> = FpMemo::with_capacity(64);
        for k in &inserts {
            memo.insert(&Colliding(*k));
        }
        for p in &probes {
            if memo.contains(&Colliding(*p)) {
                prop_assert!(inserts.contains(p), "false hit for colliding key {p}");
            }
        }
    }

    /// Below the eviction threshold and without probe-window overflow,
    /// an acknowledged insert stays resident: `insert -> true` implies
    /// `contains` until the next generation sweep.
    #[test]
    fn fpmemo_acknowledged_inserts_are_resident(
        inserts in prop::collection::vec(0u64..10_000, 0..200),
    ) {
        let inserts: HashSet<u64> = inserts.into_iter().collect();
        let memo: FpMemo<u64> = FpMemo::with_capacity(4096);
        let mut acknowledged = HashSet::new();
        for k in &inserts {
            if memo.insert(k) {
                acknowledged.insert(*k);
            }
        }
        prop_assert_eq!(memo.evictions(), 0, "threshold should not be reached");
        for k in &acknowledged {
            prop_assert!(memo.contains(k), "acknowledged insert {k} went missing");
        }
    }
}

// --- cancellation under stealing -------------------------------------------

/// A sink that fires a [`CancelToken`] after a randomized number of node
/// expansions, from whichever worker happens to cross the line.
#[derive(Debug)]
struct CancelAfter {
    token: CancelToken,
    after: u64,
    seen: AtomicU64,
    inner: CountingSink,
}

impl StatsSink for CancelAfter {
    fn on_node(&self) {
        self.inner.on_node();
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
            self.token.cancel();
        }
    }
    fn on_steal(&self) {
        self.inner.on_steal();
    }
}

/// `k` pairwise-concurrent identical exchanges, odd `k`: unsatisfiable,
/// and with memoization off the refutation is super-exponential — the
/// search cannot finish before any plausible cancellation point.
fn unbounded_history(k: usize) -> History {
    let mut text = String::new();
    for t in 0..k {
        text.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 0..k {
        text.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    parse_history(&text).expect("parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cancelling mid-search under work-stealing yields `Interrupted`
    /// with exact node accounting: every expanded node was charged once
    /// to the aggregated stats and once to the sink — donated subtrees
    /// are neither lost nor double-counted on the way down.
    #[test]
    fn cancellation_under_stealing_loses_no_nodes(
        after in 1u64..400,
        threads in 2usize..5,
    ) {
        let h = unbounded_history(13);
        let spec = ExchangerSpec::new(O);
        let sink = Arc::new(CancelAfter {
            token: CancelToken::new(),
            after,
            seen: AtomicU64::new(0),
            inner: CountingSink::new(),
        });
        let options = CheckOptions {
            threads,
            memoize: false,
            cancel: Some(sink.token.clone()),
            sink: Some(Arc::clone(&sink) as Arc<dyn StatsSink>),
            ..CheckOptions::default()
        };
        let outcome = check_cal_par_with(&h, &spec, &options).expect("well-formed");
        prop_assert!(
            matches!(outcome.verdict, Verdict::Interrupted { .. }),
            "expected an interrupt, got {:?}", outcome.verdict
        );
        prop_assert!(outcome.stats.nodes >= after.min(outcome.stats.nodes));
        prop_assert_eq!(
            sink.inner.nodes(),
            outcome.stats.nodes,
            "sink and stats disagree on expanded nodes (threads={}, after={})",
            threads,
            after
        );
    }
}
