//! Docs-integrity suite: the DSL manual cannot drift from the
//! implementation.
//!
//! - Every diagnostic code the compiler defines ([`dsl::DiagCode::ALL`])
//!   has a section in `docs/SPEC_DSL.md`, and every `E###` the docs
//!   mention is a code that exists.
//! - Every ```cal fence in `docs/SPEC_DSL.md` and `docs/TUTORIAL.md` is
//!   a complete `.cal` file that compiles.
//! - Every ```cal-error E### fence fails to compile with exactly the
//!   code named on its fence line.
//! - The shipped `specs/*.cal` files compile and define the spec their
//!   filename promises.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use cal::core::dsl;

fn doc(path: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
}

/// A fenced code block: the info string after ``` and the body.
struct Fence {
    info: String,
    body: String,
    line: usize,
}

fn fences(text: &str) -> Vec<Fence> {
    let mut out = Vec::new();
    let mut body: Option<(String, String, usize)> = None;
    for (i, line) in text.lines().enumerate() {
        match &mut body {
            None => {
                if let Some(info) = line.strip_prefix("```") {
                    if !info.is_empty() {
                        body = Some((info.trim().to_string(), String::new(), i + 1));
                    } else {
                        // Closing fence of an unfenced block would be a
                        // doc bug; tolerate plain ``` openers by
                        // treating them as anonymous blocks.
                        body = Some((String::new(), String::new(), i + 1));
                    }
                }
            }
            Some((info, acc, start)) => {
                if line.trim_end() == "```" {
                    out.push(Fence { info: info.clone(), body: acc.clone(), line: *start });
                    body = None;
                } else {
                    acc.push_str(line);
                    acc.push('\n');
                }
            }
        }
    }
    assert!(body.is_none(), "unclosed code fence");
    out
}

#[test]
fn every_diagnostic_code_is_documented() {
    let manual = doc("docs/SPEC_DSL.md");
    for code in dsl::DiagCode::ALL {
        let heading = format!("### {} — ", code.as_str());
        assert!(
            manual.contains(&heading),
            "docs/SPEC_DSL.md has no `{heading}...` section; every diagnostic code must be documented"
        );
    }
}

#[test]
fn every_mentioned_code_exists() {
    let known: BTreeSet<&str> = dsl::DiagCode::ALL.iter().map(|c| c.as_str()).collect();
    for path in ["docs/SPEC_DSL.md", "docs/TUTORIAL.md"] {
        let text = doc(path);
        let bytes = text.as_bytes();
        for (i, _) in text.match_indices('E') {
            if i + 4 > bytes.len() || !bytes[i + 1..i + 4].iter().all(u8::is_ascii_digit) {
                continue;
            }
            // Only exact 3-digit codes, not longer numbers (E2E, E1234).
            if bytes.get(i + 4).is_some_and(u8::is_ascii_digit) {
                continue;
            }
            // Skip prose coincidences that are not code references, like
            // "E17" (an EXPERIMENTS.md entry) — those have <3 digits and
            // were already skipped; any E### in the docs must be real.
            let code = &text[i..i + 4];
            assert!(known.contains(code), "{path} mentions unknown diagnostic {code}");
        }
    }
}

#[test]
fn every_cal_fence_in_the_docs_compiles() {
    for path in ["docs/SPEC_DSL.md", "docs/TUTORIAL.md"] {
        let text = doc(path);
        let mut checked = 0;
        for f in fences(&text) {
            if f.info == "cal" {
                dsl::parse_str(&f.body).unwrap_or_else(|d| {
                    panic!("{path}: ```cal fence at line {} does not compile: {d}", f.line)
                });
                checked += 1;
            }
        }
        assert!(checked > 0, "{path} has no ```cal fences; the docs lost their examples");
    }
}

#[test]
fn every_cal_error_fence_fails_with_its_stated_code() {
    let manual = doc("docs/SPEC_DSL.md");
    let mut seen = BTreeSet::new();
    for f in fences(&manual) {
        let Some(code) = f.info.strip_prefix("cal-error ") else { continue };
        let diag = dsl::parse_str(&f.body).err().unwrap_or_else(|| {
            panic!("docs/SPEC_DSL.md: ```cal-error {code} fence at line {} compiles", f.line)
        });
        assert_eq!(
            diag.code.as_str(),
            code,
            "docs/SPEC_DSL.md: fence at line {} promises {code} but produced: {diag}",
            f.line
        );
        seen.insert(code.to_string());
    }
    // The diagnostics reference must demonstrate every code, not just
    // name it.
    for code in dsl::DiagCode::ALL {
        assert!(
            seen.contains(code.as_str()),
            "docs/SPEC_DSL.md has no ```cal-error {} example",
            code.as_str()
        );
    }
}

#[test]
fn shipped_spec_files_compile_and_define_their_namesake() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut count = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "cal") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = fs::read_to_string(&path).unwrap();
        let file = dsl::parse_str(&src)
            .unwrap_or_else(|d| panic!("specs/{name}.cal does not compile: {d}"));
        assert!(
            file.get(&name).is_some(),
            "specs/{name}.cal must define a spec named `{name}` (found: {})",
            file.names().join(", ")
        );
        count += 1;
    }
    assert!(count >= 5, "expected at least 5 shipped specs/*.cal files, found {count}");
}
