//! E10 — property-based validation of the agreement relation and the
//! checkers: spec-generated traces render to accepted histories (for any
//! rendering), semantic corruptions are rejected, and the classical
//! linearizability checker coincides with the CAL checker on
//! singleton-element specifications.

use cal::core::agree::{agrees, agrees_bool};
use cal::core::check::is_cal;
use cal::core::gen::{interleave, render, render_loose, mutate, Mutation};
use cal::core::spec::SeqAsCa;
use cal::core::{seqlin, History, ObjectId, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::gen::{random_exchanger_trace, random_sync_queue_trace};
use cal::specs::register::{inc_op, CounterSpec};
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OBJ: ObjectId = ObjectId(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of `render` + completeness of `agrees`: a history built
    /// from a legal trace always agrees with it, however loosened.
    #[test]
    fn rendered_exchanger_traces_agree(seed in 0u64..5_000, size in 0usize..14, moves in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 4, size);
        let strict = render(&trace);
        prop_assert!(agrees_bool(&strict, &trace));
        let loose = render_loose(&trace, &mut rng, moves);
        prop_assert!(loose.is_well_formed());
        prop_assert!(agrees_bool(&loose, &trace));
    }

    /// The CAL membership checker accepts every rendered legal trace
    /// (finding its own witness).
    #[test]
    fn rendered_exchanger_traces_are_cal(seed in 0u64..5_000, size in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 3, size);
        let h = render_loose(&trace, &mut rng, 25);
        prop_assert!(is_cal(&h, &ExchangerSpec::new(OBJ)).unwrap());
    }

    /// Ditto for the synchronous queue specification.
    #[test]
    fn rendered_queue_traces_are_cal(seed in 0u64..5_000, size in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_sync_queue_trace(&mut rng, OBJ, 3, size);
        let h = render_loose(&trace, &mut rng, 25);
        prop_assert!(is_cal(&h, &SyncQueueSpec::new(OBJ)).unwrap());
    }

    /// Corrupting a return value to a fresh impossible value breaks CAL.
    #[test]
    fn corrupted_returns_rejected(seed in 0u64..5_000, size in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 3, size);
        let h = render(&trace);
        if let Some(bad) = mutate(&h, Mutation::CorruptReturn, &mut rng,
                                  |_| Value::Pair(true, 777_777_777)) {
            prop_assert!(!is_cal(&bad, &ExchangerSpec::new(OBJ)).unwrap());
        }
    }

    /// Dropping a response leaves a pending invocation the checker must
    /// still explain (by completing or dropping it).
    #[test]
    fn dropped_responses_still_checkable(seed in 0u64..5_000, size in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 3, size);
        let h = render(&trace);
        if let Some(partial) = mutate(&h, Mutation::DropResponse, &mut rng,
                                      |a| a.ret().unwrap()) {
            // Still CAL: the missing response can be restored or dropped.
            prop_assert!(is_cal(&partial, &ExchangerSpec::new(OBJ)).unwrap());
        }
    }

    /// The witness returned by `check_cal` genuinely explains the history.
    #[test]
    fn witnesses_are_valid(seed in 0u64..5_000, size in 0usize..8) {
        use cal::core::check::check_cal;
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, OBJ, 3, size);
        let h = render_loose(&trace, &mut rng, 15);
        let outcome = check_cal(&h, &ExchangerSpec::new(OBJ)).unwrap();
        let witness = outcome.verdict.witness().expect("legal history").clone();
        let agreement = agrees(&h, &witness).expect("witness must agree");
        prop_assert_eq!(agreement.assignment.len(), h.operations().len());
    }

    /// Classical linearizability == CAL restricted to singleton elements,
    /// on random concurrent counter histories (sound and unsound alike).
    #[test]
    fn seqlin_coincides_with_singleton_cal(seed in 0u64..5_000, threads in 1u32..4, per in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random per-thread `inc` results in 0..threads*per (often wrong).
        let per_thread: Vec<Vec<cal::core::Action>> = (0..threads)
            .map(|t| {
                (0..per)
                    .flat_map(|_| {
                        let ret = rng.gen_range(0..(threads as i64) * per as i64);
                        let op = inc_op(OBJ, ThreadId(t), ret);
                        [op.invocation(), op.response()]
                    })
                    .collect()
            })
            .collect();
        let h = interleave(&per_thread, &mut rng);
        let spec = CounterSpec::new(OBJ);
        let lin = seqlin::is_linearizable(&h, &spec).unwrap();
        let cal_verdict = is_cal(&h, &SeqAsCa::new(spec)).unwrap();
        prop_assert_eq!(lin, cal_verdict, "checkers disagree on {}", h);
    }
}

#[test]
fn agreement_is_insensitive_to_element_internal_order() {
    // A CA-element is a set: renderings that permute the order of
    // invocations/responses inside one element all agree.
    let mut rng = StdRng::seed_from_u64(99);
    let trace = random_exchanger_trace(&mut rng, OBJ, 4, 6);
    let base = render(&trace);
    for _ in 0..50 {
        let loose = render_loose(&trace, &mut rng, 30);
        assert!(agrees_bool(&loose, &trace));
    }
    assert!(agrees_bool(&base, &trace));
}

#[test]
fn empty_everything() {
    assert!(agrees_bool(&History::new(), &cal::core::CaTrace::new()));
    assert!(is_cal(&History::new(), &ExchangerSpec::new(OBJ)).unwrap());
}
