//! The `cal-check` exit-code contract, one assertion per code:
//! 0 = accepted, 1 = rejected, 2 = undecided (budget/deadline),
//! 3 = input/parse/checker error, 4 = usage. Batch mode folds per-file
//! results with the same codes, worst first (3 > 2 > 1 > 0).

use std::io::Write;
use std::process::{Command, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_cal-check");

fn corpus(name: &str) -> String {
    format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run_with_stdin(args: &[&str], input: &str) -> std::process::Output {
    let mut child = Command::new(EXE)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cal-check spawns");
    child.stdin.take().expect("stdin piped").write_all(input.as_bytes()).expect("write stdin");
    child.wait_with_output().expect("cal-check runs")
}

#[test]
fn accepted_exits_zero() {
    let status = Command::new(EXE)
        .args(["exchanger", &corpus("fig1_swap.hist")])
        .stdout(Stdio::null())
        .status()
        .expect("cal-check runs");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn rejected_exits_one() {
    let status = Command::new(EXE)
        .args(["exchanger", &corpus("fig1_sequential_swap.hist")])
        .stdout(Stdio::null())
        .status()
        .expect("cal-check runs");
    assert_eq!(status.code(), Some(1));
}

#[test]
fn undecided_exits_two() {
    // An unsatisfiable 13-way pile of identical "successful" exchanges
    // with a zero deadline: the first interrupt poll fires long before
    // the search can refute it, so the verdict is Interrupted.
    let mut input = String::new();
    for t in 1..=13 {
        input.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 1..=13 {
        input.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    let output = run_with_stdin(&["exchanger", "-", "--deadline-ms", "0"], &input);
    assert_eq!(output.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("undecided"), "{stderr}");
}

#[test]
fn parse_error_exits_three() {
    let output = run_with_stdin(&["exchanger", "-"], "this is not a history\n");
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn ill_formed_history_exits_three() {
    // A response with no matching invocation.
    let output = run_with_stdin(&["exchanger", "-"], "t1 res o0.exchange (true,4)\n");
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn missing_file_exits_three() {
    let status = Command::new(EXE)
        .args(["exchanger", "/nonexistent/cal-check-no-such-file.hist"])
        .stderr(Stdio::null())
        .status()
        .expect("cal-check runs");
    assert_eq!(status.code(), Some(3));
}

#[test]
fn usage_error_exits_four() {
    for args in [
        &[] as &[&str],
        &["--help"],
        &["not-a-spec", "some-file"],
        &["exchanger", "-", "--deadline-ms", "not-a-number"],
        &["--chaos", "heavy", "--stats"], // stats flags are file-mode only
    ] {
        let status = Command::new(EXE)
            .args(args)
            .stdin(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("cal-check runs");
        assert_eq!(status.code(), Some(4), "args {args:?}");
    }
}

#[test]
fn batch_mode_folds_codes_worst_first() {
    // The full corpus contains rejected fixtures but no errors: exit 1.
    let status = Command::new(EXE)
        .args(["exchanger", "--batch", &format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"))])
        .stdout(Stdio::null())
        .status()
        .expect("cal-check runs");
    assert_eq!(status.code(), Some(1));

    // A directory with an unparsable file folds to 3 even alongside
    // accepted and rejected ones.
    let dir = std::env::temp_dir().join(format!("cal-check-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::copy(corpus("fig1_swap.hist"), dir.join("ok.hist")).expect("copy");
    std::fs::copy(corpus("fig1_sequential_swap.hist"), dir.join("no.hist")).expect("copy");
    std::fs::write(dir.join("bad.hist"), "garbage\n").expect("write");
    let status = Command::new(EXE)
        .args(["exchanger", "--batch", dir.to_str().expect("utf-8 temp path")])
        .stdout(Stdio::null())
        .status()
        .expect("cal-check runs");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(status.code(), Some(3));
}
