//! E2 — exhaustive verification of the exchanger model (Fig. 1):
//! every interleaving of bounded clients is CAL w.r.t. the §4
//! specification, with the logged trace as witness, and every transition
//! discharges the Fig. 4 rely/guarantee obligations.

use cal::core::agree::agrees_bool;
use cal::core::check::is_cal;
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::rg::check_exchanger_rg;
use cal::sim::models::exchanger::ExchangerModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::vocab::EXCHANGE;

const E: ObjectId = ObjectId(0);

fn exchange(v: i64) -> OpRequest {
    OpRequest::new(EXCHANGE, Value::Int(v))
}

fn assert_all_cal(workload: Workload) -> u64 {
    let model = ExchangerModel::new(E);
    let spec = ExchangerSpec::new(E);
    let mut n = 0;
    Explorer::new(&model, workload).run(|e| {
        n += 1;
        assert!(spec.accepts(&e.trace), "illegal trace {} for {}", e.trace, e.history);
        assert!(
            agrees_bool(&e.history, &e.trace),
            "trace {} does not explain {}",
            e.trace,
            e.history
        );
    });
    n
}

#[test]
fn two_threads_one_op_each() {
    assert!(assert_all_cal(Workload::new(vec![vec![exchange(1)], vec![exchange(2)]])) > 5);
}

#[test]
fn three_threads_one_op_each() {
    let n = assert_all_cal(Workload::new(vec![
        vec![exchange(1)],
        vec![exchange(2)],
        vec![exchange(3)],
    ]));
    assert!(n > 100);
}

#[test]
fn two_threads_two_ops_each() {
    let n = assert_all_cal(Workload::new(vec![
        vec![exchange(1), exchange(2)],
        vec![exchange(3), exchange(4)],
    ]));
    assert!(n > 50);
}

#[test]
fn four_threads_sampled() {
    let model = ExchangerModel::new(E);
    let spec = ExchangerSpec::new(E);
    let w = Workload::new(vec![
        vec![exchange(1)],
        vec![exchange(2)],
        vec![exchange(3)],
        vec![exchange(4)],
    ]);
    Explorer::new(&model, w).sample(17, 3_000, |e| {
        assert!(spec.accepts(&e.trace));
        assert!(agrees_bool(&e.history, &e.trace));
    });
}

#[test]
fn full_cal_search_agrees_with_witness_check() {
    // Cross-validate: the independent CAL search (not using the logged
    // trace) also accepts every history the model produces.
    let model = ExchangerModel::new(E);
    let spec = ExchangerSpec::new(E);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)], vec![exchange(3)]]);
    Explorer::new(&model, w).run(|e| {
        assert!(is_cal(&e.history, &spec).unwrap(), "CAL search rejected {}", e.history);
    });
}

#[test]
fn rg_obligations_hold_two_threads_two_ops() {
    let model = ExchangerModel::new(E);
    let w = Workload::new(vec![vec![exchange(1), exchange(2)], vec![exchange(3)]]);
    let mut n = 0u64;
    Explorer::new(&model, w)
        .record_transitions(true)
        .visit_duplicates()
        .run(|e| {
            n += 1;
            check_exchanger_rg(E, e).unwrap_or_else(|v| {
                panic!("RG violation: {v}\nhistory:\n{}\ntrace: {}", e.history, e.trace)
            });
        });
    assert!(n > 100);
}

#[test]
fn rg_obligations_hold_three_threads() {
    let model = ExchangerModel::new(E);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)], vec![exchange(3)]]);
    let mut n = 0u64;
    Explorer::new(&model, w)
        .record_transitions(true)
        .visit_duplicates()
        .max_paths(50_000)
        .run(|e| {
            n += 1;
            check_exchanger_rg(E, e).unwrap_or_else(|v| panic!("RG violation: {v}"));
        });
    assert!(n > 1_000);
}

#[test]
fn swap_outcomes_are_always_reciprocal() {
    // Semantic sanity across all schedules: if anyone gets (true, x), the
    // thread that offered x got this thread's value.
    let model = ExchangerModel::new(E);
    let w = Workload::new(vec![vec![exchange(10)], vec![exchange(20)], vec![exchange(30)]]);
    Explorer::new(&model, w).run(|e| {
        let ops = e.history.operations();
        for op in &ops {
            if let Some((true, got)) = op.ret.as_pair() {
                let partner = ops
                    .iter()
                    .find(|p| p.arg == Value::Int(got))
                    .unwrap_or_else(|| panic!("no partner offered {got}"));
                assert_eq!(partner.ret, Value::Pair(true, op.arg.as_int().unwrap()));
            }
        }
    });
}
