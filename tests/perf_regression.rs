//! Performance regression suite for the rebuilt search engine, pinned on
//! **node and steal counts, not wall-clock**: counts are deterministic on
//! any machine, while timings on a loaded single-core CI runner are not.
//! The one wall-clock sanity bound is skipped when `CI` is set.
//!
//! What is locked in:
//!
//! - symmetry reduction collapses the `C(n, k)` interchangeable-op
//!   explosion by orders of magnitude (calibrated: ≥ 20× at k=11, actual
//!   ≈ 110×);
//! - failed-state memoization still pays for itself by ≥ 10× on the
//!   adversarial exchanger family;
//! - the parallel checker's shared fingerprint memo keeps cross-worker
//!   duplication bounded: total nodes within 3× of the sequential run;
//! - work-stealing actually fires: on a refutation tree whose root
//!   frontier is narrower than the worker pool, donated subtrees are
//!   stolen and counted.

use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::engine::{self, ExpandObs, SearchDomain};
use cal::core::par::check_cal_par_with;
use cal::core::text::parse_history;
use cal::core::{History, ObjectId};
use cal::specs::exchanger::ExchangerSpec;

const O: ObjectId = ObjectId(0);

fn in_ci() -> bool {
    std::env::var("CI").is_ok_and(|v| v == "1" || v == "true")
}

/// `k` pairwise-concurrent identical `exchange(0) -> (true, 0)` calls,
/// odd `k`: unsatisfiable, super-exponential to refute naively, and
/// maximally symmetric — the calibration workload for both the memo and
/// the symmetry reduction.
fn hard_history(k: usize) -> History {
    let mut text = String::new();
    for t in 0..k {
        text.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 0..k {
        text.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    parse_history(&text).expect("hard history parses")
}

#[test]
fn symmetry_reduction_collapses_interchangeable_ops() {
    let h = hard_history(11);
    let spec = ExchangerSpec::new(O);
    let start = std::time::Instant::now();
    let on = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    let off = check_cal_with(
        &h,
        &spec,
        &CheckOptions { symmetry: false, ..CheckOptions::default() },
    )
    .unwrap();
    assert_eq!(on.verdict, Verdict::NotCal);
    assert_eq!(off.verdict, Verdict::NotCal);
    // Calibrated on this family: 126 vs 14_081 nodes (≈ 110×). Assert a
    // 20× floor so legitimate engine changes have headroom while a
    // broken canonicalization (which would land near 1×) still fails.
    assert!(
        on.stats.nodes * 20 <= off.stats.nodes,
        "symmetry reduction regressed: {} nodes with, {} without",
        on.stats.nodes,
        off.stats.nodes
    );
    if !in_ci() {
        // Local sanity bound only: both runs together are ~10ms when
        // healthy; a hang here means exponential blow-up came back.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "symmetric refutation took {:?}",
            start.elapsed()
        );
    }
}

#[test]
fn memoization_still_pays_for_itself() {
    let h = hard_history(9);
    let spec = ExchangerSpec::new(O);
    // Symmetry off isolates the memo's own contribution.
    let base = CheckOptions { symmetry: false, ..CheckOptions::default() };
    let with = check_cal_with(&h, &spec, &base).unwrap();
    let without =
        check_cal_with(&h, &spec, &CheckOptions { memoize: false, ..base }).unwrap();
    assert_eq!(with.verdict, without.verdict);
    // Calibrated: 2_305 vs 31_033 nodes (≈ 13×); assert a 10× floor.
    assert!(
        with.stats.nodes * 10 <= without.stats.nodes,
        "memoization regressed: {} nodes with, {} without",
        with.stats.nodes,
        without.stats.nodes
    );
}

#[test]
fn shared_memo_bounds_parallel_duplication() {
    let h = hard_history(11);
    let spec = ExchangerSpec::new(O);
    let seq = check_cal_with(&h, &spec, &CheckOptions::default()).unwrap();
    for threads in [2usize, 4, 8] {
        let par = check_cal_par_with(
            &h,
            &spec,
            &CheckOptions { threads, ..CheckOptions::default() },
        )
        .unwrap();
        assert_eq!(par.verdict, Verdict::NotCal, "threads={threads}");
        // Workers race ahead of each other's memo inserts, so some
        // duplication is expected — but the shared fingerprint table
        // must keep the *total* within a small constant of sequential.
        assert!(
            par.stats.nodes <= seq.stats.nodes * 3,
            "threads={threads}: parallel expanded {} nodes vs {} sequential",
            par.stats.nodes,
            seq.stats.nodes
        );
    }
}

/// A goal-free tree with `width` children per node down to `depth`, every
/// state distinct. Refuting it forces a full traversal, so node totals
/// are exact and any lost or double-counted subtree shows up.
///
/// `stall_ms > 0` sleeps that long in every expansion of a node at depth
/// < 3, which is what makes the steal test deterministic on a one-core
/// host in release mode: a sleeping donor yields the core, so thief
/// threads are guaranteed to get scheduled, raise the hungry flag and
/// steal while the donor still has subtrees to give away.
struct DeadTree {
    width: u32,
    depth: u32,
    stall_ms: u64,
}

impl SearchDomain for DeadTree {
    type Node = (u32, u64);
    type Step = u32;

    fn initial(&self) -> (u32, u64) {
        (0, 0)
    }

    fn is_goal(&self, _: &(u32, u64)) -> bool {
        false
    }

    fn expand(
        &self,
        node: &(u32, u64),
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(u32, (u32, u64))>,
    ) {
        if node.0 >= self.depth {
            return;
        }
        if self.stall_ms > 0 && node.0 < 3 {
            std::thread::sleep(std::time::Duration::from_millis(self.stall_ms));
        }
        obs.on_frontier(self.width as usize);
        for i in 0..self.width {
            obs.on_element_tried();
            out.push((i, (node.0 + 1, node.1 * u64::from(self.width) + u64::from(i) + 1)));
        }
    }
}

#[test]
fn stealing_fires_when_workers_outnumber_root_branches() {
    // Three root branches, eight workers: five can only ever work by
    // stealing donated subtrees; the stall keeps donors yielding the
    // core so the thieves actually run.
    let options = CheckOptions { threads: 8, memoize: false, ..CheckOptions::default() };
    let outcome = engine::search_par(
        &DeadTree { width: 3, depth: 6, stall_ms: 2 },
        &options,
    )
    .unwrap();
    assert_eq!(outcome.verdict, Verdict::NotCal);
    assert!(
        outcome.stats.steals > 0,
        "no subtree was ever stolen; stats: {:?}",
        outcome.stats
    );
}

#[test]
fn stealing_neither_loses_nor_duplicates_nodes() {
    let tree = DeadTree { width: 3, depth: 8, stall_ms: 0 };
    let seq = engine::search(&tree, &CheckOptions::default()).unwrap();
    for threads in [2usize, 4, 8] {
        let par = engine::search_par(
            &tree,
            &CheckOptions { threads, memoize: false, ..CheckOptions::default() },
        )
        .unwrap();
        assert_eq!(par.verdict, Verdict::NotCal, "threads={threads}");
        assert_eq!(
            par.stats.nodes, seq.stats.nodes,
            "threads={threads}: distinct-state tree must be traversed exactly once"
        );
    }
}

#[test]
fn stealing_off_disables_the_steal_counter() {
    let options = CheckOptions {
        threads: 8,
        memoize: false,
        stealing: false,
        ..CheckOptions::default()
    };
    let outcome = engine::search_par(
        &DeadTree { width: 3, depth: 8, stall_ms: 0 },
        &options,
    )
    .unwrap();
    assert_eq!(outcome.verdict, Verdict::NotCal);
    assert_eq!(outcome.stats.steals, 0, "static splitting must never report steals");
}
