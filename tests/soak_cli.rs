//! `chaos-soak --spec`: runtime-loaded `.cal` specs drive the soak
//! check, with the same compile-before-input exit-3 contract as
//! `cal-check` and `cal-serve`.

use std::process::{Command, Output, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_chaos-soak");

fn spec(name: &str) -> String {
    format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("chaos-soak runs")
}

/// A `.cal` file that does not compile fails before any run starts,
/// printing its diagnostic and exiting 3 — even though the soak itself
/// would have found nothing wrong.
#[test]
fn bad_spec_file_exits_three_before_soaking() {
    let dir = std::env::temp_dir().join(format!("soak-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.cal");
    std::fs::write(&path, "spec broken { kind ca\n").unwrap();
    let out = run(&[
        "--spec",
        path.to_str().unwrap(),
        "--target",
        "exchanger",
        "--secs",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.cal"), "diagnostic names the file: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("soaking"), "no run may start: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unreadable path is the same exit-3 contract.
#[test]
fn missing_spec_file_exits_three() {
    let out = run(&["--spec", "/nonexistent/nope.cal", "--target", "exchanger"]);
    assert_eq!(out.status.code(), Some(3));
}

/// The loaded spec replaces the per-target built-ins, so it needs one
/// explicit target: bare `--spec` (implicit `all`) is a usage error.
#[test]
fn spec_without_single_target_is_usage_error() {
    let out = run(&["--spec", &spec("exchanger.cal"), "--secs", "1"]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let orphan = run(&["--spec-name", "exchanger", "--target", "exchanger", "--secs", "1"]);
    assert_eq!(orphan.status.code(), Some(4), "--spec-name without --spec");
}

/// The loaded exchanger spec soaks the healthy exchanger clean (exit 0)
/// and catches the planted misdelivery bug (exit 1) — proof the check
/// really runs against the `.cal` spec end to end.
#[test]
fn loaded_spec_soaks_and_catches_the_planted_bug() {
    let clean = run(&[
        "--spec",
        &spec("exchanger.cal"),
        "--target",
        "exchanger",
        "--secs",
        "1",
        "--ops",
        "3",
    ]);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );
    let caught = run(&[
        "--spec",
        &spec("exchanger.cal"),
        "--target",
        "buggy-exchanger",
        "--seed",
        "1",
        "--secs",
        "10",
    ]);
    assert_eq!(
        caught.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&caught.stdout)
    );
    let stdout = String::from_utf8_lossy(&caught.stdout);
    assert!(stdout.contains("minimal reproducer"), "reproducer printed: {stdout}");
}
