//! E15 — deadline regression: on a state space far beyond the node
//! budget, `check_cal_with` honours a ~50 ms wall-clock deadline within
//! 2×, returns partial statistics instead of panicking, and reports the
//! interruption as such. Since all three checkers run on the shared
//! search kernel, the same properties are asserted for the seqlin and
//! interval checkers on their own hard instances.

use std::time::{Duration, Instant};

use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::interval::check_interval_with;
use cal::core::seqlin::check_linearizable_with;
use cal::core::text::parse_history;
use cal::core::{History, ObjectId, ThreadId};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{read_op, write_op, RegisterSpec};
use cal::specs::snapshot::{view, write_snapshot_op, WriteSnapshotSpec};

/// `k` pairwise-concurrent `exchange(0) -> (true, 0)` calls: every pair
/// of them can explain each other, but an odd `k` leaves one call that no
/// rule covers, so the search must refute every way of pairing the rest —
/// super-exponential without memoization.
fn hard_history(k: usize) -> History {
    let mut text = String::new();
    for t in 0..k {
        text.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 0..k {
        text.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    parse_history(&text).expect("hard history parses")
}

fn hard_options(deadline: Duration) -> CheckOptions {
    CheckOptions {
        // A budget the search cannot finish within the deadline; the
        // deadline, not the node cap, must be what stops it.
        max_nodes: u64::MAX,
        memoize: false,
        deadline: Some(deadline),
        ..CheckOptions::default()
    }
}

#[test]
fn deadline_is_honoured_within_2x() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let deadline = Duration::from_millis(50);

    let start = Instant::now();
    let outcome = check_cal_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();

    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(
        elapsed <= deadline * 2,
        "deadline overshoot: {elapsed:?} for a {deadline:?} deadline"
    );
}

#[test]
fn interrupt_reason_names_the_deadline() {
    let history = hard_history(13);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let outcome = check_cal_with(&history, &spec, &hard_options(Duration::from_millis(20)))
        .expect("interrupted checks are outcomes, not errors");
    match outcome.verdict {
        Verdict::Interrupted { reason } => {
            assert!(
                reason.to_string().contains("deadline"),
                "reason should name the deadline, got {reason}"
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

/// Deadline-bounded checks are quiet under repetition: no panic, no
/// drift, every run within 2× wall-clock — the property the chaos soak
/// relies on when it hands the checker a per-run deadline.
#[test]
fn repeated_deadline_checks_stay_bounded() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let deadline = Duration::from_millis(50);
    for _ in 0..5 {
        let start = Instant::now();
        let outcome = check_cal_with(&history, &spec, &hard_options(deadline))
            .expect("interrupted checks are outcomes, not errors");
        let elapsed = start.elapsed();
        assert!(matches!(outcome.verdict, Verdict::Interrupted { .. }));
        assert!(elapsed <= deadline * 2, "overshoot on repeat: {elapsed:?}");
    }
}

/// Without a deadline the same state space exhausts a finite node budget
/// instead — and that, too, is a result, not a panic (the pre-chaos
/// checker aborted the process here).
#[test]
fn node_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let options = CheckOptions {
        max_nodes: 10_000,
        memoize: false,
        ..CheckOptions::default()
    };
    let outcome = check_cal_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 10_000);
}

/// `k` pairwise-concurrent register writes of distinct values plus one
/// concurrent read of a never-written value: unsatisfiable, so the
/// (memoization-free) search must refute every write order.
fn hard_seq_history(k: usize) -> History {
    let r = ObjectId(0);
    let writes: Vec<_> = (0..k).map(|i| write_op(r, ThreadId(i as u32), i as i64)).collect();
    let read = read_op(r, ThreadId(k as u32), 99);
    let mut actions = Vec::new();
    actions.extend(writes.iter().map(|op| op.invocation()));
    actions.push(read.invocation());
    actions.extend(writes.iter().map(|op| op.response()));
    actions.push(read.response());
    History::from_actions(actions)
}

#[test]
fn seqlin_deadline_is_honoured_within_2x() {
    let history = hard_seq_history(11);
    let spec = RegisterSpec::new(ObjectId(0));
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let outcome = check_linearizable_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();
    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(elapsed <= deadline * 2, "deadline overshoot: {elapsed:?}");
}

#[test]
fn seqlin_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_seq_history(11);
    let spec = RegisterSpec::new(ObjectId(0));
    let options = CheckOptions { max_nodes: 10_000, memoize: false, ..CheckOptions::default() };
    let outcome =
        check_linearizable_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 10_000);
}

/// `k` pairwise-concurrent `write_snapshot(i) ▷ {i}` calls: at most one of
/// them can ever close with a singleton view, so for `k ≥ 2` the instance
/// is unsatisfiable — but the point enumeration (opening subsets up to
/// `max_active`, closing subsets of the active set) is enormous.
fn hard_interval_history(k: usize) -> History {
    let o = ObjectId(0);
    let ops: Vec<_> =
        (0..k).map(|i| write_snapshot_op(o, ThreadId(i as u32), i as i64, view(&[i as i64]))).collect();
    let mut actions = Vec::new();
    actions.extend(ops.iter().map(|op| op.invocation()));
    actions.extend(ops.iter().map(|op| op.response()));
    History::from_actions(actions)
}

#[test]
fn interval_deadline_is_honoured_within_2x() {
    let history = hard_interval_history(10);
    let spec = WriteSnapshotSpec::new(ObjectId(0), 4);
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let outcome = check_interval_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();
    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(elapsed <= deadline * 2, "deadline overshoot: {elapsed:?}");
}

#[test]
fn interval_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_interval_history(10);
    let spec = WriteSnapshotSpec::new(ObjectId(0), 4);
    let options = CheckOptions { max_nodes: 5_000, memoize: false, ..CheckOptions::default() };
    let outcome = check_interval_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 5_000);
}

// --- CLI paths -------------------------------------------------------------
//
// `cal-check` runs with memoization on, so the CLI instances below are
// sized up until even the memoized search cannot decide them quickly;
// the tests then pin that `--deadline-ms` reaches every `--mode` and the
// batch fold: exit status 2 (undecided) with a reason that names the
// deadline, rather than a node-budget exhaustion or a hang.

mod cli {
    use std::process::{Command, Output};
    use std::time::{Duration, Instant};

    use cal::core::text::format_history;
    use cal::core::History;

    const EXE: &str = env!("CARGO_BIN_EXE_cal-check");

    /// Fresh per-test scratch dir under the target-dir tmp space.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn write_history(path: &std::path::Path, history: &History) {
        std::fs::write(path, format_history(history)).expect("history file");
    }

    /// Runs `cal-check` and asserts it came back well before the node
    /// budget could plausibly have been the stopping reason.
    fn run_timed(args: &[&str]) -> (Output, Duration) {
        let start = Instant::now();
        let out = Command::new(EXE).args(args).output().expect("cal-check runs");
        (out, start.elapsed())
    }

    fn assert_deadline_undecided(out: &Output, elapsed: Duration, what: &str) {
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{what}: expected exit 2, stderr: {stderr}");
        assert!(
            stderr.contains("deadline"),
            "{what}: the undecided reason must name the deadline, got: {stderr}"
        );
        // Generous spawn/parse slack, but far below what burning the full
        // 4M-node default budget would take.
        assert!(elapsed < Duration::from_secs(10), "{what}: took {elapsed:?}");
    }

    #[test]
    fn cal_mode_honours_deadline_ms() {
        let dir = scratch("deadline-cal");
        let file = dir.join("hard.hist");
        write_history(&file, &super::hard_history(25));
        // `--no-symmetry` keeps the instance super-exponential: its 25
        // identical concurrent exchanges are exactly what the symmetry
        // reduction collapses, and a collapsed search decides well inside
        // any deadline worth testing.
        let (out, elapsed) = run_timed(&[
            "exchanger",
            file.to_str().unwrap(),
            "--deadline-ms",
            "40",
            "--no-symmetry",
        ]);
        assert_deadline_undecided(&out, elapsed, "--mode cal");
    }

    #[test]
    fn seq_mode_honours_deadline_ms() {
        let dir = scratch("deadline-seq");
        let file = dir.join("hard.hist");
        write_history(&file, &super::hard_seq_history(20));
        let (out, elapsed) = run_timed(&[
            "register",
            file.to_str().unwrap(),
            "--mode",
            "seq",
            "--deadline-ms",
            "40",
        ]);
        assert_deadline_undecided(&out, elapsed, "--mode seq");
    }

    #[test]
    fn interval_mode_honours_deadline_ms() {
        let dir = scratch("deadline-interval");
        let file = dir.join("hard.hist");
        write_history(&file, &super::hard_interval_history(14));
        let (out, elapsed) = run_timed(&[
            "write-snapshot",
            file.to_str().unwrap(),
            "--mode",
            "interval",
            "--deadline-ms",
            "40",
        ]);
        assert_deadline_undecided(&out, elapsed, "--mode interval");
    }

    /// The batch fold is worst-wins: one hard file among easy ones must
    /// surface the deadline interrupt as the directory's exit status.
    #[test]
    fn batch_fold_surfaces_deadline_undecided() {
        let dir = scratch("deadline-batch");
        write_history(&dir.join("hard.hist"), &super::hard_seq_history(20));
        std::fs::write(
            dir.join("easy.hist"),
            "t0 inv o0.write 1\nt0 res o0.write ()\nt0 inv o0.read ()\nt0 res o0.read 1\n",
        )
        .expect("easy file");
        let (out, elapsed) = run_timed(&[
            "register",
            "--batch",
            dir.to_str().unwrap(),
            "--mode",
            "seq",
            "--deadline-ms",
            "40",
        ]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "worst-wins fold must surface the undecided file, stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("undecided") && stdout.contains("deadline"),
            "per-file line should report the deadline interrupt: {stdout}"
        );
        assert!(elapsed < Duration::from_secs(10), "batch took {elapsed:?}");
    }
}
