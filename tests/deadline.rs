//! E15 — deadline regression: on a state space far beyond the node
//! budget, `check_cal_with` honours a ~50 ms wall-clock deadline within
//! 2×, returns partial statistics instead of panicking, and reports the
//! interruption as such. Since all three checkers run on the shared
//! search kernel, the same properties are asserted for the seqlin and
//! interval checkers on their own hard instances.

use std::time::{Duration, Instant};

use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::interval::check_interval_with;
use cal::core::seqlin::check_linearizable_with;
use cal::core::text::parse_history;
use cal::core::{History, ObjectId, ThreadId};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{read_op, write_op, RegisterSpec};
use cal::specs::snapshot::{view, write_snapshot_op, WriteSnapshotSpec};

/// `k` pairwise-concurrent `exchange(0) -> (true, 0)` calls: every pair
/// of them can explain each other, but an odd `k` leaves one call that no
/// rule covers, so the search must refute every way of pairing the rest —
/// super-exponential without memoization.
fn hard_history(k: usize) -> History {
    let mut text = String::new();
    for t in 0..k {
        text.push_str(&format!("t{t} inv o0.exchange 0\n"));
    }
    for t in 0..k {
        text.push_str(&format!("t{t} res o0.exchange (true,0)\n"));
    }
    parse_history(&text).expect("hard history parses")
}

fn hard_options(deadline: Duration) -> CheckOptions {
    CheckOptions {
        // A budget the search cannot finish within the deadline; the
        // deadline, not the node cap, must be what stops it.
        max_nodes: u64::MAX,
        memoize: false,
        deadline: Some(deadline),
        ..CheckOptions::default()
    }
}

#[test]
fn deadline_is_honoured_within_2x() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let deadline = Duration::from_millis(50);

    let start = Instant::now();
    let outcome = check_cal_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();

    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(
        elapsed <= deadline * 2,
        "deadline overshoot: {elapsed:?} for a {deadline:?} deadline"
    );
}

#[test]
fn interrupt_reason_names_the_deadline() {
    let history = hard_history(13);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let outcome = check_cal_with(&history, &spec, &hard_options(Duration::from_millis(20)))
        .expect("interrupted checks are outcomes, not errors");
    match outcome.verdict {
        Verdict::Interrupted { reason } => {
            assert!(
                reason.to_string().contains("deadline"),
                "reason should name the deadline, got {reason}"
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

/// Deadline-bounded checks are quiet under repetition: no panic, no
/// drift, every run within 2× wall-clock — the property the chaos soak
/// relies on when it hands the checker a per-run deadline.
#[test]
fn repeated_deadline_checks_stay_bounded() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let deadline = Duration::from_millis(50);
    for _ in 0..5 {
        let start = Instant::now();
        let outcome = check_cal_with(&history, &spec, &hard_options(deadline))
            .expect("interrupted checks are outcomes, not errors");
        let elapsed = start.elapsed();
        assert!(matches!(outcome.verdict, Verdict::Interrupted { .. }));
        assert!(elapsed <= deadline * 2, "overshoot on repeat: {elapsed:?}");
    }
}

/// Without a deadline the same state space exhausts a finite node budget
/// instead — and that, too, is a result, not a panic (the pre-chaos
/// checker aborted the process here).
#[test]
fn node_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_history(15);
    let spec = ExchangerSpec::new(cal::core::ObjectId(0));
    let options = CheckOptions {
        max_nodes: 10_000,
        memoize: false,
        ..CheckOptions::default()
    };
    let outcome = check_cal_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 10_000);
}

/// `k` pairwise-concurrent register writes of distinct values plus one
/// concurrent read of a never-written value: unsatisfiable, so the
/// (memoization-free) search must refute every write order.
fn hard_seq_history(k: usize) -> History {
    let r = ObjectId(0);
    let writes: Vec<_> = (0..k).map(|i| write_op(r, ThreadId(i as u32), i as i64)).collect();
    let read = read_op(r, ThreadId(k as u32), 99);
    let mut actions = Vec::new();
    actions.extend(writes.iter().map(|op| op.invocation()));
    actions.push(read.invocation());
    actions.extend(writes.iter().map(|op| op.response()));
    actions.push(read.response());
    History::from_actions(actions)
}

#[test]
fn seqlin_deadline_is_honoured_within_2x() {
    let history = hard_seq_history(11);
    let spec = RegisterSpec::new(ObjectId(0));
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let outcome = check_linearizable_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();
    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(elapsed <= deadline * 2, "deadline overshoot: {elapsed:?}");
}

#[test]
fn seqlin_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_seq_history(11);
    let spec = RegisterSpec::new(ObjectId(0));
    let options = CheckOptions { max_nodes: 10_000, memoize: false, ..CheckOptions::default() };
    let outcome =
        check_linearizable_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 10_000);
}

/// `k` pairwise-concurrent `write_snapshot(i) ▷ {i}` calls: at most one of
/// them can ever close with a singleton view, so for `k ≥ 2` the instance
/// is unsatisfiable — but the point enumeration (opening subsets up to
/// `max_active`, closing subsets of the active set) is enormous.
fn hard_interval_history(k: usize) -> History {
    let o = ObjectId(0);
    let ops: Vec<_> =
        (0..k).map(|i| write_snapshot_op(o, ThreadId(i as u32), i as i64, view(&[i as i64]))).collect();
    let mut actions = Vec::new();
    actions.extend(ops.iter().map(|op| op.invocation()));
    actions.extend(ops.iter().map(|op| op.response()));
    History::from_actions(actions)
}

#[test]
fn interval_deadline_is_honoured_within_2x() {
    let history = hard_interval_history(10);
    let spec = WriteSnapshotSpec::new(ObjectId(0), 4);
    let deadline = Duration::from_millis(50);
    let start = Instant::now();
    let outcome = check_interval_with(&history, &spec, &hard_options(deadline))
        .expect("interrupted checks are outcomes, not errors");
    let elapsed = start.elapsed();
    assert!(
        matches!(outcome.verdict, Verdict::Interrupted { .. }),
        "expected an interrupt, got {:?} after {elapsed:?}",
        outcome.verdict
    );
    assert!(outcome.stats.nodes > 0, "partial stats must reflect work done");
    assert!(elapsed <= deadline * 2, "deadline overshoot: {elapsed:?}");
}

#[test]
fn interval_budget_exhaustion_is_a_result_not_a_panic() {
    let history = hard_interval_history(10);
    let spec = WriteSnapshotSpec::new(ObjectId(0), 4);
    let options = CheckOptions { max_nodes: 5_000, memoize: false, ..CheckOptions::default() };
    let outcome = check_interval_with(&history, &spec, &options).expect("exhaustion is an outcome");
    assert!(matches!(outcome.verdict, Verdict::ResourcesExhausted));
    assert!(outcome.stats.nodes >= 5_000);
}
