//! End-to-end CLI coverage for foreign-format checking: the `cal-check`
//! binary over `--format`, auto-detection, batch diagnostics and usage
//! errors, and the `cal-serve` daemon quarantining malformed foreign
//! lines against its error budget. Exit codes follow the audited
//! contract: 0 accepted, 1 rejected, 2 undecided, 3 input error,
//! 4 usage.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/foreign").join(name)
}

fn run_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cal-check"))
        .args(args)
        .output()
        .expect("cal-check runs")
}

fn run_with_stdin(exe: &str, args: &[&str], input: &str) -> Output {
    let mut child = Command::new(exe)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child.stdin.take().unwrap().write_all(input.as_bytes()).expect("stdin accepts input");
    child.wait_with_output().expect("binary exits")
}

/// The headline acceptance criterion: an etcd-style jepsen trace is
/// accepted by the CAL checker when the format is given explicitly.
#[test]
fn explicit_jepsen_format_accepts_the_etcd_trace() {
    let out = run_check(&[
        "--format",
        "jepsen",
        "--mode",
        "cal",
        "kv",
        corpus("etcd_register_ok.jepsen").to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Without `--format`, sniffing must land on jepsen and reach the same
/// verdict.
#[test]
fn auto_detection_accepts_the_etcd_trace() {
    let out = run_check(&[
        "--mode",
        "cal",
        "kv",
        corpus("etcd_register_ok.jepsen").to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violating_kvlog_trace_is_rejected() {
    let out = run_check(&["kv", corpus("sequential_stale_get.kvlog").to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Malformed jepsen on stdin: exit 3 with a line-anchored diagnostic.
#[test]
fn malformed_jepsen_stdin_exits_3_with_line_anchor() {
    let garbage = "{:process 0, :type :invoke, :f :write, :value 1}\n{:process 0, :type :ok, :f :wri\n";
    let out = run_with_stdin(
        env!("CARGO_BIN_EXE_cal-check"),
        &["--format", "jepsen", "kv", "-"],
        garbage,
    );
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line "), "diagnostic must name the line: {stderr}");
}

#[test]
fn unknown_format_value_is_a_usage_error() {
    let out = run_check(&["--format", "xml", "kv", "-"]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Batch mode over the foreign corpus: the malformed fixtures force exit
/// 3, and the fold repeats the first line-anchored diagnostic.
#[test]
fn batch_over_foreign_corpus_reports_line_anchored_first_error() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/foreign");
    let out = run_check(&["kv", "--batch", dir.to_str().unwrap(), "--threads", "4"]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("batch: first error:"), "missing first-error fold: {stdout}");
    let diag = stdout.lines().find(|l| l.starts_with("batch: first error:")).unwrap();
    assert!(diag.contains("line "), "first error must be line-anchored: {diag}");
}

/// cal-serve quarantines malformed foreign lines and refuses the stream
/// once the error budget is exhausted.
#[test]
fn serve_exhausts_error_budget_on_garbage_jepsen() {
    let input = "{:process 0, :type :invoke, :f :write, :value 1, :key 0}\n\
                 {:process 0, :type :oops, :f :write, :value 1, :key 0}\n\
                 {:process 1, :type :ok, :f :write}\n\
                 bye\n";
    let out = run_with_stdin(
        env!("CARGO_BIN_EXE_cal-serve"),
        &["kv", "--error-budget", "1", "--quiet"],
        input,
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A consistent jepsen stream over stdin is accepted end to end.
#[test]
fn serve_accepts_a_consistent_jepsen_stream() {
    let input = "{:process 0, :type :invoke, :f :write, :value 7, :key 0}\n\
                 {:process 0, :type :ok, :f :write, :value 7, :key 0}\n\
                 {:process 1, :type :invoke, :f :read, :value nil, :key 0}\n\
                 {:process 1, :type :ok, :f :read, :value 7, :key 0}\n\
                 bye\n";
    let out = run_with_stdin(env!("CARGO_BIN_EXE_cal-serve"), &["kv"], input);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A consistent kvlog stream over stdin is accepted end to end with the
/// format pinned explicitly.
#[test]
fn serve_accepts_a_consistent_kvlog_stream() {
    let input = "0 1 c0 put x 7\n2 3 c1 get x 7\nbye\n";
    let out = run_with_stdin(
        env!("CARGO_BIN_EXE_cal-serve"),
        &["kv", "--format", "kvlog"],
        input,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
