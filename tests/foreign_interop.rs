//! Foreign-format interop: round-trip differential tests and parser
//! robustness.
//!
//! Round trip: serialize a generated native history to the jepsen (and,
//! for register-shaped histories, kvlog) wire format, sniff it, parse it
//! back, and require the *identical* `History` — and therefore identical
//! verdicts, re-checked at 1, 2 and 4 threads against the family's spec.
//! Every spec family the repo ships is covered: exchanger and sync-queue
//! (genuinely concurrency-aware), stack, register, counter and kv
//! (sequential specs lifted through [`SeqAsCa`]).
//!
//! Robustness: seeded byte mutations of valid foreign traces, plus a
//! fuzz corpus of hand-picked nasty inputs, must parse to either a valid
//! history or a line-anchored [`FormatError`] — never a panic. Whatever
//! parses is then checked under a small budget, which must also not
//! panic.

use cal::core::check::{check_cal_with, CheckError, CheckOptions, CheckOutcome, Verdict};
use cal::core::format::{detect, format_jepsen, format_kvlog, parse_as, Format};
use cal::core::gen::{interleave, render_loose};
use cal::core::par::check_cal_par_with;
use cal::core::spec::{CaSpec, SeqAsCa};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::gen::{random_exchanger_trace, random_sync_queue_trace};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::kv::KvMapSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const O: ObjectId = ObjectId(0);

/// One generated operation: method, key, argument, return value, and
/// whether the response is recorded (only a thread's last op may stay
/// pending).
type OpShape = (Method, ObjectId, Value, Value, bool);

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("write"), O, Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("read"), O, Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_counter_op() -> BoxedStrategy<OpShape> {
    (0i64..4, any::<bool>())
        .prop_map(|(n, c)| (Method("inc"), O, Value::Unit, Value::Int(n), c))
        .boxed()
}

fn arb_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("push"), O, Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("pop"), O, Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

fn arb_kv_op() -> BoxedStrategy<OpShape> {
    (0u32..2, any::<bool>(), 0i64..3, any::<bool>())
        .prop_map(|(k, is_write, v, c)| {
            let key = ObjectId(k);
            if is_write {
                (Method("write"), key, Value::Int(v), Value::Unit, c)
            } else {
                (Method("read"), key, Value::Unit, Value::Int(v), c)
            }
        })
        .boxed()
}

/// Builds a history from per-thread op lists, interleaved by seed.
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64) -> History {
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, key, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t as u32), key, m, arg));
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), key, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(op: impl Strategy<Value = OpShape>) -> impl Strategy<Value = History> {
    (prop::collection::vec(prop::collection::vec(op, 0..4), 1..4), any::<u64>())
        .prop_map(|(threads, seed)| build_history(threads, seed))
}

fn exchanger_history() -> impl Strategy<Value = History> {
    (any::<u64>(), 2u32..5, 1usize..4, 0usize..6).prop_map(|(seed, threads, elements, moves)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_exchanger_trace(&mut rng, O, threads, elements);
        render_loose(&trace, &mut rng, moves)
    })
}

fn sync_queue_history() -> impl Strategy<Value = History> {
    (any::<u64>(), 2u32..5, 1usize..4, 0usize..6).prop_map(|(seed, threads, elements, moves)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = random_sync_queue_trace(&mut rng, O, threads, elements);
        render_loose(&trace, &mut rng, moves)
    })
}

/// The verdict bucket, ignoring the witness payload.
fn category<W>(r: &Result<CheckOutcome<W>, CheckError>) -> String {
    match r {
        Ok(o) => match &o.verdict {
            Verdict::Cal(_) => "accepted".into(),
            Verdict::NotCal => "rejected".into(),
            Verdict::ResourcesExhausted => "exhausted".into(),
            Verdict::Interrupted { reason } => format!("interrupted({reason:?})"),
        },
        Err(e) => format!("error({e:?})"),
    }
}

/// Serializes `h` in `format`, sniffs it, parses it back, and requires
/// the identical history; then re-checks the parsed copy against `spec`
/// at 1, 2 and 4 threads and requires the native verdict each time.
fn assert_round_trip<S>(h: &History, format: Format, spec: &S)
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    let wire = match format {
        Format::Jepsen => format_jepsen(h),
        Format::KvLog => {
            format_kvlog(h).unwrap_or_else(|e| panic!("kvlog cannot express:\n{h}\n{e}"))
        }
        Format::Native => cal::core::text::format_history(h),
    };
    if !wire.trim().is_empty() {
        assert_eq!(detect(&wire), format, "sniffing misread the wire:\n{wire}");
    }
    let back = parse_as(format, &wire)
        .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\nwire:\n{wire}"));
    assert_eq!(back, *h, "round trip through {format:?} changed the history\nwire:\n{wire}");
    let options = CheckOptions::default();
    let native = category(&check_cal_with(h, spec, &options));
    for threads in [1usize, 2, 4] {
        let par = CheckOptions { threads, ..CheckOptions::default() };
        let foreign = category(&check_cal_par_with(&back, spec, &par));
        assert_eq!(
            native, foreign,
            "threads={threads}: verdict changed across the {format:?} round trip\nwire:\n{wire}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn register_round_trips_through_jepsen(h in history_of(arb_register_op())) {
        let spec = SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]));
        assert_round_trip(&h, Format::Jepsen, &spec);
    }

    #[test]
    fn register_round_trips_through_kvlog(h in history_of(arb_register_op())) {
        let spec = SeqAsCa::new(RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]));
        assert_round_trip(&h, Format::KvLog, &spec);
    }

    #[test]
    fn counter_round_trips_through_jepsen(h in history_of(arb_counter_op())) {
        assert_round_trip(&h, Format::Jepsen, &SeqAsCa::new(CounterSpec::new(O)));
    }

    #[test]
    fn stack_round_trips_through_jepsen(h in history_of(arb_stack_op())) {
        assert_round_trip(&h, Format::Jepsen, &SeqAsCa::new(StackSpec::failing(O)));
    }

    #[test]
    fn kv_round_trips_through_jepsen(h in history_of(arb_kv_op())) {
        assert_round_trip(&h, Format::Jepsen, &SeqAsCa::new(KvMapSpec::new()));
    }

    #[test]
    fn kv_round_trips_through_kvlog(h in history_of(arb_kv_op())) {
        assert_round_trip(&h, Format::KvLog, &SeqAsCa::new(KvMapSpec::new()));
    }

    #[test]
    fn exchanger_round_trips_through_jepsen(h in exchanger_history()) {
        assert_round_trip(&h, Format::Jepsen, &ExchangerSpec::new(O));
    }

    #[test]
    fn sync_queue_round_trips_through_jepsen(h in sync_queue_history()) {
        assert_round_trip(&h, Format::Jepsen, &SyncQueueSpec::new(O));
    }
}

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

/// Applies `edits` seeded byte edits (replace / delete / insert of
/// printable ASCII) and re-validates as UTF-8 lossily.
fn mutate_text(text: &str, seed: u64, edits: usize) -> String {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        let i = rng.gen_range(0..bytes.len());
        match rng.gen_range(0..3u8) {
            0 => bytes[i] = rng.gen_range(0x20u8..0x7f),
            1 => {
                bytes.remove(i);
            }
            _ => bytes.insert(i, rng.gen_range(0x20u8..0x7f)),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A mutated trace must parse to a history or a line-anchored error —
/// never a panic, in any format — and whatever parses must survive a
/// budgeted check without panicking.
fn assert_parses_or_anchors(text: &str) {
    for format in [Format::Native, Format::Jepsen, Format::KvLog] {
        match parse_as(format, text) {
            Ok(h) => {
                let options = CheckOptions { max_nodes: 10_000, ..CheckOptions::default() };
                let _ = check_cal_with(&h, &SeqAsCa::new(KvMapSpec::new()), &options);
            }
            Err(e) => {
                assert!(
                    e.line > 0,
                    "{format:?}: diagnostic lost its line anchor: {e}\ninput:\n{text}"
                );
            }
        }
    }
    // Auto-detection must hold up on garbage too.
    let sniffed = detect(text);
    let _ = parse_as(sniffed, text);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_foreign_traces_never_panic(
        h in history_of(arb_kv_op()),
        seed in any::<u64>(),
        edits in 1usize..8,
    ) {
        let jepsen = format_jepsen(&h);
        assert_parses_or_anchors(&mutate_text(&jepsen, seed, edits));
        if let Ok(kvlog) = format_kvlog(&h) {
            assert_parses_or_anchors(&mutate_text(&kvlog, seed, edits));
        }
    }
}

/// A checked-in fuzz corpus of nasty inputs: each must yield a valid
/// parse or a line-anchored error in every format, never a panic.
#[test]
fn fuzz_corpus_is_rejected_with_anchored_diagnostics() {
    const FUZZ: &[&str] = &[
        "",
        "{",
        "{}",
        "[",
        "{:process 0}",
        "{:process -1, :type :invoke, :f :write, :value 1}",
        "{:process 0, :type :bogus, :f :write, :value 1}",
        "{:process 0, :type :invoke, :f :write}",
        "{:process 99999999999999999999, :type :invoke, :f :write, :value 1}",
        "{:process 0, :type :ok, :f :read, :value 1}",
        "{:process 0, :type :invoke, :f :write, :value 1, :key \"x\"}\n\
         {:process 1, :type :invoke, :f :write, :value 1, :key 0}",
        "{:process 0, :type :invoke, :f :write, :value 1}\n\
         {:process 0, :type :invoke, :f :write, :value 2}",
        "{\"process\": 0, \"type\": \"invoke\", \"f\": \"write\", \"value\": }",
        "0 1 c0 put x",
        "1 0 c0 put x 1",
        "0 1 cX put x 1",
        "0 1 c0 frob x 1",
        "0 1 c0 get x",
        "0 - c0 put x 999999999999999999999999",
        "18446744073709551616 1 c0 put x 1",
        "not a history at all \u{0} \u{7}",
        "inv t0 o0",
        "inv t0 o0 write 1\nres t1 o0 write ()",
    ];
    for input in FUZZ {
        assert_parses_or_anchors(input);
    }
}
