//! `cal-serve` end-to-end: the CI streaming leg. A generated 100k-event
//! trace replays through the daemon with bounded-window retirement, a
//! TCP client is killed mid-stream without upsetting anyone, a slow
//! producer stalls the feed across the daemon's poll interval, and every
//! path lands on its documented exit code.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

const EXE: &str = env!("CARGO_BIN_EXE_cal-serve");

/// Runs `cal-serve` with `input` on stdin and waits for it.
fn serve(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(EXE)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cal-serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    let input = input.to_owned();
    let feeder = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
    });
    let out = child.wait_with_output().expect("cal-serve exits");
    feeder.join().unwrap();
    out
}

fn field(stdout: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let rest = stdout
        .split(&key)
        .nth(1)
        .unwrap_or_else(|| panic!("no {key} field in output:\n{stdout}"));
    let digits: String = rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("{key} field is not a number"))
}

/// A 100k-event single-register trace: 25k write/read round-trip pairs.
fn hundred_k_trace() -> String {
    let mut text = String::with_capacity(3_000_000);
    for i in 0..25_000u64 {
        let v = i % 7;
        text.push_str(&format!("t0 inv o0.write {v}\nt0 res o0.write ()\n"));
        text.push_str(&format!("t0 inv o0.read ()\nt0 res o0.read {v}\n"));
    }
    text
}

/// The headline streaming leg: 100k events, bounded window, verdict
/// parity with what a batch check of the same trace would say, and the
/// retirement counters proving steady-state memory stayed O(window).
#[test]
fn hundred_k_event_trace_replays_clean() {
    let out = serve(
        &["register", "--window", "64", "--checkpoint-every", "256", "--stats-json", "-", "--quiet"],
        &hundred_k_trace(),
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"verdict\": \"consistent\""), "stdout: {stdout}");
    assert_eq!(field(&stdout, "events"), 100_000);
    // Memory bound via counters: admitted = retired + residual window.
    let retired = field(&stdout, "retired_actions");
    let window = field(&stdout, "window");
    assert_eq!(retired + window, 100_000);
    assert!(field(&stdout, "peak_window") <= 128, "stdout: {stdout}");
}

#[test]
fn violation_exits_one_and_is_final() {
    let out = serve(
        &["exchanger", "--stats-json", "-"],
        "t1 inv o0.exchange 3\nt1 res o0.exchange (true,9)\nt2 inv o0.exchange 1\n",
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"verdict\": \"violation\""), "stdout: {stdout}");
}

#[test]
fn window_overflow_degrades_to_the_documented_verdict() {
    // Five open invocations on distinct threads against a window of 2:
    // nothing can retire, so the daemon must degrade explicitly.
    let input = (0..5).map(|i| format!("t{i} inv o0.exchange {i}\n")).collect::<String>();
    let out = serve(&["exchanger", "--window", "2"], &input);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("undecided: window exceeded"),
        "degradation must name its cause: {stdout}"
    );
}

#[test]
fn exceeded_error_budget_refuses_the_stream_with_exit_three() {
    let garbage = "not an event\n".repeat(5);
    let out = serve(&["register", "--error-budget", "3", "--quiet"], &garbage);
    assert_eq!(out.status.code(), Some(3));
    let out = serve(&["register", "--error-budget", "16", "--quiet"], &garbage);
    assert_eq!(out.status.code(), Some(0), "within budget the stream is judged on its merits");
}

#[test]
fn usage_errors_exit_four() {
    for args in [&[][..], &["no-such-spec"][..], &["register", "--window"][..]] {
        let out = serve(args, "");
        assert_eq!(out.status.code(), Some(4), "args {args:?}");
    }
}

/// A producer that stalls longer than the daemon's internal poll
/// interval must not wedge or error the stream.
#[test]
fn slow_producer_stall_is_tolerated() {
    let mut child = Command::new(EXE)
        .args(["register", "--ack", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cal-serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"t0 inv o0.write 5\n").unwrap();
    stdin.flush().unwrap();
    std::thread::sleep(Duration::from_millis(400));
    stdin.write_all(b"t0 res o0.write ()\nbye\n").unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let acks = String::from_utf8_lossy(&out.stdout);
    assert!(acks.contains("ok"), "acks: {acks}");
}

fn spawn_tcp() -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut child = Command::new(EXE)
        .args([
            "exchanger",
            "--listen",
            "127.0.0.1:0",
            "--ack",
            "--checkpoint-every",
            "1",
            "--stats-json",
            "-",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cal-serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .unwrap_or_else(|| panic!("no address in banner {line:?}"))
        .to_owned();
    (child, stdout, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success());
}

/// The full TCP session dance: one client completes a failed exchange
/// and says bye; a second is killed mid-operation. The daemon absorbs
/// the crash (the orphan op is abandoned, then explained through the
/// exchanger's timeout completion), flushes a final report on SIGTERM,
/// and exits 0.
#[test]
fn tcp_client_killed_mid_stream_is_absorbed() {
    let (mut child, mut stdout, addr) = spawn_tcp();

    // Client 1: clean session.
    let mut clean = TcpStream::connect(&addr).expect("connect");
    clean.write_all(b"t1 inv o0.exchange 3\nt1 res o0.exchange (false,3)\nbye\n").unwrap();
    let mut acks = BufReader::new(clean.try_clone().unwrap());
    for want in ["ok", "ok", "ok"] {
        let mut line = String::new();
        acks.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), want);
    }
    drop(clean);

    // Client 2: invokes, is acked, then dies without responding.
    let mut dying = TcpStream::connect(&addr).expect("connect");
    dying.write_all(b"t2 inv o0.exchange 9\n").unwrap();
    let mut line = String::new();
    BufReader::new(dying.try_clone().unwrap()).read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "ok");
    drop(dying); // mid-stream kill: no response, no bye

    // Give the daemon a beat to observe the disconnect, then shut down.
    std::thread::sleep(Duration::from_millis(200));
    sigterm(&child);
    let status = child.wait().expect("cal-serve exits");
    assert_eq!(status.code(), Some(0), "the abandoned op must be absorbed");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("\"verdict\": \"consistent\""), "final report missing: {rest}");
    assert_eq!(field(&rest, "abandoned"), 1, "report: {rest}");
}

/// A violation over TCP refuses the stream for every client and exits 1
/// once the daemon winds down.
#[test]
fn tcp_violation_latches_for_all_clients() {
    let (mut child, mut stdout, addr) = spawn_tcp();
    let mut client = TcpStream::connect(&addr).expect("connect");
    client.write_all(b"t1 inv o0.exchange 3\nt1 res o0.exchange (true,9)\n").unwrap();
    let mut acks = BufReader::new(client.try_clone().unwrap());
    let mut line = String::new();
    acks.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "ok");
    line.clear();
    acks.read_line(&mut line).unwrap();
    // The response was admitted; the checkpoint then latched the
    // violation and the daemon told the client before closing.
    assert!(line.contains("refused violation") || line.trim() == "ok", "ack: {line:?}");

    let status = child.wait().expect("cal-serve exits");
    assert_eq!(status.code(), Some(1));
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("\"verdict\": \"violation\""), "final report: {rest}");
}
