//! E3/E4 — the elimination array and the elimination stack, verified
//! modularly over all interleavings of bounded clients (§5).

use cal::core::agree::agrees_bool;
use cal::core::compose::{Composed, TraceMap};
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::sim::models::elim_array::ElimArrayModel;
use cal::sim::models::elim_stack::ElimStackModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::elim_array::{ElimArraySpec, FArMap};
use cal::specs::elim_stack::{modular_stack_check, FEsMap};
use cal::specs::vocab::{EXCHANGE, POP, PUSH};

const ES: ObjectId = ObjectId(0);
const S: ObjectId = ObjectId(1);
const AR: ObjectId = ObjectId(2);
const E0: ObjectId = ObjectId(10);
const E1: ObjectId = ObjectId(11);

fn push(v: i64) -> OpRequest {
    OpRequest::new(PUSH, Value::Int(v))
}

fn pop() -> OpRequest {
    OpRequest::new(POP, Value::Unit)
}

fn exchange(v: i64) -> OpRequest {
    OpRequest::new(EXCHANGE, Value::Int(v))
}

// ---------- E3: elimination array ----------

#[test]
fn elim_array_k1_all_interleavings_conform() {
    let model = ElimArrayModel::new(AR, vec![E0]);
    let far = FArMap::new(AR, vec![E0]);
    let spec = ElimArraySpec::new(AR);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)], vec![exchange(3)]]);
    let mut n = 0;
    Explorer::new(&model, w).run(|e| {
        n += 1;
        let mapped = far.apply(&e.trace);
        assert!(spec.accepts(&mapped));
        assert!(agrees_bool(&e.history, &mapped));
    });
    assert!(n > 100);
}

#[test]
fn elim_array_k2_all_interleavings_conform() {
    let model = ElimArrayModel::new(AR, vec![E0, E1]);
    let far = FArMap::new(AR, vec![E0, E1]);
    let spec = ElimArraySpec::new(AR);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)], vec![exchange(3)]]);
    let mut n = 0;
    Explorer::new(&model, w).max_paths(150_000).run(|e| {
        n += 1;
        let mapped = far.apply(&e.trace);
        assert!(spec.accepts(&mapped), "illegal mapped trace {mapped}");
        assert!(agrees_bool(&e.history, &mapped));
    });
    assert!(n > 100);
}

#[test]
fn elim_array_cross_slot_operations_do_not_swap() {
    // Two threads forced onto different outcomes: any successful swap must
    // come from the same slot; the trace shows which.
    let model = ElimArrayModel::new(AR, vec![E0, E1]);
    let w = Workload::new(vec![vec![exchange(1)], vec![exchange(2)]]);
    Explorer::new(&model, w).run(|e| {
        for el in e.trace.elements() {
            assert!(el.object() == E0 || el.object() == E1);
            if el.len() == 2 {
                // A swap element lives entirely on one exchanger.
                let ops = el.ops();
                assert_eq!(ops[0].object, ops[1].object);
            }
        }
    });
}

// ---------- E4: elimination stack ----------

fn es_model(k: usize, rounds: u8) -> (ElimStackModel, FArMap, FEsMap) {
    let slots = vec![E0, E1][..k].to_vec();
    (
        ElimStackModel::new(ES, S, ElimArrayModel::new(AR, slots.clone()), rounds),
        FArMap::new(AR, slots),
        FEsMap::new(ES, S, AR),
    )
}

#[test]
fn push_pop_exhaustive_modular_check() {
    let (model, far, fes) = es_model(1, 1);
    let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
    let mut n = 0;
    Explorer::new(&model, w).run(|e| {
        n += 1;
        let lifted = far.apply(&e.trace);
        assert!(modular_stack_check(&fes, &lifted), "failed: {}", e.trace);
    });
    assert!(n > 5);
}

#[test]
fn push_push_pop_exhaustive_modular_check() {
    let (model, far, fes) = es_model(1, 1);
    let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
    let mut n = 0u64;
    Explorer::new(&model, w).max_paths(120_000).run(|e| {
        n += 1;
        let lifted = far.apply(&e.trace);
        assert!(modular_stack_check(&fes, &lifted), "failed: {}", e.trace);
    });
    assert!(n > 100);
}

#[test]
fn complete_histories_agree_with_abstract_trace() {
    let (model, far, fes) = es_model(1, 1);
    let composed = Composed::new(fes, far);
    let w = Workload::new(vec![vec![push(5)], vec![pop()]]);
    Explorer::new(&model, w).run(|e| {
        if e.history.is_complete() {
            let abstract_trace = composed.apply(&e.trace);
            assert!(
                agrees_bool(&e.history, &abstract_trace),
                "history {} disagrees with {}",
                e.history,
                abstract_trace
            );
        }
    });
}

#[test]
fn popped_values_were_pushed() {
    let (model, _, _) = es_model(1, 1);
    let w = Workload::new(vec![vec![push(1)], vec![push(2)], vec![pop()]]);
    Explorer::new(&model, w).max_paths(120_000).run(|e| {
        for op in e.history.operations() {
            if op.method == POP {
                if let Some((true, v)) = op.ret.as_pair() {
                    assert!(v == 1 || v == 2, "pop invented value {v}");
                }
            }
        }
    });
}

#[test]
fn two_slots_sampled_modular_check() {
    let (model, far, fes) = es_model(2, 1);
    let w = Workload::new(vec![
        vec![push(1), pop()],
        vec![push(2)],
        vec![pop()],
    ]);
    Explorer::new(&model, w).sample(23, 2_000, |e| {
        let lifted = far.apply(&e.trace);
        assert!(modular_stack_check(&fes, &lifted), "failed: {}", e.trace);
    });
}

#[test]
fn larger_workload_sampled_modular_check() {
    let (model, far, fes) = es_model(2, 2);
    let w = Workload::new(vec![
        vec![push(1), push(2)],
        vec![pop(), push(3)],
        vec![pop(), pop()],
        vec![push(4)],
    ]);
    Explorer::new(&model, w).sample(29, 1_500, |e| {
        let lifted = far.apply(&e.trace);
        assert!(modular_stack_check(&fes, &lifted), "failed: {}", e.trace);
    });
}
