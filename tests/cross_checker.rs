//! Cross-checker differential suite: on singleton-only (sequential)
//! specifications, all three checkers are deciding the *same* property —
//! classical linearizability. CAL with every operation lifted to a
//! singleton element ([`SeqAsCa`]) and interval-linearizability with
//! every interval confined to one point ([`SeqAsInterval`]) both collapse
//! to it. Since the three checkers are now thin domains over one search
//! kernel, this suite asserts they agree verdict-for-verdict, sequentially
//! and through the shared parallel driver at several thread counts.

use cal::core::check::{check_cal_with, CheckError, CheckOptions, CheckOutcome, Verdict};
use cal::core::gen::interleave;
use cal::core::interval::{check_interval_par_with, check_interval_with, SeqAsInterval};
use cal::core::par::check_cal_par_with;
use cal::core::seqlin::{check_linearizable_par_with, check_linearizable_with};
use cal::core::spec::{SeqAsCa, SeqSpec};
use cal::core::{Action, History, Method, ObjectId, ThreadId, Value};
use cal::specs::register::{read_op, write_op, CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use proptest::prelude::*;

const O: ObjectId = ObjectId(0);

/// One generated operation: method, argument, return value, and whether
/// the response is recorded (the last op of a thread may stay pending).
type OpShape = (Method, Value, Value, bool);

fn arb_register_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("write"), Value::Int(v), Value::Unit, c)),
        (0i64..3, any::<bool>())
            .prop_map(|(v, c)| (Method("read"), Value::Unit, Value::Int(v), c)),
    ]
    .boxed()
}

fn arb_counter_op() -> BoxedStrategy<OpShape> {
    (0i64..4, any::<bool>())
        .prop_map(|(n, c)| (Method("inc"), Value::Unit, Value::Int(n), c))
        .boxed()
}

fn arb_stack_op() -> BoxedStrategy<OpShape> {
    prop_oneof![
        (0i64..3, any::<bool>(), any::<bool>())
            .prop_map(|(v, ok, c)| (Method("push"), Value::Int(v), Value::Bool(ok), c)),
        (any::<bool>(), 0i64..3, any::<bool>())
            .prop_map(|(ok, v, c)| (Method("pop"), Value::Unit, Value::Pair(ok, v), c)),
    ]
    .boxed()
}

/// Builds a history: up to 3 threads × up to 3 ops on one object,
/// interleaved by seed.
fn build_history(threads: Vec<Vec<OpShape>>, seed: u64) -> History {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let lists: Vec<Vec<Action>> = threads
        .into_iter()
        .enumerate()
        .map(|(t, ops)| {
            let mut out = Vec::new();
            let n = ops.len();
            for (i, (m, arg, ret, complete)) in ops.into_iter().enumerate() {
                out.push(Action::invoke(ThreadId(t as u32), O, m, arg));
                // Only the final op of a thread may stay pending.
                if complete || i + 1 < n {
                    out.push(Action::response(ThreadId(t as u32), O, m, ret));
                }
            }
            out
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    interleave(&lists, &mut rng)
}

fn history_of(op: impl Strategy<Value = OpShape>) -> impl Strategy<Value = History> {
    (prop::collection::vec(prop::collection::vec(op, 0..4), 1..4), any::<u64>())
        .prop_map(|(threads, seed)| build_history(threads, seed))
}

/// The bucket of a check result, ignoring the witness payload — the unit
/// of cross-checker agreement.
fn category<W>(r: &Result<CheckOutcome<W>, CheckError>) -> String {
    match r {
        Ok(o) => match &o.verdict {
            Verdict::Cal(_) => "accepted".into(),
            Verdict::NotCal => "rejected".into(),
            Verdict::ResourcesExhausted => "exhausted".into(),
            Verdict::Interrupted { reason } => format!("interrupted({reason:?})"),
        },
        Err(e) => format!("error({e:?})"),
    }
}

/// The oracle: the CAL checker (singleton elements), the seqlin checker
/// and the interval checker (singleton intervals) return the same verdict
/// on `h`, sequentially and via the shared parallel driver at 1, 2 and 4
/// threads.
fn assert_cross_agreement<S>(h: &History, spec: &S)
where
    S: SeqSpec + Clone + Sync,
    S::State: Send + Sync,
{
    let options = CheckOptions::default();
    let cal = category(&check_cal_with(h, &SeqAsCa::new(spec.clone()), &options));
    let seq = category(&check_linearizable_with(h, spec, &options));
    let interval = category(&check_interval_with(h, &SeqAsInterval::new(spec.clone()), &options));
    assert_eq!(cal, seq, "CAL vs seqlin disagree\nhistory:\n{h}");
    assert_eq!(cal, interval, "CAL vs interval disagree\nhistory:\n{h}");
    for threads in [1usize, 2, 4] {
        let par = CheckOptions { threads, ..CheckOptions::default() };
        let pcal = category(&check_cal_par_with(h, &SeqAsCa::new(spec.clone()), &par));
        let pseq = category(&check_linearizable_par_with(h, spec, &par));
        let pinterval =
            category(&check_interval_par_with(h, &SeqAsInterval::new(spec.clone()), &par));
        assert_eq!(cal, pcal, "threads={threads}: parallel CAL diverged\nhistory:\n{h}");
        assert_eq!(cal, pseq, "threads={threads}: parallel seqlin diverged\nhistory:\n{h}");
        assert_eq!(
            cal, pinterval,
            "threads={threads}: parallel interval diverged\nhistory:\n{h}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn register_checkers_agree(h in history_of(arb_register_op())) {
        let spec = RegisterSpec::new(O).with_read_universe(vec![0, 1, 2]);
        assert_cross_agreement(&h, &spec);
    }

    #[test]
    fn counter_checkers_agree(h in history_of(arb_counter_op())) {
        assert_cross_agreement(&h, &CounterSpec::new(O));
    }

    #[test]
    fn stack_checkers_agree(h in history_of(arb_stack_op())) {
        assert_cross_agreement(&h, &StackSpec::failing(O));
    }
}

/// A handful of fixed histories with known verdicts, so the agreement
/// suite cannot vacuously pass on generator quirks.
#[test]
fn fixed_register_histories_agree_with_known_verdicts() {
    let spec = RegisterSpec::new(O);
    // Accepted: write 5 then read 5.
    let w = write_op(O, ThreadId(1), 5);
    let r = read_op(O, ThreadId(2), 5);
    let good =
        History::from_actions(vec![w.invocation(), w.response(), r.invocation(), r.response()]);
    // Rejected: the read returns a stale value after the write completed.
    let stale = read_op(O, ThreadId(2), 0);
    let bad = History::from_actions(vec![
        w.invocation(),
        w.response(),
        stale.invocation(),
        stale.response(),
    ]);
    let options = CheckOptions::default();
    assert!(check_linearizable_with(&good, &spec, &options).unwrap().verdict.is_cal());
    assert!(!check_linearizable_with(&bad, &spec, &options).unwrap().verdict.is_cal());
    assert_cross_agreement(&good, &spec);
    assert_cross_agreement(&bad, &spec);
}
