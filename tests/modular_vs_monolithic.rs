//! E5 — the modular (compositional) verification path and the monolithic
//! whole-history search must agree; the benchmark `modular_vs_monolithic`
//! measures the cost gap, this test establishes the verdict equivalence.

use cal::core::compose::{Composed, TraceMap};
use cal::core::gen::{render, render_loose};
use cal::core::{seqlin, History, ObjectId};
use cal::specs::elim_stack::{modular_stack_check, FEsMap};
use cal::specs::gen::random_elim_subobject_trace;
use cal::specs::stack::StackSpec;
use cal::specs::elim_array::FArMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ES: ObjectId = ObjectId(0);
const S: ObjectId = ObjectId(1);
const AR: ObjectId = ObjectId(2);

fn fes() -> FEsMap {
    FEsMap::new(ES, S, AR)
}

/// The monolithic path: take the abstract ES history (rendered from the
/// mapped trace) and search for a linearization from scratch.
fn monolithic_accepts(history: &History) -> bool {
    seqlin::is_linearizable(history, &StackSpec::total(ES)).unwrap()
}

#[test]
fn generated_traces_accepted_by_both_paths() {
    let mut rng = StdRng::seed_from_u64(5);
    for size in [0, 1, 4, 16, 48] {
        let sub = random_elim_subobject_trace(&mut rng, &fes(), 4, size);
        // Modular: linear-time trace mapping + replay.
        assert!(modular_stack_check(&fes(), &sub), "modular rejected legal trace");
        // Monolithic: full linearizability search on the rendered history.
        let abstract_trace = fes().apply(&sub);
        let history = render(&abstract_trace);
        assert!(monolithic_accepts(&history), "monolithic rejected legal history");
    }
}

#[test]
fn loosened_histories_still_accepted_monolithically() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let sub = random_elim_subobject_trace(&mut rng, &fes(), 3, 20);
        let abstract_trace = fes().apply(&sub);
        let history = render_loose(&abstract_trace, &mut rng, 40);
        assert!(monolithic_accepts(&history));
    }
}

#[test]
fn corrupted_pop_rejected_by_both_paths() {
    use cal::core::{CaElement, Operation, ThreadId, Value};
    use cal::specs::vocab::POP;
    let mut rng = StdRng::seed_from_u64(9);
    let mut sub = random_elim_subobject_trace(&mut rng, &fes(), 3, 20);
    // Append a pop of a value that was never pushed.
    sub.push(CaElement::singleton(Operation::new(
        ThreadId(0),
        S,
        POP,
        Value::Unit,
        Value::Pair(true, 999_999),
    )));
    assert!(!modular_stack_check(&fes(), &sub));
    let history = render(&fes().apply(&sub));
    assert!(!monolithic_accepts(&history));
}

#[test]
fn composed_far_fes_equals_staged_application() {
    // 𝓕_ES = F̂_ES ∘ F̂_AR: composing the maps equals applying them in
    // stages — the paper's composition law, on concrete traces.
    use cal::specs::gen::random_exchanger_trace;
    let e0 = ObjectId(10);
    let far = FArMap::new(AR, vec![e0]);
    let composed = Composed::new(fes(), far.clone());
    let mut rng = StdRng::seed_from_u64(11);
    for size in [0, 3, 12] {
        let t = random_exchanger_trace(&mut rng, e0, 4, size);
        assert_eq!(composed.apply(&t), fes().apply(&far.apply(&t)));
    }
}
