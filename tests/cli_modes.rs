//! `cal-check --mode`: all three checkers behind one CLI, with working
//! observability in every mode, usage errors on spec/mode mismatches, and
//! broken-pipe-safe output (`cal-check ... | head` must exit 0, not
//! panic).

use std::io::Write;
use std::process::{Command, Output, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_cal-check");

fn corpus(name: &str) -> String {
    format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(EXE)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("cal-check runs")
}

/// Extracts `"nodes":N` from a SearchReport JSON line.
fn json_nodes(stdout: &str) -> u64 {
    let rest = stdout.split("\"nodes\":").nth(1).unwrap_or_else(|| {
        panic!("no \"nodes\" field in output:\n{stdout}");
    });
    let digits: String =
        rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("nodes field is a number")
}

#[test]
fn mode_seq_accepts_and_rejects_like_default() {
    // The default (CAL) checker lifts sequential specs to singleton
    // elements; --mode seq runs the classical checker. Same verdicts.
    for (file, code) in [("register_read_write.hist", 0), ("register_stale_read.hist", 1)] {
        let default_run = run(&["register", &corpus(file)]);
        let seq_run = run(&["register", &corpus(file), "--mode", "seq"]);
        assert_eq!(default_run.status.code(), Some(code), "default on {file}");
        assert_eq!(seq_run.status.code(), Some(code), "--mode seq on {file}");
    }
    let out = run(&["register", &corpus("register_read_write.hist"), "--mode", "seq"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("linearizable: yes"), "stdout: {stdout}");
}

#[test]
fn mode_interval_accepts_register_history() {
    let out = run(&["register", &corpus("register_read_write.hist"), "--mode", "interval"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("interval-linearizable: yes"), "stdout: {stdout}");
    let bad = run(&["register", &corpus("register_stale_read.hist"), "--mode", "interval"]);
    assert_eq!(bad.status.code(), Some(1));
}

#[test]
fn stats_are_populated_in_every_mode() {
    for mode in ["cal", "seq", "interval"] {
        let out = run(&[
            "register",
            &corpus("register_read_write.hist"),
            "--mode",
            mode,
            "--stats",
            "--stats-json",
            "-",
        ]);
        assert_eq!(out.status.code(), Some(0), "mode {mode}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("stats:"), "mode {mode}: no --stats line, stderr: {stderr}");
        assert!(json_nodes(&stdout) > 0, "mode {mode}: empty SearchReport\n{stdout}");
    }
}

#[test]
fn explain_works_in_every_mode() {
    for mode in ["seq", "interval"] {
        let out =
            run(&["register", &corpus("register_read_write.hist"), "--mode", mode, "--explain"]);
        assert_eq!(out.status.code(), Some(0), "mode {mode}");
        assert!(!out.stderr.is_empty(), "mode {mode}: --explain printed nothing");
    }
}

#[test]
fn ca_only_spec_in_seq_mode_is_a_usage_error() {
    let out = run(&["exchanger", &corpus("fig1_swap.hist"), "--mode", "seq"]);
    assert_eq!(out.status.code(), Some(4));
    let out = run(&["exchanger", &corpus("fig1_swap.hist"), "--mode", "interval"]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn write_snapshot_is_interval_only() {
    let out = run(&["write-snapshot", &corpus("register_read_write.hist"), "--mode", "cal"]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn chaos_mode_value_outside_chaos_is_a_usage_error() {
    let out = run(&["register", &corpus("register_read_write.hist"), "--mode", "stress"]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn unknown_mode_value_is_a_usage_error() {
    let out = run(&["register", &corpus("register_read_write.hist"), "--mode", "bogus"]);
    assert_eq!(out.status.code(), Some(4));
}

/// Rust ignores SIGPIPE, so every `println!` on a closed pipe used to
/// panic ("failed printing to stdout: Broken pipe"). The CLI now treats a
/// broken pipe as end-of-output: clean exit 0, nothing on stderr.
#[test]
fn broken_stdout_pipe_exits_cleanly() {
    let mut child = Command::new(EXE)
        .args(["register", "-", "--mode", "seq", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cal-check spawns");
    // Close the read end of stdout *before* feeding the history: by the
    // time the verdict is printed, the pipe is gone.
    drop(child.stdout.take());
    let history = "t1 inv o0.write 2\nt1 res o0.write ()\nt2 inv o0.read ()\nt2 res o0.read 2\n";
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(history.as_bytes())
        .expect("write history");
    let output = child.wait_with_output().expect("cal-check exits");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "CLI panicked on a broken pipe: {stderr}");
}
