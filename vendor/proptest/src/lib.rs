//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest's API this workspace uses:
//! `Strategy` (with `prop_map`/`boxed`), `Just`, `any`, integer-range and
//! tuple and `prop::collection::vec` strategies, `prop_oneof!`, the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-case seed (case index), and there is **no
//! shrinking** — a failing case panics with its case number so it can be
//! replayed by re-running the test.

pub mod test_runner {
    /// Execution configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic generator driving input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case number `case` (deterministic).
        pub fn deterministic(case: u64) -> Self {
            let mut rng = TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xCAFE_F00D };
            let _ = rng.next_u64(); // warm up small states
            TestRng { state: rng.state }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..bound` (`bound > 0`).
        pub fn index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "index bound must be positive");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type; the shim's take on
    /// `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice among boxed alternatives; the target of
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (s as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Canonical whole-domain strategies for primitives, used by
    /// [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// The `any` strategy for `T`.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// The whole-domain strategy for `T`; mirrors `proptest::arbitrary::any`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s with a length drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.index(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a property holds; panics (no shrinking) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality; panics (no shrinking) otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality; panics (no shrinking) otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut case_rng =
                        $crate::test_runner::TestRng::deterministic(case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy, &mut case_rng);
                    )*
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "proptest shim: property {} failed on case {}/{}",
                            stringify!($name), case, config.cases);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u32..100, any::<bool>());
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_hits_all_branches() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for case in 0..200 {
            let mut rng = crate::test_runner::TestRng::deterministic(case);
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0usize..10, ys in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
            for y in ys {
                prop_assert!((0..5).contains(&y));
            }
        }

        #[test]
        fn mapped_and_union_strategies(v in prop_oneof![
            Just(-1i64),
            (0i64..10).prop_map(|n| n * 2),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }
}
