//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim keeps the workspace's `cargo bench` targets compiling and
//! runnable: each benchmark closure is timed over a small fixed number
//! of iterations and the mean is printed. There is no warm-up, outlier
//! analysis, or HTML report — just enough to smoke-run the benches.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group (recorded but
/// only echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark manager.
pub struct Criterion {
    /// Iterations per measurement; kept tiny so `cargo bench` terminates
    /// quickly under the shim.
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: group_name.to_string(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.iters, "", id, None, f);
        self
    }

    /// Criterion's post-main hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (recorded for API compatibility; the shim
    /// keeps its own fixed iteration budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion.iters, &self.name, &id.to_string(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.criterion.iters, &self.name, id, self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    iters: u64,
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.checked_div(iters as u32).unwrap_or_default();
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    match throughput {
        Some(Throughput::Elements(n)) => {
            eprintln!("bench {label}: {per_iter:?}/iter ({n} elements)")
        }
        Some(Throughput::Bytes(n)) => eprintln!("bench {label}: {per_iter:?}/iter ({n} bytes)"),
        None => eprintln!("bench {label}: {per_iter:?}/iter"),
    }
}

/// Collects benchmark functions into a runnable group; mirrors
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(10).throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    black_box(n * 2)
                })
            });
            g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert!(ran >= 1, "bench closure should have executed");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("push", 8).to_string(), "push/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
