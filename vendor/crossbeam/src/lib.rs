//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of `crossbeam`'s API the workspace uses:
//!
//! - [`epoch`] — `Atomic`/`Owned`/`Shared` tagged pointers with guarded,
//!   deferred reclamation. Instead of per-thread epochs it uses one
//!   global pin registry: deferred destructions run only when **no**
//!   guard is pinned anywhere, which is strictly more conservative than
//!   (and therefore as safe as) real epoch reclamation.
//! - [`queue`] — `SegQueue`, a linearizable MPMC FIFO (mutex-backed
//!   here; the linearizability contract is what callers depend on).
//! - [`deque`] — the Chase–Lev work-stealing deque surface
//!   (`Worker`/`Stealer`/`Injector`/`Steal`): the owner pushes and pops
//!   LIFO at one end while thieves steal FIFO at the other. Mutex-backed
//!   here; what callers depend on is the ownership discipline (one
//!   `Worker`, many `Stealer`s) and that every pushed item is popped or
//!   stolen exactly once.

pub mod epoch {
    //! Epoch-style memory reclamation (conservative global-quiescence
    //! variant).

    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A deferred destruction: a type-erased pointer and its dropper.
    struct Deferred {
        ptr: *mut (),
        drop_fn: unsafe fn(*mut ()),
    }

    // SAFETY: the pointee is only touched by `drop_fn`, called exactly
    // once from whichever thread drains the registry.
    unsafe impl Send for Deferred {}

    struct Registry {
        pinned: usize,
        deferred: Vec<Deferred>,
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry { pinned: 0, deferred: Vec::new() });

    fn registry() -> std::sync::MutexGuard<'static, Registry> {
        match REGISTRY.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A pinned participant. While any active guard exists, no deferred
    /// destruction runs.
    #[derive(Debug)]
    pub struct Guard {
        active: bool,
    }

    /// Pins the current thread, returning a guard.
    pub fn pin() -> Guard {
        registry().pinned += 1;
        Guard { active: true }
    }

    /// Returns a dummy guard for use when the data structure is not
    /// shared (e.g. in `Drop` with `&mut self`).
    ///
    /// # Safety
    ///
    /// The caller must guarantee no concurrent access to the pointers
    /// this guard is used with.
    pub unsafe fn unprotected() -> &'static Guard {
        static UNPROTECTED: Guard = Guard { active: false };
        &UNPROTECTED
    }

    impl Guard {
        /// Defers destruction of the pointee until no guard is pinned.
        ///
        /// # Safety
        ///
        /// The pointee must have been allocated via [`Owned`] and must be
        /// retired exactly once.
        pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
            let raw = ptr.as_raw() as *mut T;
            debug_assert!(!raw.is_null(), "defer_destroy of null");
            unsafe fn drop_boxed<T>(p: *mut ()) {
                drop(Box::from_raw(p as *mut T));
            }
            if !self.active {
                // Unprotected: the caller vouches for exclusive access.
                drop(Box::from_raw(raw));
                return;
            }
            registry().deferred.push(Deferred { ptr: raw as *mut (), drop_fn: drop_boxed::<T> });
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let drained = {
                let mut reg = registry();
                reg.pinned -= 1;
                if reg.pinned == 0 {
                    std::mem::take(&mut reg.deferred)
                } else {
                    Vec::new()
                }
            };
            // Run destructors outside the lock.
            for d in drained {
                // SAFETY: no guard is pinned, so no Shared to this
                // pointee can still be dereferenced; retired once.
                unsafe { (d.drop_fn)(d.ptr) };
            }
        }
    }

    fn low_bits<T>() -> usize {
        std::mem::align_of::<T>() - 1
    }

    /// A nullable, taggable atomic pointer to `T`.
    pub struct Atomic<T> {
        data: AtomicUsize,
        _marker: PhantomData<*mut T>,
    }

    // SAFETY: same bounds as crossbeam's Atomic.
    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

    impl<T> Default for Atomic<T> {
        fn default() -> Self {
            Atomic::null()
        }
    }

    impl<T> std::fmt::Debug for Atomic<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Atomic({:#x})", self.data.load(Ordering::Relaxed))
        }
    }

    impl<T> Atomic<T> {
        /// A null pointer.
        pub const fn null() -> Self {
            Atomic { data: AtomicUsize::new(0), _marker: PhantomData }
        }

        /// Loads the current pointer.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared::from_data(self.data.load(ord))
        }

        /// Stores `new` unconditionally.
        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.data.store(new.into_data(), ord);
        }

        /// Compare-and-exchange: replaces `current` with `new` if the
        /// stored pointer (including tag) equals `current`.
        pub fn compare_exchange<'g, P: Pointer<T>>(
            &self,
            current: Shared<'_, T>,
            new: P,
            success: Ordering,
            failure: Ordering,
            _guard: &'g Guard,
        ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
            let new_data = new.into_data();
            match self.data.compare_exchange(current.data, new_data, success, failure) {
                Ok(_) => Ok(Shared::from_data(new_data)),
                Err(actual) => Err(CompareExchangeError {
                    current: Shared::from_data(actual),
                    // SAFETY: round-trips the representation produced by
                    // `into_data` above; ownership returns to the caller.
                    new: unsafe { P::from_data(new_data) },
                }),
            }
        }
    }

    /// The error of a failed [`Atomic::compare_exchange`]: the observed
    /// pointer and the rejected new value (an `Owned` is dropped with
    /// the error, like crossbeam's).
    pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
        /// The pointer actually stored.
        pub current: Shared<'g, T>,
        /// The rejected new pointer.
        pub new: P,
    }

    impl<T, P: Pointer<T>> std::fmt::Debug for CompareExchangeError<'_, T, P> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("CompareExchangeError").field("current", &self.current).finish_non_exhaustive()
        }
    }

    /// Types convertible to/from a tagged pointer word.
    pub trait Pointer<T> {
        /// Consumes `self`, returning the tagged word.
        fn into_data(self) -> usize;
        /// Reconstitutes from a tagged word.
        ///
        /// # Safety
        ///
        /// `data` must come from a prior `into_data` of the same type.
        unsafe fn from_data(data: usize) -> Self;
    }

    /// An owned heap allocation, analogous to `Box<T>`.
    pub struct Owned<T> {
        ptr: *mut T,
    }

    impl<T> Owned<T> {
        /// Allocates `value` on the heap.
        pub fn new(value: T) -> Self {
            Owned { ptr: Box::into_raw(Box::new(value)) }
        }

        /// Converts into a [`Shared`], transferring ownership to the
        /// data structure.
        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            Shared::from_data(self.into_data())
        }
    }

    impl<T> std::ops::Deref for Owned<T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: ptr is a live Box allocation owned by self.
            unsafe { &*self.ptr }
        }
    }

    impl<T> Drop for Owned<T> {
        fn drop(&mut self) {
            // SAFETY: exclusive ownership.
            unsafe { drop(Box::from_raw(self.ptr)) };
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_data(self) -> usize {
            let data = self.ptr as usize;
            std::mem::forget(self);
            data
        }
        unsafe fn from_data(data: usize) -> Self {
            Owned { ptr: (data & !low_bits::<T>()) as *mut T }
        }
    }

    /// A tagged, possibly-null pointer valid while guard `'g` is live.
    pub struct Shared<'g, T> {
        data: usize,
        _marker: PhantomData<(&'g (), *const T)>,
    }

    impl<'g, T> Clone for Shared<'g, T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'g, T> Copy for Shared<'g, T> {}

    impl<'g, T> PartialEq for Shared<'g, T> {
        fn eq(&self, other: &Self) -> bool {
            self.data == other.data
        }
    }
    impl<'g, T> Eq for Shared<'g, T> {}

    impl<'g, T> std::fmt::Debug for Shared<'g, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Shared({:#x})", self.data)
        }
    }

    impl<'g, T> Shared<'g, T> {
        fn from_data(data: usize) -> Self {
            Shared { data, _marker: PhantomData }
        }

        /// The null pointer.
        pub fn null() -> Self {
            Shared::from_data(0)
        }

        /// The untagged raw pointer.
        pub fn as_raw(&self) -> *const T {
            (self.data & !low_bits::<T>()) as *const T
        }

        /// `true` if the untagged pointer is null (a tagged null — e.g.
        /// a sentinel — is still "null", as in crossbeam).
        pub fn is_null(&self) -> bool {
            self.as_raw().is_null()
        }

        /// The tag stored in the pointer's low bits.
        pub fn tag(&self) -> usize {
            self.data & low_bits::<T>()
        }

        /// The same pointer with the tag replaced by `tag`.
        pub fn with_tag(&self, tag: usize) -> Self {
            Shared::from_data((self.data & !low_bits::<T>()) | (tag & low_bits::<T>()))
        }

        /// Dereferences the pointer.
        ///
        /// # Safety
        ///
        /// The pointer must be non-null and not yet retired.
        pub unsafe fn deref(&self) -> &'g T {
            &*self.as_raw()
        }

        /// Reclaims ownership of the allocation.
        ///
        /// # Safety
        ///
        /// The caller must have exclusive access to the pointee.
        pub unsafe fn into_owned(self) -> Owned<T> {
            debug_assert!(!self.is_null(), "into_owned of null");
            Owned { ptr: self.as_raw() as *mut T }
        }
    }

    impl<'g, T> Pointer<T> for Shared<'g, T> {
        fn into_data(self) -> usize {
            self.data
        }
        unsafe fn from_data(data: usize) -> Self {
            Shared::from_data(data)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::Ordering::SeqCst;

        #[test]
        fn cas_and_tags() {
            let a: Atomic<i64> = Atomic::null();
            let guard = &pin();
            let n = Owned::new(7).into_shared(guard);
            assert!(a.compare_exchange(Shared::null(), n, SeqCst, SeqCst, guard).is_ok());
            let loaded = a.load(SeqCst, guard);
            assert_eq!(unsafe { *loaded.deref() }, 7);
            assert!(!loaded.is_null());
            // Tagged null is still null, and tags round-trip.
            let t = Shared::<i64>::null().with_tag(1);
            assert!(t.is_null());
            assert_eq!(t.tag(), 1);
            assert_ne!(t, Shared::null());
            // Cleanup.
            assert!(a.compare_exchange(loaded, Shared::null(), SeqCst, SeqCst, guard).is_ok());
            unsafe { guard.defer_destroy(loaded) };
        }

        #[test]
        fn failed_cas_returns_owned() {
            let a: Atomic<i64> = Atomic::null();
            let guard = &pin();
            let first = Owned::new(1).into_shared(guard);
            a.compare_exchange(Shared::null(), first, SeqCst, SeqCst, guard).unwrap();
            // Losing CAS drops the Owned via the error value (no leak:
            // run under a leak checker to observe).
            let lost = Owned::new(2);
            assert!(a.compare_exchange(Shared::null(), lost, SeqCst, SeqCst, guard).is_err());
            let cur = a.load(SeqCst, guard);
            a.compare_exchange(cur, Shared::null(), SeqCst, SeqCst, guard).unwrap();
            unsafe { guard.defer_destroy(cur) };
        }

        #[test]
        fn deferred_destruction_waits_for_unpin() {
            static DROPS: AtomicUsize = AtomicUsize::new(0);
            struct Counted;
            impl Drop for Counted {
                fn drop(&mut self) {
                    DROPS.fetch_add(1, Ordering::SeqCst);
                }
            }
            let outer = pin();
            {
                let g = pin();
                let s = Owned::new(Counted).into_shared(&g);
                unsafe { g.defer_destroy(s) };
            }
            // Outer guard still pinned: not yet dropped.
            assert_eq!(DROPS.load(Ordering::SeqCst), 0);
            drop(outer);
            assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        }
    }
}

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A linearizable MPMC FIFO queue. The real crossbeam `SegQueue` is
    /// lock-free; this stand-in is mutex-backed but upholds the same
    /// linearizability contract callers rely on.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SegQueue(len={})", self.len())
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Enqueues `value` at the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Dequeues from the front.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// `true` if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}

pub mod deque {
    //! Work-stealing deques (the `crossbeam-deque` surface).
    //!
    //! The real implementation is the Chase–Lev deque: the owning worker
    //! pushes and pops at the bottom without contention while thieves CAS
    //! items off the top. This stand-in is mutex-backed but preserves the
    //! contract callers depend on: LIFO for the owner (depth-first
    //! locality), FIFO for thieves (steal the *shallowest* — largest —
    //! subtree), and exactly-once delivery of every item.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The owner's end of a work-stealing deque: LIFO push/pop at the
    /// bottom. Hand out [`Stealer`]s (via [`Worker::stealer`]) to other
    /// threads; the `Worker` itself stays with one owner.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty LIFO deque.
        pub fn new_lifo() -> Self {
            Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes `value` at the owner's (bottom) end.
        pub fn push(&self, value: T) {
            lock(&self.inner).push_back(value);
        }

        /// Pops from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            lock(&self.inner).pop_back()
        }

        /// A handle thieves use to steal from the opposite end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: Arc::clone(&self.inner) }
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }

        /// `true` if nothing is queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Worker(len={})", self.len())
        }
    }

    /// A thief's handle onto a [`Worker`]'s deque: steals FIFO from the
    /// top, so thieves take the oldest (shallowest) work.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Number of queued items at the instant of the call.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }

        /// `true` if nothing was queued at the instant of the call.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Stealer(len={})", self.len())
        }
    }

    /// A shared FIFO injector queue feeding a fleet of workers.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { inner: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues `value` at the back.
        pub fn push(&self, value: T) {
            lock(&self.inner).push_back(value);
        }

        /// Attempts to take the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` if nothing is queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }
    }

    impl<T> std::fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Injector(len={})", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(1), "thief takes the oldest");
            assert_eq!(w.pop(), Some(3), "owner takes the newest");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_feeds_in_order() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal().success(), Some("a"));
            assert_eq!(inj.steal().success(), Some("b"));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn exactly_once_across_threads() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let total: usize = std::thread::scope(|scope| {
                let thieves: Vec<_> = (0..4)
                    .map(|_| {
                        let s = w.stealer();
                        scope.spawn(move || {
                            let mut got = 0;
                            while let Steal::Success(_) = s.steal() {
                                got += 1;
                            }
                            got
                        })
                    })
                    .collect();
                thieves.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total + w.len(), 1000, "no item lost or duplicated");
            // Whatever the thieves left behind is still poppable.
            let mut rest = 0;
            while w.pop().is_some() {
                rest += 1;
            }
            assert_eq!(total + rest, 1000);
        }
    }
}
