//! Offline stand-in for the `rand` crate (0.8-flavoured API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the pieces of `rand` the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`],
//! [`thread_rng`], and [`seq::SliceRandom::choose`]. Generators are
//! SplitMix64-based: statistically fine for test workloads, and —
//! important for this repo — fully deterministic from a `u64` seed.

/// The core of a random generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers over an [`RngCore`]; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Derives a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step: advances `state` and returns the next output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard seedable generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small seeds do not yield correlated streams.
            let mut state = seed ^ 0x5DEE_CE66_D5A7_9D66;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// A per-thread generator handle; see [`super::thread_rng`].
    #[derive(Debug)]
    pub struct ThreadRng;

    thread_local! {
        pub(super) static THREAD_RNG_STATE: std::cell::Cell<u64> =
            std::cell::Cell::new(seed_entropy());
    }

    /// Weak per-thread entropy: a global counter mixed with the stack
    /// address — enough to decorrelate threads, no OS entropy needed.
    fn seed_entropy() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x1234_5678_9ABC_DEF0);
        let local = 0u8;
        let addr = &local as *const u8 as u64;
        COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed) ^ addr.rotate_left(17)
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG_STATE.with(|cell| {
                let mut s = cell.get();
                let out = splitmix64(&mut s);
                cell.set(s);
                out
            })
        }
    }
}

/// Returns the per-thread generator handle.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

pub mod distributions {
    //! Range sampling.

    use super::Rng;

    /// Ranges samplable via [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws a uniform sample.
        fn sample<R: Rng>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample<R: Rng>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random selection from slices; mirrors `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
        // All values of a small range get hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn thread_rng_works() {
        let mut r = super::thread_rng();
        let a: u64 = r.gen_range(0..u64::MAX);
        let b: u64 = r.gen_range(0..u64::MAX);
        assert!(a != b || a < u64::MAX); // progresses without panicking
    }
}
