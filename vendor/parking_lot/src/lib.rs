//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) subset of `parking_lot`'s API the workspace
//! actually uses, implemented over `std::sync`. Semantics follow
//! `parking_lot`: locks are not poisoned — a panic while holding a lock
//! does not wedge later lockers.

use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning semantics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable; thin wrapper over `std::sync::Condvar` exposing
/// the `parking_lot` method names used here.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std dance: std's wait consumes and returns the guard.
        replace_guard(guard, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Applies a guard-consuming function through a `&mut` guard slot.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // A guard has no niche for take/replace, so move it through the heap
    // via ptr reads; this is the standard replace-with idiom.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_signals() {
        let m = std::sync::Arc::new(Mutex::new(false));
        let cv = std::sync::Arc::new(Condvar::new());
        let (m2, cv2) = (std::sync::Arc::clone(&m), std::sync::Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
