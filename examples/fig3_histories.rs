//! The paper's Fig. 3, executed: why the exchanger needs concurrency-aware
//! specifications.
//!
//! The program `P` is `exchg(3) ‖ exchg(4) ‖ exchg(7)`. History `H1` (all
//! three overlap; 3 and 4 swap; 7 fails) and `H2` (same outcome, pairwise
//! overlaps) can happen; the sequential `H3` explains the same outcome but
//! its prefix `H3'` — one thread completing a *successful* exchange alone —
//! is an undesired behaviour every prefix-closed sequential specification
//! admitting `H3` must also admit.
//!
//! ```bash
//! cargo run --example fig3_histories
//! ```

use cal::core::check::{check_cal, Verdict};
use cal::core::spec::SeqSpec;
use cal::core::{seqlin, Action, History, Method, ObjectId, Operation, ThreadId, Value};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::vocab::EXCHANGE;

const E: ObjectId = ObjectId(0);

fn inv(t: u32, v: i64) -> Action {
    Action::invoke(ThreadId(t), E, EXCHANGE, Value::Int(v))
}

fn res(t: u32, ok: bool, v: i64) -> Action {
    Action::response(ThreadId(t), E, EXCHANGE, Value::Pair(ok, v))
}

/// The laxest sequential "specification" of the exchanger one could write:
/// any exchange may succeed with any value, alone. Admits H3 — and
/// therefore also its undesired prefix H3'.
#[derive(Debug)]
struct LaxSequentialExchanger;

impl SeqSpec for LaxSequentialExchanger {
    type State = ();

    fn initial(&self) {}

    fn apply(&self, _: &(), op: &Operation) -> Option<()> {
        (op.method == Method("exchange")).then_some(())
    }

    fn completions_of(&self, _: &cal::core::spec::Invocation) -> Vec<Value> {
        vec![]
    }
}

fn verdict_name(h: &History, spec: &ExchangerSpec) -> &'static str {
    match check_cal(h, spec).expect("well-formed").verdict {
        Verdict::Cal(_) => "CAL ✓",
        Verdict::NotCal => "not CAL ✗",
        Verdict::ResourcesExhausted | Verdict::Interrupted { .. } => "undecided",
    }
}

fn main() {
    let spec = ExchangerSpec::new(E);

    // H1: all three operations overlap.
    let h1 = History::from_actions(vec![
        inv(1, 3),
        inv(2, 4),
        inv(3, 7),
        res(1, true, 4),
        res(2, true, 3),
        res(3, false, 7),
    ]);
    // H2: the swap pair overlaps; t3's failure overlaps t2 only.
    let h2 = History::from_actions(vec![
        inv(1, 3),
        inv(2, 4),
        res(1, true, 4),
        inv(3, 7),
        res(2, true, 3),
        res(3, false, 7),
    ]);
    // H3: the fully sequential explanation of the same outcome.
    let h3 = History::from_actions(vec![
        inv(1, 3),
        res(1, true, 4),
        inv(2, 4),
        res(2, true, 3),
        inv(3, 7),
        res(3, false, 7),
    ]);
    // H3': the prefix of H3 in which t1 exchanged without a partner.
    let h3_prefix = History::from_actions(vec![inv(1, 3), res(1, true, 4)]);

    println!("Against the concurrency-aware exchanger specification (§4):");
    println!("  H1  (all overlap):          {}", verdict_name(&h1, &spec));
    println!("  H2  (pairwise overlaps):    {}", verdict_name(&h2, &spec));
    println!("  H3  (sequential):           {}", verdict_name(&h3, &spec));
    println!("  H3' (lone success prefix):  {}", verdict_name(&h3_prefix, &spec));
    assert!(check_cal(&h1, &spec).unwrap().verdict.is_cal());
    assert!(check_cal(&h2, &spec).unwrap().verdict.is_cal());
    assert!(!check_cal(&h3, &spec).unwrap().verdict.is_cal());
    assert!(!check_cal(&h3_prefix, &spec).unwrap().verdict.is_cal());

    println!("\nThe §3 dilemma for sequential specifications:");
    let lax = LaxSequentialExchanger;
    let lin_h3 = seqlin::is_linearizable(&h3, &lax).unwrap();
    let lin_h3p = seqlin::is_linearizable(&h3_prefix, &lax).unwrap();
    println!("  a sequential spec admitting H3 also admits H3' (lone success):");
    println!("    H3  linearizable w.r.t. lax seq spec: {lin_h3}");
    println!("    H3' linearizable w.r.t. lax seq spec: {lin_h3p}   ← too loose!");
    assert!(lin_h3 && lin_h3p);

    // And the only sound sequential spec (failures only) rejects real swaps:
    let strict = cal::core::spec::SeqAsCa::new(FailOnly);
    let h1_ok = cal::core::check::is_cal(&h1, &strict).unwrap();
    println!("  a sequential spec admitting only failures rejects H1: {}", !h1_ok);
    println!("    H1 linearizable w.r.t. fail-only seq spec: {h1_ok}   ← too restrictive!");
    assert!(!h1_ok);

    println!("\nConclusion (§3): every sequential specification of the exchanger");
    println!("is either too loose or too restrictive; CAL captures it exactly.");
}

/// The only *sound* sequential exchanger specification: all exchanges fail.
#[derive(Debug)]
struct FailOnly;

impl SeqSpec for FailOnly {
    type State = ();

    fn initial(&self) {}

    fn apply(&self, _: &(), op: &Operation) -> Option<()> {
        let (ok, v) = op.ret.as_pair()?;
        (!ok && op.arg == Value::Int(v)).then_some(())
    }

    fn completions_of(&self, inv: &cal::core::spec::Invocation) -> Vec<Value> {
        inv.arg.as_int().map(|v| Value::Pair(false, v)).into_iter().collect()
    }
}
