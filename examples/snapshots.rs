//! The expressiveness ladder of §6, executed:
//!
//! - **sequential** specifications cannot express the immediate snapshot
//!   (simultaneous operations see each other);
//! - **CAL / set-linearizability** can — and the Borowsky–Gafni algorithm
//!   is verified against it on all interleavings;
//! - **write-snapshot** needs more: one operation must span two *ordered*
//!   operations, which single-point assignments cannot express —
//!   **interval-linearizability** (Castañeda et al.) accepts it.
//!
//! ```bash
//! cargo run --release --example snapshots
//! ```

use cal::core::check::is_cal;
use cal::core::interval::{check_interval, Verdict};
use cal::core::{History, ObjectId, ThreadId};
use cal::objects::snapshot::ImmediateSnapshot;
use cal::sim::models::snapshot::ImmediateSnapshotModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::snapshot::{
    im_snap_op, view, write_snapshot_op, ImmediateSnapshotSpec, WriteSnapshotSpec, IM_SNAP,
};
use std::sync::Arc;

const O: ObjectId = ObjectId(0);

fn main() {
    model_check_borowsky_gafni();
    real_immediate_snapshot();
    write_snapshot_separation();
}

fn model_check_borowsky_gafni() {
    let model = ImmediateSnapshotModel::new(O, 2);
    let spec = ImmediateSnapshotSpec::new(O, 2);
    let w = Workload::new(vec![
        vec![OpRequest::new(IM_SNAP, cal::core::Value::Int(1))],
        vec![OpRequest::new(IM_SNAP, cal::core::Value::Int(2))],
    ]);
    let mut n = 0u64;
    Explorer::new(&model, w).run(|e| {
        assert!(is_cal(&e.history, &spec).unwrap());
        n += 1;
    });
    println!("Borowsky–Gafni immediate snapshot, 2 processes: {n} schedules, all CAL ✓");

    // A singleton-only (i.e. sequential) reading cannot explain the
    // simultaneous block:
    let a = im_snap_op(O, ThreadId(0), 1, view(&[1, 2]));
    let b = im_snap_op(O, ThreadId(1), 2, view(&[1, 2]));
    let h = History::from_actions(vec![a.invocation(), b.invocation(), a.response(), b.response()]);
    assert!(is_cal(&h, &ImmediateSnapshotSpec::new(O, 2)).unwrap());
    assert!(!is_cal(&h, &ImmediateSnapshotSpec::new(O, 1)).unwrap());
    println!("  the simultaneous block is CAL but not sequentially linearizable ✓");
}

fn real_immediate_snapshot() {
    let n = 4;
    let snap = Arc::new(ImmediateSnapshot::new(n));
    let views = Arc::new(parking_lot::Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for i in 0..n {
            let snap = Arc::clone(&snap);
            let views = Arc::clone(&views);
            scope.spawn(move || {
                let v = snap.im_snap(i, i as i64);
                views.lock().push((i, v));
            });
        }
    });
    let views = views.lock();
    println!("real immediate snapshot, {n} OS threads:");
    for &(i, v) in views.iter() {
        println!("  process {i} sees {v:#07b}");
    }
    for &(_, a) in views.iter() {
        for &(_, b) in views.iter() {
            assert!(a & b == a || a & b == b, "views must be comparable");
        }
    }
    println!("  all views comparable by containment ✓");
}

fn write_snapshot_separation() {
    // A overlaps both B and C; B precedes C. B sees {1,2}, everyone else
    // sees {1,2,3}: A's effect spans B's and C's points.
    let a = write_snapshot_op(O, ThreadId(0), 1, view(&[1, 2, 3]));
    let b = write_snapshot_op(O, ThreadId(1), 2, view(&[1, 2]));
    let c = write_snapshot_op(O, ThreadId(2), 3, view(&[1, 2, 3]));
    let h = History::from_actions(vec![
        a.invocation(),
        b.invocation(),
        b.response(),
        c.invocation(),
        c.response(),
        a.response(),
    ]);
    let outcome = check_interval(&h, &WriteSnapshotSpec::new(O, 4)).unwrap();
    match outcome.verdict {
        Verdict::Cal(witness) => {
            println!("write-snapshot separation history: interval-linearizable ✓");
            for (k, p) in witness.points().iter().enumerate() {
                let names: Vec<String> =
                    p.active.iter().map(|op| format!("{}", op.thread)).collect();
                println!("  point {k}: active {{{}}}", names.join(", "));
            }
        }
        other => panic!("expected interval-linearizable, got {other:?}"),
    }
    println!("  (and it is NOT CAL — one-point assignments cannot explain it)");
}
