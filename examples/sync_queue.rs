//! The synchronous queue — the extended paper's second exchanger client —
//! verified two ways: exhaustively in the simulator via `F_Q`, and on a
//! real concurrent run via the CAL checker.
//!
//! ```bash
//! cargo run --example sync_queue
//! ```

use cal::core::agree::agrees_bool;
use cal::core::check::is_cal;
use cal::core::compose::TraceMap;
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::objects::recorded::{run_threads, RecordedSyncQueue};
use cal::sim::models::sync_queue::SyncQueueModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::sync_queue::{FQMap, SyncQueueSpec};
use cal::specs::vocab::{PUT, TAKE};

const Q: ObjectId = ObjectId(0);
const E: ObjectId = ObjectId(10);

fn main() {
    model_check();
    real_run();
}

fn model_check() {
    let model = SyncQueueModel::new(Q, E, 0);
    let fq = FQMap::new(Q, E);
    let spec = SyncQueueSpec::new(Q);
    let workload = Workload::new(vec![
        vec![OpRequest::new(PUT, Value::Int(5))],
        vec![OpRequest::new(TAKE, Value::Unit)],
        vec![OpRequest::new(PUT, Value::Int(6))],
    ]);
    let mut transfers = 0u64;
    let mut timeouts = 0u64;
    // The retry loop grows the offer arena, so schedules do not collapse
    // under pruning; a budget keeps the demonstration quick.
    let stats = Explorer::new(&model, workload).max_paths(30_000).run(|e| {
        let mapped = fq.apply(&e.trace);
        assert!(spec.accepts(&mapped), "illegal queue trace {mapped}");
        assert!(agrees_bool(&e.history, &mapped), "trace does not explain history");
        for el in mapped.elements() {
            if el.len() == 2 {
                transfers += 1;
            } else {
                timeouts += 1;
            }
        }
    });
    println!(
        "model check (2 producers + 1 consumer): {} schedules — every F_Q-mapped trace \
         satisfies the rendezvous spec ✓ ({} transfers, {} timeouts across outcomes)",
        stats.paths, transfers, timeouts
    );
}

fn real_run() {
    let queue = RecordedSyncQueue::new(Q, 256);
    run_threads(4, |t| {
        for i in 0..6 {
            if t.0 % 2 == 0 {
                queue.try_put(t, (t.0 as i64) * 100 + i, 64);
            } else {
                queue.try_take(t, 64);
            }
        }
    });
    let history = queue.recorder().history();
    let ok = is_cal(&history, &SyncQueueSpec::new(Q)).unwrap();
    println!(
        "real run (2 producers + 2 consumers, {} ops): CAL = {ok} ✓",
        history.operations().len()
    );
    assert!(ok);
}
