//! Run the real elimination stack (Fig. 2) under concurrency, record its
//! client-visible history, and check that it is linearizable with respect
//! to the sequential stack specification.
//!
//! ```bash
//! cargo run --example elimination_stack
//! ```

use cal::core::check::Verdict;
use cal::core::{seqlin, ObjectId};
use cal::objects::recorded::{run_threads, RecordedEliminationStack};
use cal::specs::stack::StackSpec;

fn main() {
    const ES: ObjectId = ObjectId(0);
    const THREADS: u32 = 4;
    const OPS_PER_THREAD: i64 = 10;

    let stack = RecordedEliminationStack::new(ES, 2, 256);

    // Each thread alternates pushes and pops; pushes use thread-unique
    // values so lost or duplicated values are detectable.
    run_threads(THREADS, |t| {
        for i in 0..OPS_PER_THREAD {
            let v = (t.0 as i64) * 1_000 + i;
            stack.push(t, v);
            let got = stack.pop_wait(t);
            if got != v {
                println!("{t}: pushed {v}, popped {got} (someone else's value — fine)");
            }
        }
    });

    let history = stack.recorder().history();
    println!(
        "recorded {} operations across {THREADS} threads",
        history.operations().len()
    );

    let spec = StackSpec::total(ES);
    let outcome = seqlin::check_linearizable(&history, &spec).expect("well-formed");
    match outcome.verdict {
        Verdict::Cal(witness) => {
            println!("verdict: linearizable ✓ ({} linearization steps)", witness.len());
            println!(
                "search: {} nodes, {} memo hits",
                outcome.stats.nodes, outcome.stats.memo_hits
            );
        }
        Verdict::NotCal => {
            println!("verdict: NOT linearizable — bug!\nhistory:\n{history}");
            std::process::exit(1);
        }
        Verdict::ResourcesExhausted => println!("verdict: undecided (budget exhausted)"),
        Verdict::Interrupted { reason } => println!("verdict: undecided (interrupted: {reason})"),
    }
}
