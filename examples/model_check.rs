//! Exhaustive model checking of the paper's theorems on bounded clients:
//!
//! 1. every interleaving of the exchanger is CAL w.r.t. the §4
//!    specification, with the logged auxiliary trace as the witness;
//! 2. every transition is justified by a Fig. 4 rely/guarantee action, the
//!    invariant `J` holds throughout, and the Fig. 1 proof-outline
//!    assertions are stable (§5.1);
//! 3. every interleaving of the elimination stack passes the modular
//!    `F_ES ∘ F_AR` stack check (§5).
//!
//! ```bash
//! cargo run --release --example model_check
//! ```

use cal::core::agree::agrees_bool;
use cal::core::compose::TraceMap;
use cal::core::spec::CaSpec;
use cal::core::{ObjectId, Value};
use cal::rg::check_exchanger_rg;
use cal::sim::models::elim_array::ElimArrayModel;
use cal::sim::models::elim_stack::ElimStackModel;
use cal::sim::models::exchanger::ExchangerModel;
use cal::sim::{Explorer, OpRequest, Workload};
use cal::specs::elim_array::FArMap;
use cal::specs::elim_stack::{modular_stack_check, FEsMap};
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::vocab::{EXCHANGE, POP, PUSH};

fn main() {
    exchanger_cal();
    exchanger_rg();
    elimination_stack_modular();
    println!("\nall bounded-client obligations verified ✓");
}

fn exchanger_cal() {
    const E: ObjectId = ObjectId(0);
    let model = ExchangerModel::new(E);
    let spec = ExchangerSpec::new(E);
    let workload = Workload::new(vec![
        vec![OpRequest::new(EXCHANGE, Value::Int(3))],
        vec![OpRequest::new(EXCHANGE, Value::Int(4))],
        vec![OpRequest::new(EXCHANGE, Value::Int(7))],
    ]);
    let mut checked = 0u64;
    let stats = Explorer::new(&model, workload).run(|e| {
        assert!(spec.accepts(&e.trace), "illegal trace {}", e.trace);
        assert!(agrees_bool(&e.history, &e.trace), "trace does not explain history");
        checked += 1;
    });
    println!(
        "exchanger (3 threads, Fig. 3's P): {} schedules, {} distinct outcomes — all CAL ✓",
        stats.paths, checked
    );
}

fn exchanger_rg() {
    const E: ObjectId = ObjectId(0);
    let model = ExchangerModel::new(E);
    let workload = Workload::new(vec![
        vec![OpRequest::new(EXCHANGE, Value::Int(3))],
        vec![OpRequest::new(EXCHANGE, Value::Int(4))],
    ]);
    let mut checked = 0u64;
    let stats = Explorer::new(&model, workload)
        .record_transitions(true)
        .visit_duplicates()
        .run(|e| {
            check_exchanger_rg(E, e).unwrap_or_else(|v| panic!("RG violation: {v}"));
            checked += 1;
        });
    println!(
        "exchanger rely/guarantee (Fig. 4): {} schedules — INIT/CLEAN/PASS/XCHG/FAIL \
         conformance, invariant J, proof outline all hold ✓ ({} paths)",
        checked, stats.paths
    );
}

fn elimination_stack_modular() {
    const ES: ObjectId = ObjectId(0);
    const S: ObjectId = ObjectId(1);
    const AR: ObjectId = ObjectId(2);
    const E0: ObjectId = ObjectId(10);
    let model = ElimStackModel::new(ES, S, ElimArrayModel::new(AR, vec![E0]), 1);
    let far = FArMap::new(AR, vec![E0]);
    let fes = FEsMap::new(ES, S, AR);
    let workload = Workload::new(vec![
        vec![OpRequest::new(PUSH, Value::Int(1))],
        vec![OpRequest::new(PUSH, Value::Int(2))],
        vec![OpRequest::new(POP, Value::Unit)],
    ]);
    let mut checked = 0u64;
    let stats = Explorer::new(&model, workload).max_paths(60_000).run(|e| {
        let lifted = far.apply(&e.trace);
        assert!(modular_stack_check(&fes, &lifted), "modular check failed for {}", e.trace);
        checked += 1;
    });
    println!(
        "elimination stack (2 pushers + 1 popper): {} schedules{} — modular F_ES∘F_AR \
         stack check holds ✓",
        checked,
        if stats.truncated { " (budgeted)" } else { "" }
    );
}
