//! Quickstart: run a real exchanger under concurrency, record its history,
//! and check concurrency-aware linearizability.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use cal::core::check::{check_cal, Verdict};
use cal::core::ObjectId;
use cal::objects::recorded::{run_threads, RecordedExchanger};
use cal::specs::exchanger::ExchangerSpec;

fn main() {
    const E: ObjectId = ObjectId(0);
    // A real wait-free exchanger (Fig. 1), instrumented to record its
    // client-visible history.
    let exchanger = RecordedExchanger::new(E);

    // Three OS threads, each trying a handful of exchanges.
    run_threads(3, |t| {
        for i in 0..6 {
            let mine = (t.0 as i64) * 100 + i;
            let (ok, got) = exchanger.exchange(t, mine, 512);
            if ok {
                println!("{t}: exchanged {mine} for {got}");
            } else {
                println!("{t}: exchange of {mine} failed (no partner)");
            }
        }
    });

    let history = exchanger.recorder().history();
    println!("\nrecorded history ({} actions):\n{history}\n", history.len());

    // Is the history explainable by the exchanger's CA-trace specification
    // — swaps that really overlapped, failures that return their own value?
    let spec = ExchangerSpec::new(E);
    let outcome = check_cal(&history, &spec).expect("recorded histories are well-formed");
    match outcome.verdict {
        Verdict::Cal(witness) => {
            println!("verdict: concurrency-aware linearizable ✓");
            println!("witness CA-trace:\n  {witness}");
            println!(
                "search: {} nodes, {} elements tried, {} memo hits",
                outcome.stats.nodes, outcome.stats.elements_tried, outcome.stats.memo_hits
            );
        }
        Verdict::NotCal => println!("verdict: NOT CAL — the implementation is broken!"),
        Verdict::ResourcesExhausted => println!("verdict: undecided (budget exhausted)"),
        Verdict::Interrupted { reason } => println!("verdict: undecided (interrupted: {reason})"),
    }
}
