//! Watch a CAL check work: run the real elimination stack (Fig. 2) under
//! concurrency, then check the recorded history with two stats sinks
//! attached — a hand-rolled [`StatsSink`] that prints a live progress
//! line, and the batteries-included [`CountingSink`] whose
//! [`SearchReport`] summarizes the whole search as JSON.
//!
//! ```bash
//! cargo run --example observability
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cal::core::check::{check_cal_with, CheckOptions, InterruptReason, Verdict};
use cal::core::obs::{CountingSink, StatsSink};
use cal::core::spec::SeqAsCa;
use cal::core::ObjectId;
use cal::objects::recorded::{run_threads, RecordedEliminationStack};
use cal::specs::stack::StackSpec;

/// A custom sink: implement only the events you care about — every
/// [`StatsSink`] method defaults to a no-op. This one tracks the node
/// count and the widest frontier seen, printing a progress line every
/// few thousand expansions. All methods take `&self` and may be called
/// from several checker threads at once, so state is atomic.
#[derive(Default)]
struct ProgressSink {
    nodes: AtomicU64,
    widest: AtomicU64,
}

impl StatsSink for ProgressSink {
    fn on_node(&self) {
        let n = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(4096) {
            eprintln!("  ...{n} nodes expanded");
        }
    }

    fn on_frontier(&self, width: usize) {
        self.widest.fetch_max(width as u64, Ordering::Relaxed);
    }

    fn on_interrupt(&self, reason: InterruptReason) {
        eprintln!("  search interrupted: {reason}");
    }
}

fn main() {
    const ES: ObjectId = ObjectId(0);
    const THREADS: u32 = 4;
    const OPS_PER_THREAD: i64 = 10;

    // Harvest a history from the live object, as in the
    // `elimination_stack` example.
    let stack = RecordedEliminationStack::new(ES, 2, 256);
    run_threads(THREADS, |t| {
        for i in 0..OPS_PER_THREAD {
            let v = (t.0 as i64) * 1_000 + i;
            stack.push(t, v);
            stack.pop_wait(t);
        }
    });
    let history = stack.recorder().history();
    println!("recorded {} operations across {THREADS} threads", history.operations().len());

    // Linearizability is the singleton-element case of CAL, so the stack
    // spec is checked through the instrumented CAL search via `SeqAsCa`.
    let spec = SeqAsCa::new(StackSpec::total(ES));

    // 1. The custom sink, live while the search runs.
    let progress = Arc::new(ProgressSink::default());
    let options = CheckOptions {
        sink: Some(Arc::clone(&progress) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let outcome = check_cal_with(&history, &spec, &options).expect("well-formed");
    println!(
        "custom sink: {} nodes, widest frontier {}",
        progress.nodes.load(Ordering::Relaxed),
        progress.widest.load(Ordering::Relaxed),
    );

    // 2. The counting sink: a fresh run of the same check, folded into a
    // structured report. `report()` wants the outcome so its headline
    // counters come from the checker's own authoritative stats.
    let counting = Arc::new(CountingSink::new());
    let options = CheckOptions {
        sink: Some(Arc::clone(&counting) as Arc<dyn StatsSink>),
        ..CheckOptions::default()
    };
    let start = Instant::now();
    let outcome2 = check_cal_with(&history, &spec, &options).expect("well-formed");
    let report = counting.report(&outcome2, &options, start.elapsed());
    println!("report: {report}");
    println!("json:   {}", report.to_json());
    println!("{}", report.explain());

    match outcome.verdict {
        Verdict::Cal(witness) => {
            println!("verdict: linearizable ({} steps)", witness.len());
        }
        Verdict::NotCal => {
            println!("verdict: NOT linearizable — bug!\nhistory:\n{history}");
            std::process::exit(1);
        }
        verdict => println!("verdict: undecided ({verdict:?})"),
    }
}
