//! # cal — concurrency-aware linearizability, batteries included
//!
//! Umbrella crate re-exporting the whole CAL toolkit:
//!
//! - [`core`] *(re-export of `cal-core`)* — the CAL formalism: histories,
//!   CA-traces, the `⊑CAL` agreement relation, the CAL membership checker
//!   and the classical linearizability checker.
//! - [`specs`] *(re-export of `cal-specs`)* — ready-made specifications:
//!   exchanger, elimination array, stacks, elimination stack, synchronous
//!   queue, plus the paper's `F_AR`/`F_ES` view functions.
//! - [`objects`] *(re-export of `cal-objects`)* — real lock-free
//!   implementations of those objects with history recording.
//! - [`sim`] *(re-export of `cal-sim`)* — a deterministic interleaving
//!   simulator with step-machine models of the paper's algorithms.
//! - [`rg`] *(re-export of `cal-rg`)* — the rely/guarantee action framework
//!   and the machine-checked proof obligations of the exchanger proof.
//! - [`chaos`] *(re-export of `cal-chaos`)* — a seeded, reproducible
//!   fault-injection and soak harness over the live objects, with
//!   workload shrinking for minimal reproducers.
//!
//! See the repository `README.md` for a tour and `EXPERIMENTS.md` for the
//! reproduction results.

pub mod cli;

pub use cal_chaos as chaos;
pub use cal_core as core;
pub use cal_objects as objects;
pub use cal_rg as rg;
pub use cal_sim as sim;
pub use cal_specs as specs;
