//! `chaos-soak` — soak the live objects under seeded fault injection
//! until a time budget elapses or a history fails its CAL check, then
//! shrink the failure to a minimal reproducer and print it with its seed.
//!
//! ```text
//! Usage: chaos-soak [--seed <N>] [--secs <S>] [--target <T>|all]
//!                   [--spec <FILE.cal>] [--spec-name <NAME>]
//!                   [--threads <N>] [--check-threads <N>] [--ops <N>]
//!                   [--profile <P>] [--mode <M>] [--deadline-ms <N>]
//!                   [--stats]
//!
//!   T  exchanger | buggy-exchanger | treiber-stack | elim-stack |
//!      dual-stack | sync-queue | all            (default all)
//!   P  light | heavy | starvation               (default heavy)
//!   M  deterministic | stress                   (default deterministic)
//!
//! `all` soaks every target except the deliberately broken
//! buggy-exchanger, splitting the time budget evenly.
//!
//! `--spec <FILE.cal>` checks harvested histories against a runtime-loaded
//! spec (docs/SPEC_DSL.md) instead of the target's built-in one, with the
//! same compile-before-input contract as `cal-check`/`cal-serve`: the file
//! compiles before any run starts, and a compile failure prints its
//! diagnostic and exits 3. A multi-spec file needs `--spec-name` to pick
//! one. Because the loaded spec replaces the per-target built-ins, `--spec`
//! requires a single explicit `--target` (not `all`).
//!
//! `--threads` sizes the *workload*; `--check-threads` sizes the CAL
//! checker run on each harvested history (> 1 engages the parallel
//! checker).
//!
//! `--stats` prints a progress line roughly every two seconds while a
//! target soaks, and an end-of-run aggregate per target keyed by seed:
//! seed range covered, total / mean search nodes, and the most expensive
//! seed (the one whose check expanded the most nodes).
//!
//! Exit status (the contract shared with `cal-check` and `cal-serve`):
//! 0 = every run passed (including a SIGINT/SIGTERM-interrupted soak,
//! which flushes its per-target aggregates first), 1 = a failure was
//! found (reproducer printed), 3 = a `--spec` file that cannot be read
//! or does not compile, 4 = usage error.
//! ```
//!
//! Examples:
//!
//! ```bash
//! cargo run --bin chaos-soak -- --seed 0xCA11 --secs 10 --stats
//! cargo run --bin chaos-soak -- --target buggy-exchanger --secs 10   # finds the planted bug
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use std::sync::Arc;

use cal::chaos::driver::{soak_interruptible, Mode, RunConfig, SoakResult, TargetKind};
use cal::chaos::Profile;
use cal::cli::{
    install_shutdown_handler, parse_seed, shutdown_requested, EXIT_ERROR, EXIT_REJECTED,
    EXIT_USAGE,
};
use cal::core::check::CheckStats;
use cal::core::dsl;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos-soak [--seed <N>] [--secs <S>] [--target <T>|all]\n\
         \x20                 [--spec <FILE.cal>] [--spec-name <NAME>]\n\
         \x20                 [--threads <N>] [--check-threads <N>] [--ops <N>]\n\
         \x20                 [--profile <P>] [--mode <M>] [--deadline-ms <N>] [--stats]\n\
         \n\
         T: exchanger | buggy-exchanger | treiber-stack | elim-stack | dual-stack | sync-queue | all\n\
         P: light | heavy | starvation\n\
         M: deterministic | stress\n\
         --spec: check against a runtime-loaded .cal spec (docs/SPEC_DSL.md) instead of\n\
         \x20       the target's built-in; compiled before any run, compile failure exits 3;\n\
         \x20       requires a single explicit --target\n\
         --stats: periodic progress lines + per-target search-cost aggregate keyed by seed"
    );
    ExitCode::from(EXIT_USAGE)
}

/// Per-target aggregation of checker statistics across seeded runs.
#[derive(Default)]
struct TargetAgg {
    runs: u64,
    nodes: u64,
    elements: u64,
    memo_hits: u64,
    first_seed: Option<u64>,
    last_seed: u64,
    /// The seed whose check expanded the most nodes, and that count.
    worst: Option<(u64, u64)>,
}

impl TargetAgg {
    fn add(&mut self, seed: u64, stats: &CheckStats) {
        self.runs += 1;
        self.nodes += stats.nodes;
        self.elements += stats.elements_tried;
        self.memo_hits += stats.memo_hits;
        self.first_seed.get_or_insert(seed);
        self.last_seed = seed;
        if self.worst.is_none_or(|(_, n)| stats.nodes > n) {
            self.worst = Some((seed, stats.nodes));
        }
    }

    fn print(&self, target: TargetKind) {
        let Some(first) = self.first_seed else {
            println!("  stats[{target}]: no checked runs");
            return;
        };
        let mean = self.nodes as f64 / self.runs as f64;
        println!(
            "  stats[{target}]: seeds {first:#x}..={:#x}, {} runs, {} nodes total (mean {mean:.1}), \
             {} elements, {} memo hits",
            self.last_seed, self.runs, self.nodes, self.elements, self.memo_hits,
        );
        if let Some((seed, nodes)) = self.worst {
            println!("  stats[{target}]: most expensive seed {seed:#x} ({nodes} nodes)");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RunConfig::default();
    let mut targets: Option<Vec<TargetKind>> = None; // None = all healthy targets
    let mut secs = 10u64;
    let mut stats = false;
    let mut spec_file: Option<String> = None;
    let mut spec_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|n| parse_seed(n)) {
                Some(s) => config.seed = s,
                None => return usage(),
            },
            "--secs" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) if s > 0 => secs = s,
                _ => return usage(),
            },
            "--target" => match it.next() {
                Some(t) if t == "all" => targets = None,
                Some(t) => match TargetKind::parse(t) {
                    Some(t) => targets = Some(vec![t]),
                    None => return usage(),
                },
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.threads = n,
                _ => return usage(),
            },
            "--check-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.check_threads = n,
                _ => return usage(),
            },
            "--ops" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.ops_per_thread = n,
                _ => return usage(),
            },
            "--profile" => match it.next().and_then(|p| Profile::parse(p)) {
                Some(p) => config.profile = p,
                None => return usage(),
            },
            "--mode" => match it.next().and_then(|m| Mode::parse(m)) {
                Some(m) => config.mode = m,
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => config.deadline = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--spec" => match it.next() {
                Some(p) => spec_file = Some(p.clone()),
                None => return usage(),
            },
            "--spec-name" => match it.next() {
                Some(n) => spec_name = Some(n.clone()),
                None => return usage(),
            },
            "--stats" => stats = true,
            _ => return usage(),
        }
    }

    // `--spec` compiles before any run starts, so a bad .cal file fails
    // fast with its diagnostic (exit 3) — the contract shared with
    // `cal-check` and `cal-serve`. The loaded spec replaces the target's
    // built-in, so it only makes sense against one explicit target.
    if let Some(path) = &spec_file {
        if targets.as_ref().is_none_or(|t| t.len() != 1) {
            eprintln!("chaos-soak: --spec requires a single explicit --target");
            return usage();
        }
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chaos-soak: cannot read {path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let loaded = match dsl::parse_str(&src) {
            Ok(f) => f,
            Err(diag) => {
                eprintln!("chaos-soak: {path}: {diag}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let def = match (&spec_name, loaded.specs()) {
            (Some(name), _) => match loaded.get(name) {
                Some(def) => Arc::clone(def),
                None => {
                    eprintln!(
                        "chaos-soak: {path} defines no spec {name:?} (has: {})",
                        loaded.names().join(", ")
                    );
                    return ExitCode::from(EXIT_ERROR);
                }
            },
            (None, [only]) => Arc::clone(only),
            (None, many) => {
                eprintln!(
                    "chaos-soak: {path} defines {} specs ({}); pick one with --spec-name",
                    many.len(),
                    loaded.names().join(", ")
                );
                return ExitCode::from(EXIT_ERROR);
            }
        };
        config.spec = Some(def);
    } else if spec_name.is_some() {
        return usage(); // --spec-name is meaningless without --spec
    }

    // SIGINT/SIGTERM raise a flag checked between runs: an interrupted
    // soak still flushes its per-target aggregates and exits clean.
    install_shutdown_handler();

    // The planted bug is opt-in: `all` soaks only the healthy objects.
    let targets = targets.unwrap_or_else(|| {
        TargetKind::ALL.into_iter().filter(|t| *t != TargetKind::BuggyExchanger).collect()
    });
    let per_target = Duration::from_secs(secs) / targets.len() as u32;

    let mut total_runs = 0u64;
    for target in targets {
        let cfg = RunConfig { target, ..config.clone() };
        println!(
            "soaking {target} for {:.1}s (seed {:#x}, {} threads x {} ops, {} profile, {} mode)",
            per_target.as_secs_f64(),
            cfg.seed,
            cfg.threads,
            cfg.ops_per_thread,
            cfg.profile,
            cfg.mode,
        );
        let mut agg = TargetAgg::default();
        let mut last_progress = Instant::now();
        let result = soak_interruptible(&cfg, per_target, shutdown_requested, |outcome, elapsed| {
            if let Some(s) = outcome.verdict.stats() {
                agg.add(outcome.config.seed, s);
            }
            if stats && last_progress.elapsed() >= Duration::from_secs(2) {
                println!(
                    "  [{:5.1}s] {} runs, {} nodes searched, at seed {:#x}",
                    elapsed.as_secs_f64(),
                    agg.runs,
                    agg.nodes,
                    outcome.config.seed,
                );
                last_progress = Instant::now();
            }
        });
        match result {
            SoakResult::Clean { runs } => {
                total_runs += runs;
                println!("  {runs} seeded runs passed");
                if stats {
                    agg.print(target);
                }
                if shutdown_requested() {
                    println!("soak interrupted: {total_runs} runs completed, aggregates flushed");
                    return ExitCode::SUCCESS;
                }
            }
            SoakResult::Failed { runs, report } => {
                println!("  failure on run {runs}; shrunk to a minimal reproducer:");
                print!("{report}");
                if stats {
                    agg.print(target);
                }
                return ExitCode::from(EXIT_REJECTED);
            }
        }
    }
    println!("soak clean: {total_runs} runs, every history explainable");
    ExitCode::SUCCESS
}
