//! `chaos-soak` — soak the live objects under seeded fault injection
//! until a time budget elapses or a history fails its CAL check, then
//! shrink the failure to a minimal reproducer and print it with its seed.
//!
//! ```text
//! Usage: chaos-soak [--seed <N>] [--secs <S>] [--target <T>|all]
//!                   [--threads <N>] [--check-threads <N>] [--ops <N>]
//!                   [--profile <P>] [--mode <M>] [--deadline-ms <N>]
//!
//!   T  exchanger | buggy-exchanger | treiber-stack | elim-stack |
//!      dual-stack | sync-queue | all            (default all)
//!   P  light | heavy | starvation               (default heavy)
//!   M  deterministic | stress                   (default deterministic)
//!
//! `all` soaks every target except the deliberately broken
//! buggy-exchanger, splitting the time budget evenly.
//!
//! `--threads` sizes the *workload*; `--check-threads` sizes the CAL
//! checker run on each harvested history (> 1 engages the parallel
//! checker).
//!
//! Exit status: 0 = every run passed, 1 = a failure was found (reproducer
//! printed), 2 = usage error.
//! ```
//!
//! Examples:
//!
//! ```bash
//! cargo run --bin chaos-soak -- --seed 0xCA11 --secs 10
//! cargo run --bin chaos-soak -- --target buggy-exchanger --secs 10   # finds the planted bug
//! ```

use std::process::ExitCode;
use std::time::Duration;

use cal::chaos::driver::{soak, Mode, RunConfig, SoakResult, TargetKind};
use cal::chaos::Profile;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos-soak [--seed <N>] [--secs <S>] [--target <T>|all]\n\
         \x20                 [--threads <N>] [--check-threads <N>] [--ops <N>]\n\
         \x20                 [--profile <P>] [--mode <M>] [--deadline-ms <N>]\n\
         \n\
         T: exchanger | buggy-exchanger | treiber-stack | elim-stack | dual-stack | sync-queue | all\n\
         P: light | heavy | starvation\n\
         M: deterministic | stress"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RunConfig::default();
    let mut targets: Option<Vec<TargetKind>> = None; // None = all healthy targets
    let mut secs = 10u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|n| parse_seed(n)) {
                Some(s) => config.seed = s,
                None => return usage(),
            },
            "--secs" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) if s > 0 => secs = s,
                _ => return usage(),
            },
            "--target" => match it.next() {
                Some(t) if t == "all" => targets = None,
                Some(t) => match TargetKind::parse(t) {
                    Some(t) => targets = Some(vec![t]),
                    None => return usage(),
                },
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.threads = n,
                _ => return usage(),
            },
            "--check-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.check_threads = n,
                _ => return usage(),
            },
            "--ops" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.ops_per_thread = n,
                _ => return usage(),
            },
            "--profile" => match it.next().and_then(|p| Profile::parse(p)) {
                Some(p) => config.profile = p,
                None => return usage(),
            },
            "--mode" => match it.next().and_then(|m| Mode::parse(m)) {
                Some(m) => config.mode = m,
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => config.deadline = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // The planted bug is opt-in: `all` soaks only the healthy objects.
    let targets = targets.unwrap_or_else(|| {
        TargetKind::ALL.into_iter().filter(|t| *t != TargetKind::BuggyExchanger).collect()
    });
    let per_target = Duration::from_secs(secs) / targets.len() as u32;

    let mut total_runs = 0u64;
    for target in targets {
        let cfg = RunConfig { target, ..config.clone() };
        println!(
            "soaking {target} for {:.1}s (seed {:#x}, {} threads x {} ops, {} profile, {} mode)",
            per_target.as_secs_f64(),
            cfg.seed,
            cfg.threads,
            cfg.ops_per_thread,
            cfg.profile,
            cfg.mode,
        );
        match soak(&cfg, per_target) {
            SoakResult::Clean { runs } => {
                total_runs += runs;
                println!("  {runs} seeded runs passed");
            }
            SoakResult::Failed { runs, report } => {
                println!("  failure on run {runs}; shrunk to a minimal reproducer:");
                print!("{report}");
                return ExitCode::from(1);
            }
        }
    }
    println!("soak clean: {total_runs} runs, every history explainable");
    ExitCode::SUCCESS
}

/// Accepts decimal or `0x`-prefixed hex seeds.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
