//! `cal-serve` — a long-running streaming checker daemon: ingest
//! invoke/response events line-by-line over stdin or a TCP socket, check
//! them online against a built-in specification with bounded memory
//! ([`cal::core::stream`]), and emit verdicts plus stream reports
//! continuously in the `--stats-json` wire format.
//!
//! ```text
//! Usage: cal-serve <SPEC> [--spec <FILE.cal>] [--format <F>] [--object <N>]
//!                  [--causal] [--window <N>] [--checkpoint-every <N>]
//!                  [--max-states <N>] [--max-nodes <N>] [--deadline-ms <N>]
//!                  [--error-budget <N>] [--listen <ADDR:PORT>] [--ack]
//!                  [--stats-json <PATH|->] [--stats-every <N>] [--quiet]
//!
//!   SPEC     exchanger | elim-array | sync-queue | dual-stack (concurrency-aware)
//!            stack | failing-stack | register | counter | kv  (sequential)
//!
//!   --spec <FILE.cal>       load user specs from a .cal file
//!                           (docs/SPEC_DSL.md) — loaded names shadow the
//!                           built-ins; with a single-spec file the
//!                           positional SPEC may be omitted; a compile
//!                           failure prints the diagnostic and exits 3
//!
//!   --format <F>            wire format: auto (default) | native | jepsen |
//!                           kvlog — auto sniffs the first contentful line and
//!                           latches
//!
//!   --causal                check against the happens-before partial order
//!                           instead of real time: kvlog `hb` lines (and the
//!                           wire's `hb <i> <j>` / `hb session` events)
//!                           constrain the window searches, and retirement
//!                           cuts are hb-closed — a segment is only retired
//!                           once no declared edge points back into it. An
//!                           edge whose target is already retired latches
//!                           `undecided: late happens-before edge`. Without
//!                           the flag, edges are counted but inert.
//!
//!   --window <N>            cap on open-or-undecided invocations buffered
//!                           in the search window (default 4096, 0 = unbounded)
//!   --checkpoint-every <N>  retire + re-evaluate every N admitted events
//!                           (default 128)
//!   --max-states <N>        cap on reachable states carried across a
//!                           retirement boundary (default 64)
//!   --max-nodes / --deadline-ms   per-checkpoint search budget
//!   --error-budget <N>      malformed or ill-formed events tolerated before
//!                           the stream is refused (default 16)
//!   --listen <ADDR:PORT>    serve TCP clients instead of stdin (port 0 picks
//!                           a free port; the bound address is printed first)
//!   --ack                   acknowledge every line: ok | ign | rej <why> |
//!                           nak saturated | refused <verdict>
//!   --stats-json <PATH|->   write the stream report JSON to PATH (latest
//!                           snapshot) or append lines to stdout with -
//!   --stats-every <N>       also emit a report every N admitted events
//!   --quiet                 suppress verdict-transition and summary lines
//! ```
//!
//! ## Wire format
//!
//! One event per line in any [`cal::core::format`] format — the native
//! `cal_core::text` history format (`t<N> inv <object>.<method> <value>`
//! / `t<N> res <object>.<method> <value>`), Jepsen-style EDN/JSON records
//! (`{:process 0, :type :invoke, :f :write, :value 1, :key 0}`), or
//! timestamped kvlog lines (`<start> <end|-|?> <client> put|get <key>
//! [<value>]`). `--format` pins the format; the default sniffs the first
//! contentful line and latches. Decoding is incremental
//! ([`cal::core::format::StreamDecoder`]): a Jepsen `:fail`/`:info`
//! record and a kvlog line with no end timestamp abandon the thread's
//! pending operation, which the checker then explains through the
//! specification's timeout-admission completions. Malformed lines are
//! quarantined against `--error-budget` with line-anchored diagnostics,
//! whatever the format.
//!
//! Blank lines and `#` comments are ignored. Two control lines ride
//! along: `bye` ends the stream (TCP: closes the session cleanly) and
//! `abandon t<N>` declares thread N's client dead, sealing its pending
//! operation via the specification's timeout-admission completions at
//! the next retirement boundary.
//!
//! ## Backpressure and degradation
//!
//! When the window cap is hit and retirement cannot free space, TCP
//! clients running with `--ack` are NAKed (`nak saturated`) and expected
//! to retry — the event is not admitted, reads continue. NAK-and-retry
//! requires the retried line to decode cleanly a second time, so it is
//! only offered on the stateless native format; Jepsen and kvlog lines
//! (whose decode has already recorded the line's effect) resolve
//! saturation server-side instead. Without an ack channel (stdin, or TCP
//! without `--ack`), and on those stateful formats, the daemon forces a
//! checkpoint, retries once, and then degrades explicitly: the verdict
//! latches `undecided: window exceeded`, admitted events are kept, and
//! the rest of the stream is drained without admission — bounded memory,
//! never an abort.
//!
//! A TCP client that disconnects (or says `bye`) with operations still
//! pending has them abandoned automatically. An interrupting SIGINT or
//! SIGTERM flushes a final report before exiting.
//!
//! Exit status (the audited contract, shared with `cal-check`):
//! 0 = consistent, 1 = violation, 2 = undecided (budget, deadline or
//! window exceeded), 3 = input/checker error (including an exceeded
//! error budget), 4 = usage. A closed stdout pipe exits 0.
//!
//! Example:
//!
//! ```bash
//! printf 't1 inv o0.exchange 3\nt2 inv o0.exchange 4\nt1 res o0.exchange (true,4)\nt2 res o0.exchange (true,3)\n' \
//!   | cargo run --bin cal-serve -- exchanger --stats-json -
//! ```

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cal::cli::{
    install_shutdown_handler, parse_seed, shutdown_requested, EXIT_ACCEPTED, EXIT_ERROR,
    EXIT_REJECTED, EXIT_UNDECIDED, EXIT_USAGE,
};
use cal::core::check::CheckOptions;
use cal::core::dsl;
use cal::core::format::{Format, StreamDecoder, WireItem};
use cal::core::spec::{CaSpec, SeqAsCa};
use cal::core::stream::{Push, StreamChecker, StreamOptions, StreamVerdict, UndecidedWhy};
use cal::core::{ObjectId, ThreadId};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::kv::KvMapSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;
use parking_lot::Mutex;

/// Broken-pipe-safe printing, same contract as `cal-check`: `io::Error`
/// bubbles to [`main`], where `BrokenPipe` is a clean exit 0.
macro_rules! outln {
    ($($t:tt)*) => { writeln!(io::stdout(), $($t)*) }
}
macro_rules! errln {
    ($($t:tt)*) => { writeln!(io::stderr(), $($t)*) }
}

fn usage() -> io::Result<ExitCode> {
    errln!(
        "usage: cal-serve <SPEC> [--spec <FILE.cal>] [--format auto|native|jepsen|kvlog]\n\
         \x20                [--object <N>] [--causal] [--window <N>] [--checkpoint-every <N>]\n\
         \x20                [--max-states <N>] [--max-nodes <N>] [--deadline-ms <N>]\n\
         \x20                [--error-budget <N>] [--listen <ADDR:PORT>] [--ack]\n\
         \x20                [--stats-json <PATH|->] [--stats-every <N>] [--quiet]\n\
         \n\
         SPEC: exchanger | elim-array | sync-queue | dual-stack | stack | failing-stack |\n\
         \x20     register | counter | kv\n\
         \n\
         --spec loads user specs from a .cal file (docs/SPEC_DSL.md); loaded names\n\
         shadow built-ins, and with a single-spec file SPEC may be omitted\n\
         --causal checks against happens-before instead of real time: declared kvlog\n\
         `hb` edges constrain the search and retirement cuts are hb-closed\n\
         \n\
         events on stdin (or per TCP client): one event per line in the native,\n\
         jepsen, or kvlog format (--format auto sniffs the first line and latches);\n\
         control lines: 'bye' (end of stream), 'abandon t<N>' (client death)\n\
         \n\
         exit status: 0 consistent, 1 violation, 2 undecided, 3 input/checker error, 4 usage"
    )?;
    Ok(ExitCode::from(EXIT_USAGE))
}

/// Parsed command line.
struct Cfg {
    /// Pinned wire format; `None` sniffs the first contentful line.
    format: Option<Format>,
    object: ObjectId,
    window: usize,
    checkpoint_every: usize,
    max_states: usize,
    max_nodes: u64,
    deadline: Option<Duration>,
    error_budget: u64,
    listen: Option<String>,
    ack: bool,
    stats_json: Option<String>,
    stats_every: u64,
    quiet: bool,
    /// Causal mode: retirement cuts must be hb-closed and declared
    /// `hb` edges constrain the window searches.
    causal: bool,
}

fn main() -> ExitCode {
    match try_main() {
        Ok(code) => code,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => ExitCode::from(EXIT_ACCEPTED),
        Err(e) => {
            let _ = writeln!(io::stderr(), "cal-serve: io error: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn try_main() -> io::Result<ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_name: Option<String> = None;
    let mut spec_file: Option<String> = None;
    let mut cfg = Cfg {
        format: None,
        object: ObjectId(0),
        window: 4096,
        checkpoint_every: 128,
        max_states: 64,
        max_nodes: CheckOptions::default().max_nodes,
        deadline: None,
        error_budget: 16,
        listen: None,
        ack: false,
        stats_json: None,
        stats_every: 0,
        quiet: false,
        causal: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "auto" => cfg.format = None,
                Some(f) => match f.parse::<Format>() {
                    Ok(fmt) => cfg.format = Some(fmt),
                    Err(e) => {
                        errln!("cal-serve: {e}")?;
                        return usage();
                    }
                },
                None => return usage(),
            },
            "--object" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => cfg.object = ObjectId(n),
                None => return usage(),
            },
            "--window" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => cfg.window = n,
                None => return usage(),
            },
            "--checkpoint-every" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.checkpoint_every = n,
                _ => return usage(),
            },
            "--max-states" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.max_states = n,
                _ => return usage(),
            },
            "--max-nodes" => match it.next().and_then(|n| parse_seed(n)) {
                Some(n) if n > 0 => cfg.max_nodes = n,
                _ => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => cfg.deadline = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--error-budget" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => cfg.error_budget = n,
                None => return usage(),
            },
            "--listen" => match it.next() {
                Some(addr) => cfg.listen = Some(addr.clone()),
                None => return usage(),
            },
            "--spec" => match it.next() {
                Some(p) => spec_file = Some(p.clone()),
                None => return usage(),
            },
            "--ack" => cfg.ack = true,
            "--stats-json" => match it.next() {
                Some(p) => cfg.stats_json = Some(p.clone()),
                None => return usage(),
            },
            "--stats-every" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => cfg.stats_every = n,
                None => return usage(),
            },
            "--quiet" => cfg.quiet = true,
            "--causal" => cfg.causal = true,
            "-h" | "--help" => return usage(),
            _ if spec_name.is_none() => spec_name = Some(a.clone()),
            _ => return usage(),
        }
    }
    // `--spec` loads and compiles before any event is read, so a bad
    // .cal file fails fast with its diagnostic (exit 3). Loaded names
    // shadow built-ins, same policy as cal-check.
    if let Some(path) = &spec_file {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                errln!("cal-serve: cannot read {path}: {e}")?;
                return Ok(ExitCode::from(EXIT_ERROR));
            }
        };
        let loaded = match dsl::parse_str(&src) {
            Ok(f) => f,
            Err(diag) => {
                errln!("cal-serve: {path}: {diag}")?;
                return Ok(ExitCode::from(EXIT_ERROR));
            }
        };
        let def = match (&spec_name, loaded.specs()) {
            (Some(name), _) => match loaded.get(name) {
                Some(def) => Some(Arc::clone(def)),
                None => None, // fall through to the built-in dispatch
            },
            (None, [only]) => Some(Arc::clone(only)),
            (None, many) => {
                errln!(
                    "cal-serve: {path} defines {} specs ({}); name one as the SPEC argument",
                    many.len(),
                    loaded.names().join(", ")
                )?;
                return usage();
            }
        };
        if let Some(def) = def {
            install_shutdown_handler();
            return run(def.to_ca(cfg.object), &cfg);
        }
    }
    let Some(spec_name) = spec_name else {
        return usage();
    };
    install_shutdown_handler();
    let o = cfg.object;
    match spec_name.as_str() {
        "exchanger" => run(ExchangerSpec::new(o), &cfg),
        "elim-array" => run(ElimArraySpec::new(o), &cfg),
        "sync-queue" => run(SyncQueueSpec::new(o), &cfg),
        "dual-stack" => run(DualStackSpec::with_timeouts(o), &cfg),
        "stack" => run(SeqAsCa::new(StackSpec::total(o)), &cfg),
        "failing-stack" => run(SeqAsCa::new(StackSpec::failing(o)), &cfg),
        "register" => run(SeqAsCa::new(RegisterSpec::new(o)), &cfg),
        "counter" => run(SeqAsCa::new(CounterSpec::new(o)), &cfg),
        "kv" => run(SeqAsCa::new(KvMapSpec::new()), &cfg),
        other => {
            errln!("cal-serve: unknown spec {other:?}")?;
            usage()
        }
    }
}

fn run<S>(spec: S, cfg: &Cfg) -> io::Result<ExitCode>
where
    S: CaSpec + Send + 'static,
    S::State: Send,
{
    let options = StreamOptions {
        max_window: cfg.window,
        checkpoint_every: cfg.checkpoint_every,
        max_states: cfg.max_states,
        check: CheckOptions {
            max_nodes: cfg.max_nodes,
            deadline: cfg.deadline,
            ..CheckOptions::default()
        },
        causal: cfg.causal,
    };
    let checker = StreamChecker::new(spec, options);
    let decoder = StreamDecoder::new(cfg.format);
    match &cfg.listen {
        None => serve_stdin(checker, decoder, cfg),
        Some(addr) => serve_tcp(checker, decoder, cfg, addr),
    }
}

/// What one input line did to the stream.
enum Reply {
    /// Blank, comment, or a handled control line.
    Ignored,
    /// The event entered the window.
    Admitted,
    /// Quarantined (ill-formed event or parse error): counts against the
    /// error budget.
    Quarantined(String),
    /// Window saturated; the event was not admitted and may be retried.
    Saturated,
    /// The stream is closed (final verdict or degradation).
    Refused,
    /// The client said `bye`.
    Bye,
}

/// Feeds one raw line to the checker: control lines first, then one
/// decode (the decoder's state advances exactly once per line, whatever
/// the format), then admission of each decoded item. `line_no` is only
/// for error messages. `nak` says an ack channel exists for NAKing a
/// saturated event back to the client; it only helps when retrying the
/// line is sound — the native format, before the line has had any
/// effect. Everywhere else saturation resolves in-line: force a
/// checkpoint, retry the push once, then degrade explicitly. Threads
/// seen invoking are appended to `invoked` (even when admission then
/// fails) so TCP sessions can abandon them on disconnect.
fn apply_line<S: CaSpec>(
    checker: &mut StreamChecker<S>,
    decoder: &mut StreamDecoder,
    line_no: u64,
    raw: &str,
    nak: bool,
    invoked: &mut Vec<ThreadId>,
) -> Reply {
    let text = raw.trim();
    if text == "bye" {
        return Reply::Bye;
    }
    if let Some(rest) = text.strip_prefix("abandon ") {
        match rest.trim().strip_prefix('t').and_then(|n| n.parse::<u32>().ok()) {
            Some(n) => {
                checker.abandon_thread(ThreadId(n));
                return Reply::Ignored;
            }
            None => {
                return Reply::Quarantined(format!("line {line_no}: bad abandon target {rest:?}"))
            }
        }
    }
    let items = match decoder.decode_line(line_no as usize, raw) {
        Ok(items) => items,
        Err(e) => return Reply::Quarantined(e.to_string()),
    };
    if items.is_empty() {
        return Reply::Ignored;
    }
    // NAK-and-retry re-decodes the resent line, which is only sound when
    // decoding is stateless (native) and this line has not yet touched
    // the checker — a jepsen or kvlog line has already advanced the
    // decoder and would not decode the same way twice.
    let can_nak = nak && decoder.format() == Some(Format::Native);
    let mut effect = false;
    for item in items {
        match item {
            WireItem::Abandon(t) => {
                checker.abandon_thread(t);
                effect = true;
            }
            WireItem::HbEdge { from, to } => match checker.push_hb_edge(from, to) {
                Push::Refused => return Reply::Refused,
                _ => effect = true,
            },
            WireItem::Action(action) => {
                if action.is_invoke() {
                    invoked.push(action.thread());
                }
                match checker.push(action) {
                    Push::Admitted => effect = true,
                    Push::Rejected(e) => {
                        return Reply::Quarantined(format!("line {line_no}: {e}"))
                    }
                    Push::Refused => return Reply::Refused,
                    Push::Saturated => {
                        if can_nak && !effect {
                            return Reply::Saturated;
                        }
                        checker.checkpoint();
                        match checker.push(action) {
                            Push::Admitted => effect = true,
                            Push::Rejected(e) => {
                                return Reply::Quarantined(format!("line {line_no}: {e}"))
                            }
                            Push::Refused => return Reply::Refused,
                            Push::Saturated => {
                                checker.degrade();
                                return Reply::Refused;
                            }
                        }
                    }
                }
            }
        }
    }
    Reply::Admitted
}

/// Emits the report to the `--stats-json` target: `-` appends a line to
/// stdout (a report *stream*), a path is overwritten with the latest
/// snapshot.
fn emit_report(cfg: &Cfg, json: &str) -> io::Result<()> {
    match cfg.stats_json.as_deref() {
        Some("-") => {
            outln!("{json}")?;
            io::stdout().flush()
        }
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))
                .or_else(|e| errln!("cal-serve: cannot write {path}: {e}"))
        }
        None => Ok(()),
    }
}

/// Folds the final state into the exit-code contract.
fn exit_for(verdict: &StreamVerdict, budget_exceeded: bool) -> ExitCode {
    ExitCode::from(if budget_exceeded {
        EXIT_ERROR
    } else {
        match verdict {
            StreamVerdict::Consistent => EXIT_ACCEPTED,
            StreamVerdict::Violation => EXIT_REJECTED,
            StreamVerdict::Undecided(UndecidedWhy::CheckerError) => EXIT_ERROR,
            StreamVerdict::Undecided(_) => EXIT_UNDECIDED,
        }
    })
}

/// The single-session mode: events arrive on stdin; backpressure means
/// pausing reads (the pipe fills) and, if that cannot help, explicit
/// degradation.
fn serve_stdin<S: CaSpec>(
    mut checker: StreamChecker<S>,
    mut decoder: StreamDecoder,
    cfg: &Cfg,
) -> io::Result<ExitCode> {
    let start = Instant::now();
    // A reader thread forwards lines over a channel so the main loop can
    // poll the shutdown flag: std's blocking read retries EINTR, so a
    // signal would otherwise go unnoticed until the next line. The
    // channel is bounded: when the checker falls behind, the reader
    // blocks on send, stops draining stdin, and the pipe fills — that
    // *is* the backpressure, and it keeps ingest memory O(1) instead of
    // buffering an unbounded backlog of a fast producer's lines.
    let (tx, rx) = std::sync::mpsc::sync_channel::<String>(1024);
    std::thread::spawn(move || {
        for line in io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let mut lines = 0u64;
    let mut faults = 0u64;
    let mut budget_exceeded = false;
    let mut last_verdict = checker.verdict();
    'ingest: loop {
        if shutdown_requested() {
            if !cfg.quiet {
                errln!("cal-serve: shutdown signal, flushing final report")?;
            }
            break;
        }
        let line = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => line,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        };
        lines += 1;
        let mut invoked = Vec::new();
        let reply = apply_line(&mut checker, &mut decoder, lines, &line, false, &mut invoked);
        match &reply {
            Reply::Bye => {
                ack(cfg, &mut io::stdout(), "ok")?;
                break;
            }
            Reply::Ignored => ack(cfg, &mut io::stdout(), "ign")?,
            Reply::Admitted => ack(cfg, &mut io::stdout(), "ok")?,
            Reply::Quarantined(why) => {
                faults += 1;
                if !cfg.quiet {
                    errln!("cal-serve: quarantined: {why}")?;
                }
                ack(cfg, &mut io::stdout(), &format!("rej {why}"))?;
                if faults > cfg.error_budget {
                    errln!(
                        "cal-serve: error budget exceeded ({faults} > {}), refusing stream",
                        cfg.error_budget
                    )?;
                    budget_exceeded = true;
                    break;
                }
            }
            Reply::Saturated => {
                unreachable!("without an ack channel, saturation resolves in-line")
            }
            Reply::Refused => {
                ack(cfg, &mut io::stdout(), &format!("refused {}", checker.verdict()))?;
                // A refused stream can only end one way; drain nothing.
                break;
            }
        }
        let verdict = checker.verdict();
        if verdict != last_verdict {
            if !cfg.quiet {
                outln!("verdict: {verdict} ({} events)", checker.stats().events)?;
                io::stdout().flush()?;
            }
            if verdict == StreamVerdict::Violation {
                break 'ingest;
            }
            last_verdict = verdict;
        }
        if cfg.stats_every > 0 && checker.stats().events.is_multiple_of(cfg.stats_every) {
            emit_report(cfg, &checker.report(start.elapsed()).to_json())?;
        }
    }
    let verdict = checker.finish();
    let report = checker.report(start.elapsed());
    emit_report(cfg, &report.to_json())?;
    if !cfg.quiet {
        errln!("cal-serve: {}", report.summary())?;
        outln!("verdict: {verdict} ({} events)", checker.stats().events)?;
        io::stdout().flush()?;
    }
    Ok(exit_for(&verdict, budget_exceeded))
}

fn ack(cfg: &Cfg, sink: &mut impl Write, text: &str) -> io::Result<()> {
    if cfg.ack {
        writeln!(sink, "{text}")?;
        sink.flush()?;
    }
    Ok(())
}

/// State shared between the TCP accept loop and the per-client threads.
struct Shared<S: CaSpec> {
    checker: Mutex<StreamChecker<S>>,
    /// One wire decoder for the whole stream, shared by every session.
    /// Locked together with (and after) `checker` so a line's decode and
    /// admission are atomic with respect to other clients.
    decoder: Mutex<StreamDecoder>,
    /// Which session an event thread last invoked from, for disconnect
    /// handling.
    owners: Mutex<HashMap<ThreadId, u64>>,
    /// Live connections, so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    lines: Mutex<u64>,
    faults: Mutex<u64>,
    /// Raised on violation, degradation or an exceeded error budget:
    /// stop accepting, wind clients down.
    fatal: AtomicBool,
    budget_exceeded: AtomicBool,
    start: Instant,
}

/// The multi-client mode: every connection is a session whose pending
/// operations are abandoned if it disconnects; saturation NAKs the
/// offending client (with `--ack`) instead of degrading the stream.
fn serve_tcp<S>(
    checker: StreamChecker<S>,
    decoder: StreamDecoder,
    cfg: &Cfg,
    addr: &str,
) -> io::Result<ExitCode>
where
    S: CaSpec + Send + 'static,
    S::State: Send,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    // Port 0 picks a free port; announce the real address first so
    // clients (and tests) can find it.
    outln!("cal-serve: listening on {}", listener.local_addr()?)?;
    io::stdout().flush()?;
    let shared = Arc::new(Shared {
        checker: Mutex::new(checker),
        decoder: Mutex::new(decoder),
        owners: Mutex::new(HashMap::new()),
        conns: Mutex::new(Vec::new()),
        lines: Mutex::new(0),
        faults: Mutex::new(0),
        fatal: AtomicBool::new(false),
        budget_exceeded: AtomicBool::new(false),
        start: Instant::now(),
    });
    let mut handles = Vec::new();
    let mut sessions = 0u64;
    while !shutdown_requested() && !shared.fatal.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                sessions += 1;
                let session = sessions;
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().push(clone);
                }
                let shared = Arc::clone(&shared);
                let cfg = CfgLite::of(cfg);
                handles.push(std::thread::spawn(move || client(shared, cfg, stream, session)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                errln!("cal-serve: accept error: {e}")?;
                break;
            }
        }
    }
    // Unblock every client reader, then wait for them to finish their
    // disconnect handling (abandoning pending ops).
    for conn in shared.conns.lock().iter() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let mut checker = shared.checker.lock();
    let verdict = checker.finish();
    let report = checker.report(shared.start.elapsed());
    emit_report(cfg, &report.to_json())?;
    if !cfg.quiet {
        errln!("cal-serve: {sessions} sessions served")?;
        errln!("cal-serve: {}", report.summary())?;
        outln!("verdict: {verdict} ({} events)", checker.stats().events)?;
        io::stdout().flush()?;
    }
    Ok(exit_for(&verdict, shared.budget_exceeded.load(Ordering::SeqCst)))
}

/// The slice of [`Cfg`] a client thread needs (cheap to clone per
/// connection).
#[derive(Clone)]
struct CfgLite {
    ack: bool,
    quiet: bool,
    error_budget: u64,
}

impl CfgLite {
    fn of(cfg: &Cfg) -> Self {
        CfgLite { ack: cfg.ack, quiet: cfg.quiet, error_budget: cfg.error_budget }
    }
}

/// One client session: feed its lines to the shared checker, ack per the
/// policy, and abandon its pending operations when it goes away.
fn client<S: CaSpec>(shared: Arc<Shared<S>>, cfg: CfgLite, stream: TcpStream, session: u64) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut threads: HashSet<ThreadId> = HashSet::new();
    loop {
        if shutdown_requested() || shared.fatal.load(Ordering::SeqCst) {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Err(_) => break,
            Ok(_) => {}
        }
        let line_no = {
            let mut lines = shared.lines.lock();
            *lines += 1;
            *lines
        };
        let mut invoked = Vec::new();
        let reply = {
            let mut checker = shared.checker.lock();
            let mut decoder = shared.decoder.lock();
            apply_line(&mut checker, &mut decoder, line_no, &line, cfg.ack, &mut invoked)
        };
        // Remember which threads this session drives, admitted or not, so
        // even a still-pending (or NAKed) first invocation is abandoned
        // on disconnect.
        for t in invoked {
            threads.insert(t);
            shared.owners.lock().insert(t, session);
        }
        let closed = match &reply {
            Reply::Bye => {
                let _ = ack_to(&cfg, &mut writer, "ok");
                break;
            }
            Reply::Ignored => {
                let _ = ack_to(&cfg, &mut writer, "ign");
                false
            }
            Reply::Admitted => {
                let _ = ack_to(&cfg, &mut writer, "ok");
                false
            }
            Reply::Quarantined(why) => {
                let _ = ack_to(&cfg, &mut writer, &format!("rej {why}"));
                if !cfg.quiet {
                    let _ = errln!("cal-serve: quarantined: {why}");
                }
                let mut faults = shared.faults.lock();
                *faults += 1;
                if *faults > cfg.error_budget {
                    let _ = errln!(
                        "cal-serve: error budget exceeded ({} > {}), refusing stream",
                        *faults,
                        cfg.error_budget
                    );
                    shared.budget_exceeded.store(true, Ordering::SeqCst);
                    true
                } else {
                    false
                }
            }
            // Saturation only surfaces here when an ack channel exists
            // and the retry is sound (native format, no effect yet): NAK
            // and let the client retry. Every other case resolved inside
            // apply_line.
            Reply::Saturated => {
                let _ = ack_to(&cfg, &mut writer, "nak saturated");
                false
            }
            Reply::Refused => true,
        };
        let verdict = shared.checker.lock().verdict();
        if closed || verdict == StreamVerdict::Violation {
            let _ = ack_to(&cfg, &mut writer, &format!("refused {verdict}"));
            shared.fatal.store(true, Ordering::SeqCst);
            break;
        }
    }
    // Session over (clean or crashed): no one will ever respond to its
    // in-flight operations — seal them.
    let owners = shared.owners.lock();
    let mut checker = shared.checker.lock();
    for t in threads {
        if owners.get(&t) == Some(&session) {
            checker.abandon_thread(t);
        }
    }
}

fn ack_to(cfg: &CfgLite, writer: &mut TcpStream, text: &str) -> io::Result<()> {
    if cfg.ack {
        writeln!(writer, "{text}")?;
        writer.flush()?;
    }
    Ok(())
}
