//! `cal-check` — check a recorded history (in the `cal_core::text` line
//! format) against one of the built-in specifications, or run a single
//! seeded chaos workload against a live object and check the harvested
//! history.
//!
//! ```text
//! Usage: cal-check <SPEC> <FILE> [--object <N>] [--deadline-ms <N>]
//!        cal-check --chaos <PROFILE> [--seed <N>] [--target <T>]
//!                  [--threads <N>] [--ops <N>] [--mode <M>]
//!                  [--deadline-ms <N>]
//!
//!   SPEC     exchanger | elim-array | sync-queue        (concurrency-aware)
//!            stack | failing-stack | register | counter (sequential)
//!   FILE     history file, or - for stdin
//!   PROFILE  light | heavy | starvation
//!   T        exchanger | buggy-exchanger | treiber-stack | elim-stack |
//!            dual-stack | sync-queue       (default exchanger)
//!   M        deterministic | stress        (default deterministic)
//!
//! Exit status: 0 = accepted, 1 = rejected, 2 = usage/input/undecided.
//! ```
//!
//! Example:
//!
//! ```bash
//! printf 't1 inv o0.exchange 3\nt2 inv o0.exchange 4\nt1 res o0.exchange (true,4)\nt2 res o0.exchange (true,3)\n' \
//!   | cargo run --bin cal-check -- exchanger - --deadline-ms 500
//! cargo run --bin cal-check -- --chaos heavy --seed 7 --target elim-stack
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use cal::chaos::driver::{run_once, ChaosVerdict, Mode, RunConfig, TargetKind};
use cal::chaos::Profile;
use cal::core::check::{check_cal_with, CheckOptions, Verdict};
use cal::core::spec::{CaSpec, SeqSpec};
use cal::core::text::{format_trace, parse_history};
use cal::core::{seqlin, History, ObjectId};
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cal-check <SPEC> <FILE> [--object <N>] [--deadline-ms <N>]\n\
         \x20      cal-check --chaos <PROFILE> [--seed <N>] [--target <T>]\n\
         \x20                [--threads <N>] [--ops <N>] [--mode <M>] [--deadline-ms <N>]\n\
         \n\
         SPEC:    exchanger | elim-array | sync-queue | stack | failing-stack | register | counter\n\
         FILE:    history in the cal text format, or - for stdin\n\
         PROFILE: light | heavy | starvation\n\
         T:       exchanger | buggy-exchanger | treiber-stack | elim-stack | dual-stack | sync-queue\n\
         M:       deterministic | stress"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_name = None;
    let mut file = None;
    let mut object = None;
    let mut deadline = None;
    let mut chaos_profile = None;
    let mut seed = 0u64;
    let mut target = TargetKind::Exchanger;
    let mut threads = None;
    let mut ops = None;
    let mut mode = Mode::Deterministic;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--object" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => object = Some(ObjectId(n)),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => deadline = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--chaos" => match it.next().and_then(|p| Profile::parse(p)) {
                Some(p) => chaos_profile = Some(p),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| parse_seed(n)) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--target" => match it.next().and_then(|t| TargetKind::parse(t)) {
                Some(t) => target = t,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = Some(n),
                _ => return usage(),
            },
            "--ops" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => ops = Some(n),
                _ => return usage(),
            },
            "--mode" => match it.next().and_then(|m| Mode::parse(m)) {
                Some(m) => mode = m,
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            _ if spec_name.is_none() => spec_name = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }

    if let Some(profile) = chaos_profile {
        if spec_name.is_some() || file.is_some() {
            return usage();
        }
        let mut config = RunConfig { seed, target, profile, mode, ..RunConfig::default() };
        if let Some(t) = threads {
            config.threads = t;
        }
        if let Some(o) = ops {
            config.ops_per_thread = o;
        }
        if let Some(d) = deadline {
            config.deadline = Some(d);
        }
        return run_chaos(&config);
    }

    let (Some(spec_name), Some(file)) = (spec_name, file) else {
        return usage();
    };

    let input = match read_input(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cal-check: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let history = match parse_history(&input) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cal-check: parse error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = history.validate() {
        eprintln!("cal-check: ill-formed history: {e}");
        return ExitCode::from(2);
    }
    let object = object.or_else(|| history.objects().first().copied()).unwrap_or(ObjectId(0));
    let options = CheckOptions { deadline, ..CheckOptions::default() };

    let accepted = match spec_name.as_str() {
        "exchanger" => run_ca(&history, &ExchangerSpec::new(object), &options),
        "elim-array" => run_ca(&history, &ElimArraySpec::new(object), &options),
        "sync-queue" => run_ca(&history, &SyncQueueSpec::new(object), &options),
        "stack" => run_seq(&history, &StackSpec::total(object), &options),
        "failing-stack" => run_seq(&history, &StackSpec::failing(object), &options),
        "register" => run_seq(&history, &RegisterSpec::new(object), &options),
        "counter" => run_seq(&history, &CounterSpec::new(object), &options),
        other => {
            eprintln!("cal-check: unknown spec {other:?}");
            return usage();
        }
    };
    match accepted {
        Some(true) => ExitCode::SUCCESS,
        Some(false) => ExitCode::from(1),
        None => ExitCode::from(2),
    }
}

/// Accepts decimal or `0x`-prefixed hex seeds.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs one seeded chaos workload and reports the harvested history's
/// verdict.
fn run_chaos(config: &RunConfig) -> ExitCode {
    let outcome = run_once(config);
    println!(
        "chaos run: seed={:#x} target={} threads={} ops/thread={} profile={} mode={}",
        config.seed, config.target, config.threads, config.ops_per_thread, config.profile,
        config.mode,
    );
    println!("harvested history:");
    for line in outcome.history.to_string().lines() {
        println!("  {line}");
    }
    println!("verdict: {}", outcome.verdict);
    match outcome.verdict {
        ChaosVerdict::Passed(_) => ExitCode::SUCCESS,
        ChaosVerdict::Violation(_) => ExitCode::from(1),
        ChaosVerdict::Undecided(..) | ChaosVerdict::CheckerError(_) => ExitCode::from(2),
    }
}

fn read_input(file: &str) -> std::io::Result<String> {
    if file == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file)
    }
}

fn run_ca<S: CaSpec>(history: &History, spec: &S, options: &CheckOptions) -> Option<bool> {
    match check_cal_with(history, spec, options) {
        Ok(outcome) => report(outcome.verdict, "concurrency-aware linearizable"),
        Err(e) => {
            eprintln!("cal-check: {e}");
            None
        }
    }
}

fn run_seq<S: SeqSpec>(history: &History, spec: &S, options: &CheckOptions) -> Option<bool> {
    match seqlin::check_linearizable_with(history, spec, options) {
        Ok(outcome) => report(outcome.verdict, "linearizable"),
        Err(e) => {
            eprintln!("cal-check: {e}");
            None
        }
    }
}

fn report(verdict: Verdict, adjective: &str) -> Option<bool> {
    match verdict {
        Verdict::Cal(witness) => {
            println!("{adjective}: yes");
            print!("{}", format_trace(&witness));
            Some(true)
        }
        Verdict::NotCal => {
            println!("{adjective}: NO");
            Some(false)
        }
        Verdict::ResourcesExhausted => {
            eprintln!("cal-check: undecided — node budget exhausted");
            None
        }
        Verdict::Interrupted { reason } => {
            eprintln!("cal-check: undecided — interrupted ({reason})");
            None
        }
    }
}
