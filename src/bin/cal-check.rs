//! `cal-check` — check a recorded history (in the `cal_core::text` line
//! format) against one of the built-in specifications.
//!
//! ```text
//! Usage: cal-check <SPEC> <FILE> [--object <N>]
//!
//!   SPEC   exchanger | elim-array | sync-queue        (concurrency-aware)
//!          stack | failing-stack | register | counter (sequential)
//!   FILE   history file, or - for stdin
//!
//! Exit status: 0 = accepted, 1 = rejected, 2 = usage/input error.
//! ```
//!
//! Example:
//!
//! ```bash
//! printf 't1 inv o0.exchange 3\nt2 inv o0.exchange 4\nt1 res o0.exchange (true,4)\nt2 res o0.exchange (true,3)\n' \
//!   | cargo run --bin cal-check -- exchanger -
//! ```

use std::io::Read;
use std::process::ExitCode;

use cal::core::check::{check_cal, Verdict};
use cal::core::spec::{CaSpec, SeqSpec};
use cal::core::text::{format_trace, parse_history};
use cal::core::{seqlin, History, ObjectId};
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cal-check <SPEC> <FILE> [--object <N>]\n\
         \n\
         SPEC: exchanger | elim-array | sync-queue | stack | failing-stack | register | counter\n\
         FILE: history in the cal text format, or - for stdin"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_name = None;
    let mut file = None;
    let mut object = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--object" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => object = Some(ObjectId(n)),
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            _ if spec_name.is_none() => spec_name = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let (Some(spec_name), Some(file)) = (spec_name, file) else {
        return usage();
    };

    let input = match read_input(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cal-check: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let history = match parse_history(&input) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cal-check: parse error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = history.validate() {
        eprintln!("cal-check: ill-formed history: {e}");
        return ExitCode::from(2);
    }
    let object = object.or_else(|| history.objects().first().copied()).unwrap_or(ObjectId(0));

    let accepted = match spec_name.as_str() {
        "exchanger" => run_ca(&history, &ExchangerSpec::new(object)),
        "elim-array" => run_ca(&history, &ElimArraySpec::new(object)),
        "sync-queue" => run_ca(&history, &SyncQueueSpec::new(object)),
        "stack" => run_seq(&history, &StackSpec::total(object)),
        "failing-stack" => run_seq(&history, &StackSpec::failing(object)),
        "register" => run_seq(&history, &RegisterSpec::new(object)),
        "counter" => run_seq(&history, &CounterSpec::new(object)),
        other => {
            eprintln!("cal-check: unknown spec {other:?}");
            return usage();
        }
    };
    match accepted {
        Some(true) => ExitCode::SUCCESS,
        Some(false) => ExitCode::from(1),
        None => ExitCode::from(2),
    }
}

fn read_input(file: &str) -> std::io::Result<String> {
    if file == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file)
    }
}

fn run_ca<S: CaSpec>(history: &History, spec: &S) -> Option<bool> {
    match check_cal(history, spec) {
        Ok(outcome) => report(outcome.verdict, "concurrency-aware linearizable"),
        Err(e) => {
            eprintln!("cal-check: {e}");
            None
        }
    }
}

fn run_seq<S: SeqSpec>(history: &History, spec: &S) -> Option<bool> {
    match seqlin::check_linearizable(history, spec) {
        Ok(outcome) => report(outcome.verdict, "linearizable"),
        Err(e) => {
            eprintln!("cal-check: {e}");
            None
        }
    }
}

fn report(verdict: Verdict, adjective: &str) -> Option<bool> {
    match verdict {
        Verdict::Cal(witness) => {
            println!("{adjective}: yes");
            print!("{}", format_trace(&witness));
            Some(true)
        }
        Verdict::NotCal => {
            println!("{adjective}: NO");
            Some(false)
        }
        Verdict::ResourcesExhausted => {
            eprintln!("cal-check: undecided — node budget exhausted");
            None
        }
    }
}
