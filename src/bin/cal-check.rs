//! `cal-check` — check a recorded history against one of the built-in
//! specifications, or run a single seeded chaos workload against a live
//! object and check the harvested history. Histories may be native
//! (`cal_core::text`), porcupine/Jepsen-style records, or timestamped
//! Put/Get logs (`cal_core::format`); the format is sniffed per input
//! unless `--format` pins it.
//!
//! ```text
//! Usage: cal-check <SPEC> <FILE> [--spec <FILE.cal>] [--mode cal|seq|interval|causal]
//!                  [--hb auto|session|real-time] [--object <N>]
//!                  [--format auto|native|jepsen|kvlog]
//!                  [--deadline-ms <N>] [--max-nodes <N>] [--threads <N>]
//!                  [--stats] [--stats-json <PATH>] [--explain]
//!        cal-check <SPEC> --batch <DIR> [--spec <FILE.cal>]
//!                  [--mode cal|seq|interval|causal] [--hb auto|session|real-time]
//!                  [--object <N>] [--format auto|native|jepsen|kvlog]
//!                  [--deadline-ms <N>] [--max-nodes <N>] [--threads <N>]
//!        cal-check --chaos <PROFILE> [--seed <N>] [--target <T>]
//!                  [--threads <N>] [--check-threads <N>] [--ops <N>]
//!                  [--mode <M>] [--deadline-ms <N>]
//!
//!   SPEC     exchanger | elim-array | sync-queue | dual-stack (concurrency-aware)
//!            stack | failing-stack | register | counter | kv (sequential)
//!            write-snapshot                                  (interval)
//!   FILE     history file, or - for stdin
//!   DIR      directory of history files, checked concurrently
//!   PROFILE  light | heavy | starvation
//!   T        exchanger | buggy-exchanger | treiber-stack | elim-stack |
//!            dual-stack | sync-queue       (default exchanger)
//!   M        file/batch mode: cal | seq | interval | causal (default cal)
//!            chaos mode:      deterministic | stress        (default deterministic)
//!
//! `--format` selects the input trace format (default `auto`: sniff each
//! input, first contentful line wins). The `kv` spec — a map of
//! independent per-key integer registers — is the natural spec for
//! imported jepsen/kvlog traces and works in every `--mode`.
//!
//! `--spec <FILE.cal>` loads user-written specifications from a `.cal`
//! file (see `docs/SPEC_DSL.md`) at runtime; a compile failure prints the
//! diagnostic (code, message, line and column) and exits 3. Loaded spec
//! names *shadow* the built-ins, so a file may deliberately redefine
//! `register`. If the file defines exactly one spec, the positional SPEC
//! may be omitted; with several, name one. Mode gating is as for the
//! built-ins: `kind seq` specs check in every `--mode`, `kind ca` specs
//! only under `--mode cal`.
//!
//! `--mode` selects the checker, all of which run on the shared search
//! kernel: `cal` (concurrency-aware linearizability; sequential specs
//! are lifted to singleton elements), `seq` (classical linearizability;
//! sequential specs only), `interval` (interval-linearizability;
//! sequential specs become singleton-interval specs, plus the
//! interval-native `write-snapshot`), or `causal` (the CAL membership
//! search constrained by a happens-before *partial* order instead of the
//! real-time total order — the weak-memory reading of a trace).
//!
//! `--hb` picks causal mode's order source. `auto` (the default) uses
//! the trace's declared causality metadata — kvlog `hb session` / `hb
//! <i> <j>` lines — when present, and falls back to real time otherwise
//! (so unannotated traces behave exactly as in `--mode cal`). `session`
//! keeps only per-thread session order plus declared edges — the
//! Jepsen-`:process` reading of any input. `real-time` forces the total
//! order, making `causal` agree with `cal` on every input (the
//! differential anchor the test-suite pins).
//!
//! In file mode `--threads` sets the checker's worker threads (the
//! parallel driver engages above 1, in every mode); in batch mode it
//! sizes the pool of files checked concurrently; in chaos mode it sets
//! the *workload* threads and `--check-threads` the checker's.
//!
//! Observability (file mode, every `--mode`): `--stats` prints a one-line
//! search summary to stderr, `--stats-json <PATH>` writes the full
//! SearchReport as JSON (`-` for stdout), `--explain` prints a multi-line
//! account of where the search spent its work and why an undecided
//! verdict stopped.
//!
//! Exit status: 0 = accepted, 1 = rejected, 2 = undecided (budget,
//! deadline or cancellation), 3 = input/parse/checker error, 4 = usage.
//! Batch mode folds per-file results with the same codes (worst wins:
//! 3 > 2 > 1 > 0). Chaos mode: 0 = passed, 1 = violation, 2 = undecided,
//! 3 = checker error. A closed output pipe (e.g. `cal-check ... | head`)
//! is not an error: the process exits 0 as soon as the pipe breaks.
//! ```
//!
//! Example:
//!
//! ```bash
//! printf 't1 inv o0.exchange 3\nt2 inv o0.exchange 4\nt1 res o0.exchange (true,4)\nt2 res o0.exchange (true,3)\n' \
//!   | cargo run --bin cal-check -- exchanger - --deadline-ms 500 --stats
//! cargo run --bin cal-check -- register history.txt --mode seq --stats
//! cargo run --bin cal-check -- exchanger --batch tests/corpus --threads 4
//! cargo run --bin cal-check -- --chaos heavy --seed 7 --target elim-stack
//! ```

use std::io::{self, Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cal::chaos::driver::{run_once, ChaosVerdict, Mode, RunConfig, TargetKind};
use cal::chaos::Profile;
use cal::core::causal::{check_causal_par_with, check_causal_with};
use cal::core::check::{check_cal_with, CheckError, CheckOptions, CheckOutcome, Verdict};
use cal::core::dsl::{self, SpecDef};
use cal::core::history::HbRelation;
use cal::core::interval::{
    check_interval_par_with, check_interval_with, IntervalSpec, IntervalWitness, SeqAsInterval,
};
use cal::core::format::{self, Format};
use cal::core::obs::{CountingSink, SearchReport};
use cal::core::par::check_cal_par_with;
use cal::core::seqlin::{check_linearizable_par_with, check_linearizable_with};
use cal::core::spec::{CaSpec, SeqAsCa, SeqSpec};
use cal::core::text::format_trace;
use cal::core::trace::CaTrace;
use cal::core::{History, ObjectId};
use cal::specs::dual_stack::DualStackSpec;
use cal::specs::elim_array::ElimArraySpec;
use cal::specs::exchanger::ExchangerSpec;
use cal::specs::kv::KvMapSpec;
use cal::specs::register::{CounterSpec, RegisterSpec};
use cal::specs::snapshot::WriteSnapshotSpec;
use cal::specs::stack::StackSpec;
use cal::specs::sync_queue::SyncQueueSpec;

use cal::cli::{
    parse_seed, EXIT_ACCEPTED, EXIT_ERROR, EXIT_REJECTED, EXIT_UNDECIDED, EXIT_USAGE,
};

/// Broken-pipe-safe printing: all output goes through these macros, which
/// bubble `io::Error` up to [`main`] where `BrokenPipe` becomes a clean
/// exit 0 (so `cal-check ... | head` never panics).
macro_rules! outln {
    ($($t:tt)*) => { writeln!(io::stdout(), $($t)*) }
}
macro_rules! out {
    ($($t:tt)*) => { write!(io::stdout(), $($t)*) }
}
macro_rules! errln {
    ($($t:tt)*) => { writeln!(io::stderr(), $($t)*) }
}

fn usage() -> io::Result<ExitCode> {
    errln!(
        "usage: cal-check <SPEC> <FILE> [--spec <FILE.cal>] [--mode cal|seq|interval|causal]\n\
         \x20                [--hb auto|session|real-time] [--object <N>]\n\
         \x20                [--format auto|native|jepsen|kvlog]\n\
         \x20                [--deadline-ms <N>] [--max-nodes <N>] [--threads <N>]\n\
         \x20                [--no-symmetry] [--stats] [--stats-json <PATH>] [--explain]\n\
         \x20      cal-check <SPEC> --batch <DIR> [--spec <FILE.cal>]\n\
         \x20                [--mode cal|seq|interval|causal] [--hb auto|session|real-time]\n\
         \x20                [--object <N>] [--format auto|native|jepsen|kvlog]\n\
         \x20                [--deadline-ms <N>] [--max-nodes <N>] [--threads <N>]\n\
         \x20      cal-check --chaos <PROFILE> [--seed <N>] [--target <T>]\n\
         \x20                [--threads <N>] [--check-threads <N>] [--ops <N>] [--mode <M>]\n\
         \x20                [--deadline-ms <N>]\n\
         \n\
         SPEC:    exchanger | elim-array | sync-queue | dual-stack | stack | failing-stack |\n\
         \x20        register | counter | kv | write-snapshot\n\
         FILE:    history file (native, jepsen, or kvlog format), or - for stdin\n\
         DIR:     directory of history files, checked concurrently\n\
         PROFILE: light | heavy | starvation\n\
         T:       exchanger | buggy-exchanger | treiber-stack | elim-stack | dual-stack | sync-queue\n\
         M:       cal | seq | interval | causal (file/batch; default cal)\n\
         \x20        — deterministic | stress (chaos)\n\
         \n\
         --spec         load user specs from a .cal file (docs/SPEC_DSL.md); loaded\n\
         \x20              names shadow built-ins, and with a single-spec file the\n\
         \x20              positional SPEC may be omitted\n\
         --hb           causal-mode order source (default auto): auto uses declared kvlog\n\
         \x20              `hb` metadata when present and real time otherwise; session\n\
         \x20              keeps only per-thread session order plus declared edges;\n\
         \x20              real-time forces the total order (causal ≡ cal)\n\
         --format       input trace format; auto (default) sniffs each input\n\
         --max-nodes    search node budget; exhausting it is verdict `undecided` (exit 2)\n\
         --no-symmetry  disable symmetry reduction over interchangeable ops (file mode)\n\
         --stats        print a one-line search summary to stderr (file mode)\n\
         --stats-json   write the SearchReport as JSON to PATH, or - for stdout (file mode)\n\
         --explain      print why the verdict was slow or undecided (file mode)\n\
         \n\
         exit status: 0 accepted, 1 rejected, 2 undecided, 3 input/checker error, 4 usage"
    )?;
    Ok(ExitCode::from(EXIT_USAGE))
}

/// Which checker a file/batch invocation runs. All four are thin domains
/// over the same `cal_core::engine` search kernel; `causal` is the CAL
/// domain with the order relation swapped to happens-before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckerMode {
    Cal,
    Seq,
    Interval,
    Causal,
}

/// How `--mode causal` derives the happens-before order from the input
/// (`--hb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum HbPolicy {
    /// Annotated traces (kvlog `hb` lines) use their declared edges over
    /// session order; unannotated traces fall back to the real-time
    /// order, on which causal mode agrees with CAL mode by construction.
    #[default]
    Auto,
    /// Session order only (plus any declared edges): the weak-memory
    /// reading of any trace — for Jepsen inputs this is the `:process`
    /// session-edge interpretation.
    Session,
    /// The real-time total order `≺H`; causal mode then agrees with CAL
    /// mode on every input (the differential anchor).
    RealTime,
}

impl HbPolicy {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(HbPolicy::Auto),
            "session" => Some(HbPolicy::Session),
            "real-time" => Some(HbPolicy::RealTime),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    match try_main() {
        Ok(code) => code,
        // A reader (head, a closed pager, …) hung up: that is a normal way
        // for output to end, not an error.
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => ExitCode::from(EXIT_ACCEPTED),
        Err(e) => {
            let _ = writeln!(io::stderr(), "cal-check: io error: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn try_main() -> io::Result<ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_name = None;
    let mut spec_file: Option<String> = None;
    let mut file = None;
    let mut batch = None;
    let mut object = None;
    let mut deadline = None;
    let mut chaos_profile = None;
    let mut seed = 0u64;
    let mut target = TargetKind::Exchanger;
    let mut threads = None;
    let mut check_threads = None;
    let mut ops = None;
    let mut chaos_mode: Option<Mode> = None;
    let mut checker_mode: Option<CheckerMode> = None;
    let mut hb_policy: Option<HbPolicy> = None;
    let mut trace_format: Option<Format> = None;
    let mut max_nodes: Option<u64> = None;
    let mut no_symmetry = false;
    let mut stats = false;
    let mut stats_json: Option<String> = None;
    let mut explain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--object" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) => object = Some(ObjectId(n)),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => deadline = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--chaos" => match it.next().and_then(|p| Profile::parse(p)) {
                Some(p) => chaos_profile = Some(p),
                None => return usage(),
            },
            "--batch" => match it.next() {
                Some(d) => batch = Some(d.clone()),
                None => return usage(),
            },
            "--spec" => match it.next() {
                Some(p) => spec_file = Some(p.clone()),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| parse_seed(n)) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--target" => match it.next().and_then(|t| TargetKind::parse(t)) {
                Some(t) => target = t,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = Some(n),
                _ => return usage(),
            },
            "--check-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => check_threads = Some(n),
                _ => return usage(),
            },
            "--ops" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => ops = Some(n),
                _ => return usage(),
            },
            // `--mode` is overloaded: checker selection in file/batch mode,
            // schedule selection in chaos mode. The value disambiguates.
            "--mode" => match it.next().map(String::as_str) {
                Some("cal") => checker_mode = Some(CheckerMode::Cal),
                Some("seq") => checker_mode = Some(CheckerMode::Seq),
                Some("interval") => checker_mode = Some(CheckerMode::Interval),
                Some("causal") => checker_mode = Some(CheckerMode::Causal),
                Some(m) => match Mode::parse(m) {
                    Some(m) => chaos_mode = Some(m),
                    None => return usage(),
                },
                None => return usage(),
            },
            "--hb" => match it.next().and_then(|p| HbPolicy::parse(p)) {
                Some(p) => hb_policy = Some(p),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("auto") => trace_format = None,
                Some(f) => match f.parse::<Format>() {
                    Ok(f) => trace_format = Some(f),
                    Err(e) => {
                        let _ = errln!("cal-check: {e}");
                        return usage();
                    }
                },
                None => return usage(),
            },
            "--max-nodes" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => max_nodes = Some(n),
                _ => return usage(),
            },
            "--no-symmetry" => no_symmetry = true,
            "--stats" => stats = true,
            "--stats-json" => match it.next() {
                Some(p) => stats_json = Some(p.clone()),
                None => return usage(),
            },
            "--explain" => explain = true,
            "-h" | "--help" => return usage(),
            _ if spec_name.is_none() => spec_name = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }

    if let Some(profile) = chaos_profile {
        if spec_name.is_some()
            || spec_file.is_some()
            || file.is_some()
            || batch.is_some()
            || checker_mode.is_some()
        {
            return usage();
        }
        if stats
            || explain
            || stats_json.is_some()
            || trace_format.is_some()
            || max_nodes.is_some()
            || no_symmetry
            || hb_policy.is_some()
        {
            return usage(); // stats/format/budget/search flags are file-mode only
        }
        let mode = chaos_mode.unwrap_or(Mode::Deterministic);
        let mut config = RunConfig { seed, target, profile, mode, ..RunConfig::default() };
        if let Some(t) = threads {
            config.threads = t;
        }
        if let Some(t) = check_threads {
            config.check_threads = t;
        }
        if let Some(o) = ops {
            config.ops_per_thread = o;
        }
        if let Some(d) = deadline {
            config.deadline = Some(d);
        }
        return run_chaos(&config);
    }
    if chaos_mode.is_some() {
        return usage(); // deterministic|stress make sense only with --chaos
    }
    let mode = checker_mode.unwrap_or(CheckerMode::Cal);
    if hb_policy.is_some() && mode != CheckerMode::Causal {
        return usage(); // --hb chooses the order source for --mode causal only
    }
    let hb_policy = hb_policy.unwrap_or_default();

    // Loading happens before any history is read, so a bad .cal file
    // fails fast (exit 3) even when the input would come from stdin.
    let loaded: Option<dsl::SpecFile> = match &spec_file {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    errln!("cal-check: cannot read {path}: {e}")?;
                    return Ok(ExitCode::from(EXIT_ERROR));
                }
            };
            match dsl::parse_str(&src) {
                Ok(f) => Some(f),
                Err(diag) => {
                    errln!("cal-check: {path}: {diag}")?;
                    return Ok(ExitCode::from(EXIT_ERROR));
                }
            }
        }
        None => None,
    };
    // With --spec, a single positional that names no loaded spec is the
    // input file — `cal-check --spec one.cal trace.hist` just works.
    if let Some(sf) = &loaded {
        if file.is_none() {
            if let Some(name) = &spec_name {
                if sf.get(name).is_none() {
                    file = spec_name.take();
                }
            }
        }
    }

    let selected = match (&loaded, &spec_name) {
        (Some(sf), Some(name)) => match sf.get(name) {
            Some(def) => Selected::Loaded(Arc::clone(def)),
            None if known_spec(name) => Selected::Builtin(name.clone()),
            None => {
                errln!("cal-check: unknown spec {name:?} (not in {} either)", spec_file.unwrap())?;
                return usage();
            }
        },
        (Some(sf), None) => match sf.specs() {
            [only] => Selected::Loaded(Arc::clone(only)),
            many => {
                errln!(
                    "cal-check: {} defines {} specs ({}); name one as the SPEC argument",
                    spec_file.unwrap(),
                    many.len(),
                    sf.names().join(", ")
                )?;
                return usage();
            }
        },
        (None, Some(name)) => {
            if !known_spec(name) {
                errln!("cal-check: unknown spec {name:?}")?;
                return usage();
            }
            Selected::Builtin(name.clone())
        }
        (None, None) => return usage(),
    };
    if !selected.supports(mode) {
        errln!("cal-check: spec {:?} is not checkable in this --mode", selected.name())?;
        return usage();
    }

    if let Some(dir) = batch {
        if file.is_some() || stats || explain || stats_json.is_some() || no_symmetry {
            return usage();
        }
        return run_batch(
            &selected,
            mode,
            hb_policy,
            trace_format,
            &dir,
            object,
            deadline,
            max_nodes,
            threads.unwrap_or(1),
        );
    }

    let Some(file) = file else {
        return usage();
    };
    let input = match read_input(&file) {
        Ok(s) => s,
        Err(e) => {
            errln!("cal-check: cannot read {file}: {e}")?;
            return Ok(ExitCode::from(EXIT_ERROR));
        }
    };
    let mut options =
        CheckOptions { deadline, threads: threads.unwrap_or(1), ..CheckOptions::default() };
    if let Some(n) = max_nodes {
        options.max_nodes = n;
    }
    if no_symmetry {
        options.symmetry = false;
    }
    let want_report = stats || explain || stats_json.is_some();
    let (checked, report) =
        check_input(&selected, mode, hb_policy, trace_format, &input, object, &options, want_report);
    if let Some(report) = &report {
        if stats {
            errln!("stats: {}", report.summary())?;
        }
        if explain {
            errln!("{}", report.explain())?;
        }
        if let Some(path) = &stats_json {
            let json = report.to_json();
            if path == "-" {
                outln!("{json}")?;
            } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                errln!("cal-check: cannot write {path}: {e}")?;
                return Ok(ExitCode::from(EXIT_ERROR));
            }
        }
    }
    match checked {
        Checked::Accepted { adjective, witness } => {
            outln!("{adjective}: yes")?;
            out!("{witness}")?;
            io::stdout().flush()?;
            Ok(ExitCode::from(EXIT_ACCEPTED))
        }
        Checked::Rejected { adjective } => {
            outln!("{adjective}: NO")?;
            Ok(ExitCode::from(EXIT_REJECTED))
        }
        Checked::Undecided(why) => {
            errln!("cal-check: undecided — {why}")?;
            Ok(ExitCode::from(EXIT_UNDECIDED))
        }
        Checked::Error(e) => {
            errln!("cal-check: {e}")?;
            Ok(ExitCode::from(EXIT_ERROR))
        }
    }
}

/// Runs one seeded chaos workload and reports the harvested history's
/// verdict.
fn run_chaos(config: &RunConfig) -> io::Result<ExitCode> {
    let outcome = run_once(config);
    outln!(
        "chaos run: seed={:#x} target={} threads={} ops/thread={} profile={} mode={} check-threads={}",
        config.seed, config.target, config.threads, config.ops_per_thread, config.profile,
        config.mode, config.check_threads,
    )?;
    outln!("harvested history:")?;
    for line in outcome.history.to_string().lines() {
        outln!("  {line}")?;
    }
    outln!("verdict: {}", outcome.verdict)?;
    Ok(match outcome.verdict {
        ChaosVerdict::Passed(_) => ExitCode::from(EXIT_ACCEPTED),
        ChaosVerdict::Violation(_) => ExitCode::from(EXIT_REJECTED),
        ChaosVerdict::Undecided(..) => ExitCode::from(EXIT_UNDECIDED),
        ChaosVerdict::CheckerError(_) => ExitCode::from(EXIT_ERROR),
    })
}

fn read_input(file: &str) -> io::Result<String> {
    if file == "-" {
        let mut buf = String::new();
        io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file)
    }
}

/// One history's check result, renderable in single-file or batch mode.
enum Checked {
    Accepted { adjective: &'static str, witness: String },
    Rejected { adjective: &'static str },
    Undecided(String),
    Error(String),
}

/// The specification a file/batch invocation checks against: a built-in
/// (by name) or a spec compiled from a `--spec` file. Loaded specs shadow
/// built-ins on name collision.
#[derive(Clone)]
enum Selected {
    Builtin(String),
    Loaded(Arc<SpecDef>),
}

impl Selected {
    fn name(&self) -> &str {
        match self {
            Selected::Builtin(name) => name,
            Selected::Loaded(def) => def.name(),
        }
    }

    /// Mode gating, uniform with the built-ins: sequential specs check
    /// everywhere, concurrency-aware specs only under `--mode cal` or
    /// `--mode causal` (the same membership search, weaker order).
    fn supports(&self, mode: CheckerMode) -> bool {
        match self {
            Selected::Builtin(name) => spec_supports(name, mode),
            Selected::Loaded(def) => {
                def.is_sequential()
                    || matches!(mode, CheckerMode::Cal | CheckerMode::Causal)
            }
        }
    }
}

fn known_spec(name: &str) -> bool {
    matches!(
        name,
        "exchanger"
            | "elim-array"
            | "sync-queue"
            | "dual-stack"
            | "stack"
            | "failing-stack"
            | "register"
            | "counter"
            | "kv"
            | "write-snapshot"
    )
}

/// Which `--mode`s can check which spec: concurrency-aware specs are
/// CAL-only, sequential specs work in every mode (lifted to singleton
/// elements / singleton intervals), `write-snapshot` is interval-native.
fn spec_supports(name: &str, mode: CheckerMode) -> bool {
    match name {
        "exchanger" | "elim-array" | "sync-queue" | "dual-stack" => {
            matches!(mode, CheckerMode::Cal | CheckerMode::Causal)
        }
        "stack" | "failing-stack" | "register" | "counter" | "kv" => true,
        "write-snapshot" => mode == CheckerMode::Interval,
        _ => false,
    }
}

/// Parses `input` (in the explicit format, or sniffed) and checks it
/// against the named specification with the selected checker. With
/// `want_report` a [`CountingSink`] rides along and the checker's
/// [`SearchReport`] is returned next to the result (absent when parsing or
/// the checker itself failed).
///
/// Parse and validation errors are line-anchored: `cal_core::format`
/// tracks the source line of every action, so even well-formedness
/// failures (nested invocation, mismatched response) name the offending
/// input line.
#[allow(clippy::too_many_arguments)]
fn check_input(
    selected: &Selected,
    mode: CheckerMode,
    hb_policy: HbPolicy,
    trace_format: Option<Format>,
    input: &str,
    object: Option<ObjectId>,
    options: &CheckOptions,
    want_report: bool,
) -> (Checked, Option<SearchReport>) {
    let fmt = trace_format.unwrap_or_else(|| format::detect(input));
    // Causal mode parses with annotations so kvlog `hb` metadata reaches
    // the order; the other modes ignore causality metadata by design.
    let (history, hb_edges) = if mode == CheckerMode::Causal {
        match format::parse_annotated(fmt, input) {
            Ok(a) => (a.history, a.hb_edges),
            Err(e) => return (Checked::Error(format!("parse error ({fmt}): {e}")), None),
        }
    } else {
        match format::parse_as(fmt, input) {
            Ok(h) => (h, None),
            Err(e) => return (Checked::Error(format!("parse error ({fmt}): {e}")), None),
        }
    };
    let object = object.or_else(|| history.objects().first().copied()).unwrap_or(ObjectId(0));
    let sink = want_report.then(|| Arc::new(CountingSink::new()));
    let options = CheckOptions {
        sink: sink.clone().map(|s| s as Arc<dyn cal::core::obs::StatsSink>),
        ..options.clone()
    };
    let start = Instant::now();
    const CA: &str = "concurrency-aware linearizable";
    const LIN: &str = "linearizable";
    const INT: &str = "interval-linearizable";
    const CCA: &str = "causally concurrency-aware linearizable";
    const CLIN: &str = "causally linearizable";
    match mode {
        CheckerMode::Cal => {
            if let Selected::Loaded(def) = selected {
                // A seq-kind spec lifted to singleton elements is checked
                // for classical linearizability, same as SeqAsCa built-ins.
                let adjective = if def.is_sequential() { LIN } else { CA };
                let result = run_ca(&history, &def.to_ca(object), &options);
                return render(result, adjective, format_trace, &sink, &options, start);
            }
            let Selected::Builtin(spec_name) = selected else { unreachable!() };
            let (result, adjective) = match spec_name.as_str() {
                "exchanger" => (run_ca(&history, &ExchangerSpec::new(object), &options), CA),
                "elim-array" => (run_ca(&history, &ElimArraySpec::new(object), &options), CA),
                "sync-queue" => (run_ca(&history, &SyncQueueSpec::new(object), &options), CA),
                "dual-stack" => {
                    (run_ca(&history, &DualStackSpec::with_timeouts(object), &options), CA)
                }
                "stack" => {
                    (run_ca(&history, &SeqAsCa::new(StackSpec::total(object)), &options), LIN)
                }
                "failing-stack" => {
                    (run_ca(&history, &SeqAsCa::new(StackSpec::failing(object)), &options), LIN)
                }
                "register" => {
                    (run_ca(&history, &SeqAsCa::new(RegisterSpec::new(object)), &options), LIN)
                }
                "counter" => {
                    (run_ca(&history, &SeqAsCa::new(CounterSpec::new(object)), &options), LIN)
                }
                "kv" => (run_ca(&history, &SeqAsCa::new(KvMapSpec::new()), &options), LIN),
                other => return (Checked::Error(format!("unknown spec {other:?}")), None),
            };
            render(result, adjective, format_trace, &sink, &options, start)
        }
        CheckerMode::Seq => {
            if let Selected::Loaded(def) = selected {
                let result = match def.to_seq(object) {
                    Some(spec) => run_seq(&history, &spec, &options),
                    None => {
                        return (
                            Checked::Error(format!("spec {:?} is not sequential", def.name())),
                            None,
                        )
                    }
                };
                return render(result, LIN, format_trace, &sink, &options, start);
            }
            let Selected::Builtin(spec_name) = selected else { unreachable!() };
            let result = match spec_name.as_str() {
                "stack" => run_seq(&history, &StackSpec::total(object), &options),
                "failing-stack" => run_seq(&history, &StackSpec::failing(object), &options),
                "register" => run_seq(&history, &RegisterSpec::new(object), &options),
                "counter" => run_seq(&history, &CounterSpec::new(object), &options),
                "kv" => run_seq(&history, &KvMapSpec::new(), &options),
                other => {
                    return (Checked::Error(format!("spec {other:?} is not sequential")), None)
                }
            };
            render(result, LIN, format_trace, &sink, &options, start)
        }
        CheckerMode::Interval => {
            if let Selected::Loaded(def) = selected {
                let result = match def.to_seq(object) {
                    Some(spec) => run_interval(&history, &SeqAsInterval::new(spec), &options),
                    None => {
                        return (
                            Checked::Error(format!(
                                "spec {:?} has no interval reading",
                                def.name()
                            )),
                            None,
                        )
                    }
                };
                return render(result, INT, format_interval_witness, &sink, &options, start);
            }
            let Selected::Builtin(spec_name) = selected else { unreachable!() };
            let result = match spec_name.as_str() {
                "write-snapshot" => {
                    run_interval(&history, &WriteSnapshotSpec::new(object, 4), &options)
                }
                "stack" => {
                    run_interval(&history, &SeqAsInterval::new(StackSpec::total(object)), &options)
                }
                "failing-stack" => run_interval(
                    &history,
                    &SeqAsInterval::new(StackSpec::failing(object)),
                    &options,
                ),
                "register" => run_interval(
                    &history,
                    &SeqAsInterval::new(RegisterSpec::new(object)),
                    &options,
                ),
                "counter" => {
                    run_interval(&history, &SeqAsInterval::new(CounterSpec::new(object)), &options)
                }
                "kv" => run_interval(&history, &SeqAsInterval::new(KvMapSpec::new()), &options),
                other => {
                    return (
                        Checked::Error(format!("spec {other:?} has no interval reading")),
                        None,
                    )
                }
            };
            render(result, INT, format_interval_witness, &sink, &options, start)
        }
        CheckerMode::Causal => {
            let spans = match history.try_spans() {
                Ok(s) => s,
                Err(e) => return (Checked::Error(format!("ill-formed history: {e}")), None),
            };
            let hb = match hb_policy {
                HbPolicy::RealTime => Ok(HbRelation::real_time(&spans)),
                HbPolicy::Session => {
                    HbRelation::causal(&spans, hb_edges.as_deref().unwrap_or(&[]))
                }
                HbPolicy::Auto => match &hb_edges {
                    Some(edges) => HbRelation::causal(&spans, edges),
                    None => Ok(HbRelation::real_time(&spans)),
                },
            };
            let hb = match hb {
                Ok(hb) => hb,
                Err(e) => return (Checked::Error(format!("happens-before: {e}")), None),
            };
            if let Selected::Loaded(def) = selected {
                let adjective = if def.is_sequential() { CLIN } else { CCA };
                let result = run_causal(&history, &def.to_ca(object), &hb, &options);
                return render(result, adjective, format_trace, &sink, &options, start);
            }
            let Selected::Builtin(spec_name) = selected else { unreachable!() };
            let (result, adjective) = match spec_name.as_str() {
                "exchanger" => {
                    (run_causal(&history, &ExchangerSpec::new(object), &hb, &options), CCA)
                }
                "elim-array" => {
                    (run_causal(&history, &ElimArraySpec::new(object), &hb, &options), CCA)
                }
                "sync-queue" => {
                    (run_causal(&history, &SyncQueueSpec::new(object), &hb, &options), CCA)
                }
                "dual-stack" => (
                    run_causal(&history, &DualStackSpec::with_timeouts(object), &hb, &options),
                    CCA,
                ),
                "stack" => (
                    run_causal(&history, &SeqAsCa::new(StackSpec::total(object)), &hb, &options),
                    CLIN,
                ),
                "failing-stack" => (
                    run_causal(&history, &SeqAsCa::new(StackSpec::failing(object)), &hb, &options),
                    CLIN,
                ),
                "register" => (
                    run_causal(&history, &SeqAsCa::new(RegisterSpec::new(object)), &hb, &options),
                    CLIN,
                ),
                "counter" => (
                    run_causal(&history, &SeqAsCa::new(CounterSpec::new(object)), &hb, &options),
                    CLIN,
                ),
                "kv" => {
                    (run_causal(&history, &SeqAsCa::new(KvMapSpec::new()), &hb, &options), CLIN)
                }
                other => return (Checked::Error(format!("unknown spec {other:?}")), None),
            };
            render(result, adjective, format_trace, &sink, &options, start)
        }
    }
}

/// Folds a checker outcome (any witness type) into a renderable
/// [`Checked`] plus, if a sink rode along, its [`SearchReport`].
fn render<W>(
    result: Result<CheckOutcome<W>, CheckError>,
    adjective: &'static str,
    format_witness: impl Fn(&W) -> String,
    sink: &Option<Arc<CountingSink>>,
    options: &CheckOptions,
    start: Instant,
) -> (Checked, Option<SearchReport>) {
    let report = match (sink, &result) {
        (Some(sink), Ok(outcome)) => Some(sink.report(outcome, options, start.elapsed())),
        _ => None,
    };
    let checked = match result {
        Ok(outcome) => match outcome.verdict {
            Verdict::Cal(witness) => {
                Checked::Accepted { adjective, witness: format_witness(&witness) }
            }
            Verdict::NotCal => Checked::Rejected { adjective },
            Verdict::ResourcesExhausted => Checked::Undecided("node budget exhausted".to_string()),
            Verdict::Interrupted { reason } => Checked::Undecided(format!("interrupted ({reason})")),
        },
        Err(e) => Checked::Error(e.to_string()),
    };
    (checked, report)
}

/// One witness point per line, matching the trace format's line-oriented
/// style.
fn format_interval_witness(witness: &IntervalWitness) -> String {
    witness.points().iter().map(|p| format!("{p}\n")).collect()
}

/// Dispatches to the sequential or parallel CAL checker per
/// [`CheckOptions::threads`].
fn run_ca<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    if options.threads > 1 {
        check_cal_par_with(history, spec, options)
    } else {
        check_cal_with(history, spec, options)
    }
}

/// Like [`run_ca`] for the causal checker: the same membership search
/// constrained by a happens-before order instead of `≺H`.
fn run_causal<S>(
    history: &History,
    spec: &S,
    hb: &HbRelation,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: CaSpec + Sync,
    S::State: Send + Sync,
{
    if options.threads > 1 {
        check_causal_par_with(history, spec, hb, options)
    } else {
        check_causal_with(history, spec, hb, options)
    }
}

/// Like [`run_ca`] for the classical linearizability checker.
fn run_seq<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome<CaTrace>, CheckError>
where
    S: SeqSpec + Sync,
    S::State: Send + Sync,
{
    if options.threads > 1 {
        check_linearizable_par_with(history, spec, options)
    } else {
        check_linearizable_with(history, spec, options)
    }
}

/// Like [`run_ca`] for the interval-linearizability checker.
fn run_interval<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome<IntervalWitness>, CheckError>
where
    S: IntervalSpec + Sync,
    S::State: Send + Sync,
{
    if options.threads > 1 {
        check_interval_par_with(history, spec, options)
    } else {
        check_interval_with(history, spec, options)
    }
}

/// Checks every regular file under `dir` against the named specification,
/// spreading files across `threads` workers (each file is checked with a
/// single-threaded search — the parallelism is across files). With
/// `--format auto` each file is sniffed independently, so one directory
/// may mix native, jepsen, and kvlog traces.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    selected: &Selected,
    mode: CheckerMode,
    hb_policy: HbPolicy,
    trace_format: Option<Format>,
    dir: &str,
    object: Option<ObjectId>,
    deadline: Option<Duration>,
    max_nodes: Option<u64>,
    threads: usize,
) -> io::Result<ExitCode> {
    let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect(),
        Err(e) => {
            errln!("cal-check: cannot read directory {dir}: {e}")?;
            return Ok(ExitCode::from(EXIT_ERROR));
        }
    };
    files.sort();
    if files.is_empty() {
        errln!("cal-check: no files in {dir}")?;
        return Ok(ExitCode::from(EXIT_ERROR));
    }
    let mut options = CheckOptions { deadline, threads: 1, ..CheckOptions::default() };
    if let Some(n) = max_nodes {
        options.max_nodes = n;
    }
    let results: Mutex<Vec<Option<Checked>>> = Mutex::new((0..files.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.max(1).min(files.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(path) = files.get(idx) else { break };
                let checked = match std::fs::read_to_string(path) {
                    Ok(input) => {
                        check_input(
                            selected,
                            mode,
                            hb_policy,
                            trace_format,
                            &input,
                            object,
                            &options,
                            false,
                        )
                        .0
                    }
                    Err(e) => Checked::Error(format!("cannot read: {e}")),
                };
                results.lock().unwrap()[idx] = Some(checked);
            });
        }
    });
    let mut rejected = 0usize;
    let mut undecided = 0usize;
    let mut errors = 0usize;
    let mut first_error: Option<String> = None;
    let results = results.into_inner().unwrap();
    for (path, checked) in files.iter().zip(results) {
        let name = path.display();
        match checked.expect("every file was checked") {
            Checked::Accepted { adjective, .. } => outln!("{name}: {adjective}: yes")?,
            Checked::Rejected { adjective } => {
                outln!("{name}: {adjective}: NO")?;
                rejected += 1;
            }
            Checked::Undecided(why) => {
                outln!("{name}: undecided — {why}")?;
                undecided += 1;
            }
            Checked::Error(e) => {
                outln!("{name}: error — {e}")?;
                if first_error.is_none() {
                    first_error = Some(format!("{name}: {e}"));
                }
                errors += 1;
            }
        }
    }
    outln!(
        "batch: {} files, {} rejected, {} undecided, {} error(s)",
        files.len(),
        rejected,
        undecided,
        errors
    )?;
    if let Some(diag) = first_error {
        // The full line/field-anchored diagnostic of the first failing
        // input, repeated after the fold so it survives long batch output.
        outln!("batch: first error: {diag}")?;
    }
    Ok(if errors > 0 {
        ExitCode::from(EXIT_ERROR)
    } else if undecided > 0 {
        ExitCode::from(EXIT_UNDECIDED)
    } else if rejected > 0 {
        ExitCode::from(EXIT_REJECTED)
    } else {
        ExitCode::from(EXIT_ACCEPTED)
    })
}
