//! Shared plumbing for the `cal-*` command-line binaries: the audited
//! exit-code contract, seed parsing, and a minimal signal flag for clean
//! SIGINT/SIGTERM shutdown.
//!
//! Lives in the umbrella crate (not `cal-core`) because it is CLI policy,
//! not formalism: the library reports rich outcomes, the binaries fold
//! them into this one process-level contract.

use std::sync::atomic::{AtomicBool, Ordering};

/// Exit codes, one per distinguishable outcome, shared by `cal-check`,
/// `cal-serve` and `chaos-soak`. Asserted by `tests/cli_exit_codes.rs`
/// and `tests/stream_serve.rs`, documented in the README.
///
/// The verdict was "accepted"/"consistent" (or the run completed clean).
pub const EXIT_ACCEPTED: u8 = 0;
/// The verdict was "rejected"/"violation".
pub const EXIT_REJECTED: u8 = 1;
/// Undecided: budget, deadline, cancellation or window exceeded.
pub const EXIT_UNDECIDED: u8 = 2;
/// Input, parse or checker error (including an exceeded error budget).
pub const EXIT_ERROR: u8 = 3;
/// Command-line usage error.
pub const EXIT_USAGE: u8 = 4;

/// Accepts decimal or `0x`-prefixed hex seeds.
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT/SIGTERM handler that sets a process-wide flag
/// instead of killing the process, so long-running binaries (`cal-serve`,
/// `chaos-soak`) can flush their reports and exit under the exit-code
/// contract. Idempotent; a no-op on non-Unix targets (where the flag
/// simply never fires).
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    {
        // Hand-rolled libc binding: the build environment is offline, so
        // no `libc` crate — `signal(2)` is in every libc we target.
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Whether a shutdown signal has been received since
/// [`install_shutdown_handler`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test/embedding hook: raises the shutdown flag as if a signal arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xCA11"), Some(0xCA11));
        assert_eq!(parse_seed("0XCA11"), Some(0xCA11));
        assert_eq!(parse_seed("zebra"), None);
    }

    #[test]
    fn shutdown_flag_round_trips() {
        request_shutdown();
        assert!(shutdown_requested());
    }
}
