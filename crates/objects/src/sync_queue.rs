//! A synchronous queue built on the exchanger — the extended paper's
//! second client (§2). A `put` and a `take` transfer a value only by
//! rendezvousing; unpaired operations time out.

use cal_specs::vocab::TAKE_SENTINEL;

use crate::exchanger::Exchanger;

/// An exchanger-based synchronous queue.
///
/// # Examples
///
/// ```
/// use cal_objects::sync_queue::SyncQueue;
/// let q = SyncQueue::new(16);
/// // No consumer: the put times out.
/// assert!(!q.try_put(5, 2));
/// ```
#[derive(Debug, Default)]
pub struct SyncQueue {
    exchanger: Exchanger,
    spin_budget: usize,
}

impl SyncQueue {
    /// Creates a queue whose rendezvous attempts spin `spin_budget` times.
    pub fn new(spin_budget: usize) -> Self {
        SyncQueue { exchanger: Exchanger::new(), spin_budget }
    }

    /// Attempts to hand `v` to a concurrent taker, retrying up to
    /// `attempts` exchanges. Returns `true` on transfer.
    ///
    /// # Panics
    ///
    /// Panics if `v` equals the take sentinel.
    pub fn try_put(&self, v: i64, attempts: usize) -> bool {
        assert!(v != TAKE_SENTINEL, "cannot put the take sentinel");
        for _ in 0..attempts {
            let (ok, got) = self.exchanger.exchange(v, self.spin_budget);
            if ok && got == TAKE_SENTINEL {
                return true;
            }
        }
        false
    }

    /// Attempts to receive a value from a concurrent putter, retrying up
    /// to `attempts` exchanges.
    pub fn try_take(&self, attempts: usize) -> Option<i64> {
        for _ in 0..attempts {
            let (ok, got) = self.exchanger.exchange(TAKE_SENTINEL, self.spin_budget);
            if ok && got != TAKE_SENTINEL {
                return Some(got);
            }
        }
        None
    }

    /// Blocking put: retries until the transfer happens.
    pub fn put(&self, v: i64) {
        while !self.try_put(v, 1) {
            std::thread::yield_now();
        }
    }

    /// Blocking take: retries until a value arrives.
    pub fn take(&self) -> i64 {
        loop {
            if let Some(v) = self.try_take(1) {
                return v;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lone_operations_time_out() {
        let q = SyncQueue::new(2);
        assert!(!q.try_put(5, 3));
        assert_eq!(q.try_take(3), None);
    }

    #[test]
    #[should_panic(expected = "take sentinel")]
    fn sentinel_put_rejected() {
        SyncQueue::new(1).try_put(TAKE_SENTINEL, 1);
    }

    #[test]
    fn producer_consumer_transfer_all_values() {
        let q = Arc::new(SyncQueue::new(128));
        const N: i64 = 2_000;
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..N {
                        q.put(i);
                    }
                });
            }
            {
                let q = Arc::clone(&q);
                let got = Arc::clone(&got);
                s.spawn(move || {
                    for _ in 0..N {
                        got.lock().push(q.take());
                    }
                });
            }
        });
        let got = got.lock();
        let unique: HashSet<i64> = got.iter().copied().collect();
        assert_eq!(got.len(), N as usize);
        assert_eq!(unique.len(), N as usize);
        for i in 0..N {
            assert!(unique.contains(&i));
        }
    }

    #[test]
    fn two_producers_two_consumers() {
        let q = Arc::new(SyncQueue::new(128));
        const N: i64 = 1_000;
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..2i64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..N {
                        q.put(t * 100_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let got = Arc::clone(&got);
                s.spawn(move || {
                    for _ in 0..N {
                        got.lock().push(q.take());
                    }
                });
            }
        });
        let got = got.lock();
        let unique: HashSet<i64> = got.iter().copied().collect();
        assert_eq!(got.len(), 2 * N as usize);
        assert_eq!(unique.len(), got.len(), "duplicate transfers");
    }

    #[test]
    fn producers_never_transfer_to_producers() {
        // With only producers, no try_put may ever succeed.
        let q = Arc::new(SyncQueue::new(16));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..500 {
                        assert!(!q.try_put(t * 1_000 + i, 2), "put succeeded without taker");
                    }
                });
            }
        });
    }
}
