//! The elimination stack of Hendler, Shavit and Yerushalmi (Fig. 2,
//! lines 25–48): a failing central stack backed by an elimination array.
//!
//! Under contention, a failed stack CAS sends the operation to the
//! elimination array, where a push and a pop can cancel out without ever
//! touching the central stack — the source of the algorithm's scalability.

use cal_specs::vocab::POP_SENTINEL;

use crate::elim_array::ElimArray;
use crate::hooks::{self, Backoff, Site};
use crate::stack::FailingStack;

/// The elimination stack.
///
/// # Examples
///
/// ```
/// use cal_objects::elim_stack::EliminationStack;
/// let s = EliminationStack::new(4, 64);
/// s.push(10);
/// assert_eq!(s.pop_wait(), 10);
/// ```
#[derive(Debug)]
pub struct EliminationStack {
    stack: FailingStack,
    array: ElimArray,
    spin_budget: usize,
}

impl EliminationStack {
    /// Creates an elimination stack with an elimination array of `k` slots
    /// and the given exchanger spin budget.
    pub fn new(k: usize, spin_budget: usize) -> Self {
        EliminationStack {
            stack: FailingStack::new(),
            array: ElimArray::new(k),
            spin_budget,
        }
    }

    /// Pushes `v` (lines 29–37), retrying stack and elimination attempts
    /// until one succeeds.
    ///
    /// # Panics
    ///
    /// Panics if `v` equals the pop sentinel.
    pub fn push(&self, v: i64) {
        assert!(v != POP_SENTINEL, "cannot push the pop sentinel");
        let mut backoff = Backoff::new();
        loop {
            if self.try_push_round(v) {
                return;
            }
            backoff.snooze();
        }
    }

    /// Pops (lines 38–47), retrying until a value is obtained. Blocks (by
    /// spinning) on an empty stack until a pusher arrives.
    pub fn pop_wait(&self) -> i64 {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_pop_round() {
                return v;
            }
            backoff.snooze();
        }
    }

    /// One push round: a stack attempt followed, on contention, by an
    /// elimination attempt. Returns `true` if the push took effect.
    pub fn try_push_round(&self, v: i64) -> bool {
        hooks::chaos_point(Site::ElimRound);
        // Line 32: b = S.push(v).
        if self.stack.push(v) {
            return true;
        }
        // Line 34: (b, d) = AR.exchange(v).
        let (ok, d) = self.array.exchange(v, self.spin_budget);
        // Line 35: if (d == POP_SENTINAL) return true.
        ok && d == POP_SENTINEL
    }

    /// One pop round. Returns the popped value if the round succeeded.
    pub fn try_pop_round(&self) -> Option<i64> {
        hooks::chaos_point(Site::ElimRound);
        // Line 42: (b, v) = S.pop().
        let (b, v) = self.stack.pop();
        if b {
            return Some(v);
        }
        // Line 44: (b, v) = AR.exchange(POP_SENTINAL).
        let (ok, v) = self.array.exchange(POP_SENTINEL, self.spin_budget);
        // Line 45: if (v != POP_SENTINAL) return (true, v).
        (ok && v != POP_SENTINEL).then_some(v)
    }

    /// A bounded pop: up to `rounds` rounds, then gives up.
    pub fn try_pop(&self, rounds: usize) -> Option<i64> {
        (0..rounds).find_map(|_| self.try_pop_round())
    }

    /// Returns `true` if the central stack appears empty (elimination
    /// in-flight operations are not visible).
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn sequential_lifo() {
        let s = EliminationStack::new(1, 4);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop_wait(), 3);
        assert_eq!(s.pop_wait(), 2);
        assert_eq!(s.pop_wait(), 1);
        assert_eq!(s.try_pop(3), None);
    }

    #[test]
    #[should_panic(expected = "pop sentinel")]
    fn sentinel_push_rejected() {
        EliminationStack::new(1, 1).push(POP_SENTINEL);
    }

    #[test]
    fn concurrent_balanced_push_pop_conserves_values() {
        let s = Arc::new(EliminationStack::new(2, 64));
        let popped = Arc::new(parking_lot::Mutex::new(Vec::new()));
        const PER_THREAD: i64 = 3_000;
        std::thread::scope(|scope| {
            for t in 0..2i64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        s.push(t * 100_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let s = Arc::clone(&s);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < PER_THREAD as usize {
                        got.push(s.pop_wait());
                    }
                    popped.lock().extend(got);
                });
            }
        });
        let all = popped.lock();
        let unique: HashSet<i64> = all.iter().copied().collect();
        assert_eq!(all.len(), 2 * PER_THREAD as usize);
        assert_eq!(unique.len(), all.len(), "duplicate pops");
        for t in 0..2i64 {
            for i in 0..PER_THREAD {
                assert!(unique.contains(&(t * 100_000 + i)), "lost {t}/{i}");
            }
        }
    }

    #[test]
    fn bounded_pop_gives_up_cleanly() {
        let s = EliminationStack::new(1, 1);
        assert_eq!(s.try_pop(5), None);
        s.push(9);
        assert_eq!(s.try_pop(5), Some(9));
    }
}
