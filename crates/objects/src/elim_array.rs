//! The elimination array of Fig. 2 (lines 1–6): `K` exchangers, with the
//! slot chosen uniformly at random per call.

use rand::Rng;

use crate::exchanger::Exchanger;
use crate::hooks::{self, Site};

/// An elimination array: an array of exchangers exposing a single
/// `exchange` with reduced contention.
///
/// # Examples
///
/// ```
/// use cal_objects::elim_array::ElimArray;
/// let ar = ElimArray::new(4);
/// assert_eq!(ar.slots(), 4);
/// // No partner: fails.
/// assert_eq!(ar.exchange(9, 10), (false, 9));
/// ```
#[derive(Debug)]
pub struct ElimArray {
    exchangers: Vec<Exchanger>,
}

impl ElimArray {
    /// Creates an elimination array with `k` slots.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "elimination array needs at least one slot");
        ElimArray { exchangers: (0..k).map(|_| Exchanger::new()).collect() }
    }

    /// Number of slots `K`.
    pub fn slots(&self) -> usize {
        self.exchangers.len()
    }

    /// Attempts an exchange on a random slot (lines 3–5). A chaos harness
    /// may supply the slot instead, to keep the choice seeded.
    pub fn exchange(&self, data: i64, spin_budget: usize) -> (bool, i64) {
        let k = self.exchangers.len();
        let slot = hooks::choose_index(Site::SlotPick, k)
            .unwrap_or_else(|| rand::thread_rng().gen_range(0..k));
        self.exchangers[slot].exchange(data, spin_budget)
    }

    /// Attempts an exchange on a specific slot (deterministic variant used
    /// by tests).
    pub fn exchange_on(&self, slot: usize, data: i64, spin_budget: usize) -> (bool, i64) {
        self.exchangers[slot].exchange(data, spin_budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn lone_exchange_fails() {
        let ar = ElimArray::new(2);
        assert_eq!(ar.exchange(5, 0), (false, 5));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        ElimArray::new(0);
    }

    #[test]
    fn same_slot_pairs_swap() {
        let ar = Arc::new(ElimArray::new(2));
        let swaps = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2i64 {
                let ar = Arc::clone(&ar);
                let swaps = Arc::clone(&swaps);
                s.spawn(move || {
                    for i in 0..10_000 {
                        // Deterministic slot: both threads use slot 0.
                        let (ok, got) = ar.exchange_on(0, t * 100_000 + i, 200);
                        if ok {
                            swaps.fetch_add(1, Ordering::Relaxed);
                            assert_ne!(got / 100_000, t);
                        }
                    }
                });
            }
        });
        assert!(swaps.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn random_slots_under_contention_still_pair() {
        let ar = Arc::new(ElimArray::new(2));
        let swaps = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let ar = Arc::clone(&ar);
                let swaps = Arc::clone(&swaps);
                s.spawn(move || {
                    for i in 0..10_000 {
                        if ar.exchange(t * 100_000 + i, 100).0 {
                            swaps.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(swaps.load(Ordering::Relaxed) > 0, "4 threads on 2 slots should pair");
    }
}
