//! Lock-free stacks: the failing central stack of Fig. 2 and the classic
//! retrying Treiber stack used as the no-elimination baseline.

use std::sync::atomic::Ordering::SeqCst;

use crossbeam::epoch::{self, Atomic, Owned};

use crate::hooks::{self, Site};

struct Node {
    data: i64,
    next: Atomic<Node>,
}

/// The failing lock-free stack of Fig. 2 (lines 7–24): one CAS attempt per
/// operation, reporting failure on contention.
///
/// # Examples
///
/// ```
/// use cal_objects::stack::FailingStack;
/// let s = FailingStack::new();
/// assert!(s.push(1));
/// assert_eq!(s.pop(), (true, 1));
/// assert_eq!(s.pop(), (false, 0)); // empty
/// ```
#[derive(Debug, Default)]
pub struct FailingStack {
    top: Atomic<Node>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node").field("data", &self.data).finish_non_exhaustive()
    }
}

impl FailingStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        FailingStack { top: Atomic::null() }
    }

    /// One push attempt (lines 10–14). Returns `false` on CAS contention.
    pub fn push(&self, data: i64) -> bool {
        let guard = &epoch::pin();
        let h = self.top.load(SeqCst, guard);
        let n = Owned::new(Node { data, next: Atomic::null() });
        n.next.store(h, SeqCst);
        // The load→CAS window: chaos may stall here or fail the CAS
        // spuriously; both are behaviours the one-shot spec admits.
        hooks::chaos_point(Site::StackCas);
        if hooks::cas_should_fail(Site::StackCas) {
            return false;
        }
        match self.top.compare_exchange(h, n, SeqCst, SeqCst, guard) {
            Ok(_) => true,
            Err(_e) => false, // the failed Owned is dropped here
        }
    }

    /// One pop attempt (lines 15–24). Returns `(false, 0)` on an empty
    /// stack or CAS contention.
    pub fn pop(&self) -> (bool, i64) {
        let guard = &epoch::pin();
        let h = self.top.load(SeqCst, guard);
        if h.is_null() {
            return (false, 0); // EMPTY, line 18
        }
        // SAFETY: a node reachable from top is not yet retired; we are
        // pinned.
        let h_ref = unsafe { h.deref() };
        let n = h_ref.next.load(SeqCst, guard);
        hooks::chaos_point(Site::StackCas);
        if hooks::cas_should_fail(Site::StackCas) {
            return (false, 0);
        }
        if self.top.compare_exchange(h, n, SeqCst, SeqCst, guard).is_ok() {
            // SAFETY: we unlinked h; it is retired exactly once, here.
            unsafe { guard.defer_destroy(h) };
            (true, h_ref.data)
        } else {
            (false, 0)
        }
    }

    /// Returns `true` if the stack appears empty at this instant.
    pub fn is_empty(&self) -> bool {
        let guard = &epoch::pin();
        self.top.load(SeqCst, guard).is_null()
    }
}

impl Drop for FailingStack {
    fn drop(&mut self) {
        // SAFETY: exclusive access; walk and free the remaining nodes.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.top.load(SeqCst, guard);
            while !cur.is_null() {
                let next = cur.deref().next.load(SeqCst, guard);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

/// The classic retrying Treiber stack: retries CAS contention until it
/// succeeds. `pop` on an empty stack returns `(false, 0)`.
///
/// # Examples
///
/// ```
/// use cal_objects::stack::TreiberStack;
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), (true, 2));
/// assert_eq!(s.pop(), (true, 1));
/// assert_eq!(s.pop(), (false, 0));
/// ```
#[derive(Debug, Default)]
pub struct TreiberStack {
    inner: FailingStack,
}

impl TreiberStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack::default()
    }

    /// Pushes, retrying contention until success.
    pub fn push(&self, data: i64) {
        while !self.inner.push(data) {
            std::hint::spin_loop();
        }
    }

    /// Pops, retrying contention until success or observed emptiness.
    pub fn pop(&self) -> (bool, i64) {
        loop {
            let guard = &epoch::pin();
            let h = self.inner.top.load(SeqCst, guard);
            if h.is_null() {
                return (false, 0);
            }
            // SAFETY: reachable from top while pinned.
            let h_ref = unsafe { h.deref() };
            let n = h_ref.next.load(SeqCst, guard);
            hooks::chaos_point(Site::StackCas);
            if hooks::cas_should_fail(Site::StackCas) {
                std::hint::spin_loop();
                continue;
            }
            if self.inner.top.compare_exchange(h, n, SeqCst, SeqCst, guard).is_ok() {
                // SAFETY: unlinked; retired exactly once, here.
                unsafe { guard.defer_destroy(h) };
                return (true, h_ref.data);
            }
            std::hint::spin_loop();
        }
    }

    /// Returns `true` if the stack appears empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn failing_stack_lifo() {
        let s = FailingStack::new();
        assert!(s.is_empty());
        assert!(s.push(1));
        assert!(s.push(2));
        assert!(!s.is_empty());
        assert_eq!(s.pop(), (true, 2));
        assert_eq!(s.pop(), (true, 1));
        assert_eq!(s.pop(), (false, 0));
    }

    #[test]
    fn treiber_stack_lifo() {
        let s = TreiberStack::new();
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), (true, i));
        }
        assert_eq!(s.pop(), (false, 0));
    }

    #[test]
    fn concurrent_pushes_all_land_once() {
        let s = Arc::new(TreiberStack::new());
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..1_000 {
                        s.push(t * 10_000 + i);
                    }
                });
            }
        });
        let mut seen = HashSet::new();
        while let (true, v) = s.pop() {
            assert!(seen.insert(v), "duplicate value {v}");
        }
        assert_eq!(seen.len(), 4_000);
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let s = Arc::new(TreiberStack::new());
        let popped = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for t in 0..2i64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..2_000 {
                        s.push(t * 10_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let s = Arc::clone(&s);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0;
                    while got.len() < 2_000 && misses < 1_000_000 {
                        match s.pop() {
                            (true, v) => got.push(v),
                            (false, _) => misses += 1,
                        }
                    }
                    popped.lock().extend(got);
                });
            }
        });
        // Drain leftovers.
        let mut all: Vec<i64> = popped.lock().clone();
        while let (true, v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4_000, "values lost or duplicated");
    }

    #[test]
    fn failing_stack_conserves_values_under_contention() {
        // Whether pushes fail is timing-dependent (the sim crate proves
        // failures reachable deterministically); what must always hold is
        // that exactly the successful pushes are in the stack, once each.
        let s = Arc::new(FailingStack::new());
        let mut succeeded = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || {
                        let mut ok = Vec::new();
                        for i in 0..2_000 {
                            let v = t * 10_000 + i;
                            if s.push(v) {
                                ok.push(v);
                            }
                        }
                        ok
                    })
                })
                .collect();
            for h in handles {
                succeeded.extend(h.join().unwrap());
            }
        });
        let mut popped = Vec::new();
        loop {
            match s.pop() {
                (true, v) => popped.push(v),
                (false, _) if s.is_empty() => break,
                (false, _) => continue,
            }
        }
        succeeded.sort_unstable();
        popped.sort_unstable();
        assert_eq!(succeeded, popped, "stack contents differ from successful pushes");
    }
}
