//! # cal-objects — real lock-free concurrency-aware objects
//!
//! Production-style Rust implementations (atomics + epoch reclamation) of
//! every object in the paper:
//!
//! - [`exchanger::Exchanger`] — the wait-free exchanger of Fig. 1;
//! - [`elim_array::ElimArray`] — the elimination array of Fig. 2;
//! - [`stack::FailingStack`] / [`stack::TreiberStack`] — the failing
//!   central stack of Fig. 2 and the retrying baseline;
//! - [`elim_stack::EliminationStack`] — Hendler et al.'s elimination
//!   stack;
//! - [`sync_queue::SyncQueue`] — the exchanger-based synchronous queue;
//! - [`record::Recorder`] and the [`recorded`] wrappers — history
//!   recording for offline CAL / linearizability checking of real runs;
//! - [`hooks`] — chaos instrumentation points and capped-exponential
//!   backoff, the substrate of the `cal-chaos` fault-injection harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena_exchanger;
pub mod dual_stack;
pub mod elim_array;
pub mod elim_stack;
pub mod exchanger;
pub mod hooks;
pub mod record;
pub mod recorded;
pub mod snapshot;
pub mod stack;
pub mod sync_queue;
