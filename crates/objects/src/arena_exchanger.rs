//! A scalable elimination-based exchange channel in the style of
//! Scherer, Lea and Scott (the paper's reference \[21\]): an *arena* of
//! exchanger slots with adaptive bounds. Threads start at slot 0 (fast
//! rendezvous at low concurrency) and back off to random slots within a
//! bound that grows under contention and shrinks under timeouts — the
//! same CA-object specification surface as a single exchanger, with far
//! better scalability.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::Rng;

use crate::exchanger::{ExchangeOutcome, Exchanger};

/// An adaptive multi-slot exchanger arena.
///
/// # Examples
///
/// ```
/// use cal_objects::arena_exchanger::ArenaExchanger;
/// let arena = ArenaExchanger::new(8, 64);
/// // Alone: every attempt times out.
/// assert_eq!(arena.exchange(7, 3), (false, 7));
/// ```
#[derive(Debug)]
pub struct ArenaExchanger {
    slots: Vec<Exchanger>,
    /// Current arena bound: threads pick slots in `0..bound`.
    bound: AtomicUsize,
    spin_budget: usize,
}

impl ArenaExchanger {
    /// Creates an arena with `slots` exchanger slots and the given
    /// per-attempt spin budget.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0.
    pub fn new(slots: usize, spin_budget: usize) -> Self {
        assert!(slots > 0, "arena needs at least one slot");
        ArenaExchanger {
            slots: (0..slots).map(|_| Exchanger::new()).collect(),
            bound: AtomicUsize::new(1),
            spin_budget,
        }
    }

    /// The number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The current adaptive bound (for tests and diagnostics).
    pub fn current_bound(&self) -> usize {
        self.bound.load(Ordering::Relaxed)
    }

    /// Attempts to exchange `v`, trying up to `attempts` slots. Returns
    /// `(true, partner's value)` on success and `(false, v)` on failure.
    pub fn exchange(&self, v: i64, attempts: usize) -> (bool, i64) {
        let mut rng = rand::thread_rng();
        for attempt in 0..attempts {
            let bound = self.bound.load(Ordering::Relaxed).clamp(1, self.slots.len());
            // First attempt goes to slot 0 — the fast path when the arena
            // is quiet; backoff attempts scatter within the bound. A chaos
            // harness may supply the scatter slot to keep it seeded.
            let slot = if attempt == 0 {
                0
            } else {
                crate::hooks::choose_index(crate::hooks::Site::SlotPick, bound)
                    .unwrap_or_else(|| rng.gen_range(0..bound))
            };
            match self.slots[slot].exchange_detailed(v, self.spin_budget) {
                ExchangeOutcome::Swapped(got) => return (true, got),
                ExchangeOutcome::Contended => {
                    // Another pair beat us to the slot: grow the arena.
                    let _ = self.bound.fetch_update(
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                        |b| (b < self.slots.len()).then_some(b + 1),
                    );
                }
                ExchangeOutcome::TimedOut => {
                    // Nobody came: shrink the arena back.
                    let _ = self.bound.fetch_update(
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                        |b| (b > 1).then_some(b - 1),
                    );
                }
            }
        }
        (false, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lone_exchange_times_out() {
        let a = ArenaExchanger::new(4, 2);
        assert_eq!(a.exchange(9, 3), (false, 9));
        assert_eq!(a.slots(), 4);
        assert_eq!(a.current_bound(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        ArenaExchanger::new(0, 1);
    }

    #[test]
    fn pairs_swap_under_concurrency() {
        let a = Arc::new(ArenaExchanger::new(4, 256));
        let swaps = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let a = Arc::clone(&a);
                let swaps = Arc::clone(&swaps);
                s.spawn(move || {
                    for i in 0..2_000 {
                        let (ok, got) = a.exchange(t * 100_000 + i, 4);
                        if ok {
                            swaps.fetch_add(1, Ordering::Relaxed);
                            assert_ne!(got / 100_000, t, "swapped with itself");
                        }
                    }
                });
            }
        });
        let n = swaps.load(Ordering::Relaxed);
        assert!(n > 0, "concurrent threads must pair");
        assert_eq!(n % 2, 0, "swaps come in pairs");
    }

    #[test]
    fn values_cross_exactly() {
        let a = Arc::new(ArenaExchanger::new(2, 256));
        let received = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let a = Arc::clone(&a);
                let received = Arc::clone(&received);
                s.spawn(move || {
                    for i in 0..1_000 {
                        let mine = t * 1_000_000 + i;
                        let (ok, got) = a.exchange(mine, 3);
                        if ok {
                            received.lock().push((mine, got));
                        }
                    }
                });
            }
        });
        let pairs = received.lock();
        for &(mine, got) in pairs.iter() {
            assert!(
                pairs.iter().any(|&(m, g)| m == got && g == mine),
                "unreciprocated swap {mine} -> {got}"
            );
        }
    }

    #[test]
    fn bound_stays_within_arena() {
        let a = Arc::new(ArenaExchanger::new(3, 16));
        std::thread::scope(|s| {
            for t in 0..6i64 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..500 {
                        let _ = a.exchange(t * 10_000 + i, 2);
                    }
                });
            }
        });
        assert!((1..=3).contains(&a.current_bound()));
    }
}
