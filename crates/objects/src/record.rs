//! Concurrent history recording.
//!
//! A [`Recorder`] collects invocation and response actions from real
//! threads into one totally-ordered log. The log order is consistent with
//! real time — an invocation is appended before its operation starts and a
//! response after it returns — so the recorded [`History`]'s real-time
//! order is a sound under-approximation of what actually happened, which
//! is exactly what the checkers need.

use cal_core::{Action, History, Method, ObjectId, ThreadId, Value};
use parking_lot::Mutex;

/// A thread-safe recorder of object actions.
///
/// # Examples
///
/// ```
/// use cal_core::{Method, ObjectId, ThreadId, Value};
/// use cal_objects::record::Recorder;
/// let r = Recorder::new();
/// r.invoke(ThreadId(0), ObjectId(0), Method("push"), Value::Int(1));
/// r.response(ThreadId(0), ObjectId(0), Method("push"), Value::Bool(true));
/// let h = r.history();
/// assert!(h.is_complete());
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    log: Mutex<Vec<Action>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records an invocation. Call immediately *before* starting the
    /// operation.
    pub fn invoke(&self, thread: ThreadId, object: ObjectId, method: Method, arg: Value) {
        self.log.lock().push(Action::invoke(thread, object, method, arg));
    }

    /// Records a response. Call immediately *after* the operation returns.
    pub fn response(&self, thread: ThreadId, object: ObjectId, method: Method, ret: Value) {
        self.log.lock().push(Action::response(thread, object, method, ret));
    }

    /// Number of recorded actions so far.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// Snapshots the recorded history.
    pub fn history(&self) -> History {
        History::from_actions(self.log.lock().clone())
    }

    /// Consumes the recorder, returning the recorded history.
    pub fn into_history(self) -> History {
        History::from_actions(self.log.into_inner())
    }
}

/// A lock-free recorder built on a linearizable FIFO queue
/// (`crossbeam`'s `SegQueue`): appends never block, and the drain order is
/// consistent with real time because the queue itself is linearizable.
/// Use when the mutex recorder's serialization would perturb a
/// measurement; see the `recorder_overhead` ablation benchmark.
#[derive(Debug, Default)]
pub struct LockFreeRecorder {
    log: crossbeam::queue::SegQueue<Action>,
}

impl LockFreeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LockFreeRecorder::default()
    }

    /// Records an invocation. Call immediately *before* starting the
    /// operation.
    pub fn invoke(&self, thread: ThreadId, object: ObjectId, method: Method, arg: Value) {
        self.log.push(Action::invoke(thread, object, method, arg));
    }

    /// Records a response. Call immediately *after* the operation returns.
    pub fn response(&self, thread: ThreadId, object: ObjectId, method: Method, ret: Value) {
        self.log.push(Action::response(thread, object, method, ret));
    }

    /// Number of recorded actions so far.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Drains the recorded actions into a history. Call after all
    /// recording threads have finished.
    pub fn into_history(self) -> History {
        let mut actions = Vec::with_capacity(self.log.len());
        while let Some(a) = self.log.pop() {
            actions.push(a);
        }
        History::from_actions(actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_order() {
        let r = Recorder::new();
        assert!(r.is_empty());
        r.invoke(ThreadId(0), ObjectId(1), Method("m"), Value::Unit);
        r.response(ThreadId(0), ObjectId(1), Method("m"), Value::Int(1));
        assert_eq!(r.len(), 2);
        let h = r.history();
        assert!(h.is_sequential());
        assert_eq!(h.operations()[0].ret, Value::Int(1));
    }

    #[test]
    fn concurrent_recording_is_well_formed() {
        let r = Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100 {
                        r.invoke(ThreadId(t), ObjectId(0), Method("op"), Value::Int(i));
                        r.response(ThreadId(t), ObjectId(0), Method("op"), Value::Int(i));
                    }
                });
            }
        });
        let h = r.history();
        assert_eq!(h.len(), 8 * 200);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
    }

    #[test]
    fn into_history_consumes() {
        let r = Recorder::new();
        r.invoke(ThreadId(0), ObjectId(0), Method("m"), Value::Unit);
        let h = r.into_history();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn lock_free_recorder_single_thread_order() {
        let r = LockFreeRecorder::new();
        assert!(r.is_empty());
        r.invoke(ThreadId(0), ObjectId(0), Method("m"), Value::Int(1));
        r.response(ThreadId(0), ObjectId(0), Method("m"), Value::Int(2));
        assert_eq!(r.len(), 2);
        let h = r.into_history();
        assert!(h.is_sequential());
        assert!(h.is_complete());
    }

    #[test]
    fn lock_free_recorder_concurrent_history_well_formed() {
        let r = Arc::new(LockFreeRecorder::new());
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..200 {
                        r.invoke(ThreadId(t), ObjectId(0), Method("op"), Value::Int(i));
                        r.response(ThreadId(t), ObjectId(0), Method("op"), Value::Int(i));
                    }
                });
            }
        });
        let r = Arc::into_inner(r).expect("all threads joined");
        let h = r.into_history();
        assert_eq!(h.len(), 8 * 400);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
    }
}
