//! Chaos instrumentation points and backoff for the live objects.
//!
//! The objects in this crate call [`chaos_point`] (and consult
//! [`cas_should_fail`]) at the algorithmically interesting moments: the
//! window between loading a pointer and CASing it, each iteration of a
//! wait loop, the start and end of a recorded operation. A fault-injection
//! harness (the `cal-chaos` crate) installs a [`ChaosHooks`] implementation
//! with [`install`] and registers its worker threads with
//! [`register_current_thread`]; the hooks then see every instrumented
//! point on those threads and can delay, yield, or force a CAS to be
//! treated as failed.
//!
//! The production cost is one relaxed atomic load per point when no hooks
//! are installed. Even with hooks installed, threads that have not
//! registered as participants pass through untouched, so unrelated tests
//! and benchmarks running in the same process are unaffected.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// An instrumented point inside one of the live objects.
///
/// The set of sites is open-ended (`#[non_exhaustive]`): hooks should
/// treat unknown sites generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Site {
    /// A recorded operation has logged its invocation and is about to
    /// call into the live object.
    OpStart,
    /// A recorded operation's inner call returned; the response is about
    /// to be logged.
    OpEnd,
    /// Exchanger: the offer-publishing CAS on the global slot is next.
    ExchangeInstall,
    /// Exchanger: one iteration of the wait-for-partner loop.
    ExchangeWait,
    /// Exchanger: the matching CAS on a found offer's hole is next.
    ExchangeMatch,
    /// Stack: the window between loading the head and the head CAS.
    StackCas,
    /// Elimination stack: a push/pop round is about to start.
    ElimRound,
    /// Dual stack: the window between loading `top` and acting on it.
    DualCas,
    /// Dual stack: one poll of a reservation's fulfillment slot.
    DualPoll,
    /// A randomized slot choice (elimination array, arena exchanger) is
    /// about to be drawn.
    SlotPick,
}

impl Site {
    /// A short stable name, for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Site::OpStart => "op-start",
            Site::OpEnd => "op-end",
            Site::ExchangeInstall => "exchange-install",
            Site::ExchangeWait => "exchange-wait",
            Site::ExchangeMatch => "exchange-match",
            Site::StackCas => "stack-cas",
            Site::ElimRound => "elim-round",
            Site::DualCas => "dual-cas",
            Site::DualPoll => "dual-poll",
            Site::SlotPick => "slot-pick",
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault-injection policy, installed process-wide by a chaos harness.
///
/// Implementations must be cheap and must not call back into the
/// instrumented objects (the hooks run inside their critical windows).
pub trait ChaosHooks: Send + Sync {
    /// Called at every instrumented point reached by a registered thread.
    /// May sleep, spin, or yield to perturb the schedule.
    fn at_point(&self, site: Site);

    /// Returns `true` to make the instrumented CAS at `site` act as if it
    /// failed (a spurious failure), without attempting it. Only sites
    /// where the algorithm has a sound failure/retry path consult this.
    fn cas_should_fail(&self, _site: Site) -> bool {
        false
    }

    /// Supplies the index for a randomized choice in `0..bound` at
    /// `site`, or `None` to let the object draw its own randomness.
    /// Deterministic harnesses override this so that every random choice
    /// in a run is a function of the seed.
    fn choose_index(&self, _site: Site, _bound: usize) -> Option<usize> {
        None
    }
}

/// Fast-path gate: true while some harness has hooks installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed hooks. Guarded by `ENABLED` for the fast path.
static HOOKS: RwLock<Option<Arc<dyn ChaosHooks>>> = RwLock::new(None);

thread_local! {
    /// Whether the current thread opted in to fault injection.
    static PARTICIPANT: Cell<bool> = const { Cell::new(false) };
}

fn hooks_read() -> RwLockReadGuard<'static, Option<Arc<dyn ChaosHooks>>> {
    // The lock is never held across a panic by this module; recover the
    // guard anyway so a panicking hook cannot wedge the process.
    HOOKS.read().unwrap_or_else(|e| e.into_inner())
}

/// Installs `hooks` process-wide, returning a guard that uninstalls them
/// on drop. At most one harness may have hooks installed at a time;
/// installing over existing hooks replaces them (harnesses serialize runs
/// with their own lock).
pub fn install(hooks: Arc<dyn ChaosHooks>) -> InstallGuard {
    *HOOKS.write().unwrap_or_else(|e| e.into_inner()) = Some(hooks);
    ENABLED.store(true, Ordering::SeqCst);
    InstallGuard { _private: () }
}

/// Uninstalls hooks when dropped. Returned by [`install`].
#[derive(Debug)]
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *HOOKS.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Opts the current thread in to fault injection until the returned guard
/// drops. Threads that never register are never perturbed.
pub fn register_current_thread() -> ParticipantGuard {
    PARTICIPANT.with(|p| p.set(true));
    ParticipantGuard { _private: () }
}

/// De-registers the thread when dropped. Returned by
/// [`register_current_thread`].
#[derive(Debug)]
pub struct ParticipantGuard {
    _private: (),
}

impl Drop for ParticipantGuard {
    fn drop(&mut self) {
        PARTICIPANT.with(|p| p.set(false));
    }
}

/// An instrumented point. No-op (one relaxed load) unless hooks are
/// installed *and* the current thread registered as a participant.
#[inline]
pub fn chaos_point(site: Site) {
    if ENABLED.load(Ordering::Relaxed) {
        chaos_point_slow(site);
    }
}

#[cold]
fn chaos_point_slow(site: Site) {
    if !PARTICIPANT.with(Cell::get) {
        return;
    }
    if let Some(h) = hooks_read().as_ref() {
        h.at_point(site);
    }
}

/// Asks the installed hooks whether the CAS at `site` should be treated
/// as spuriously failed. Always `false` without hooks or registration.
#[inline]
pub fn cas_should_fail(site: Site) -> bool {
    ENABLED.load(Ordering::Relaxed) && cas_should_fail_slow(site)
}

#[cold]
fn cas_should_fail_slow(site: Site) -> bool {
    if !PARTICIPANT.with(Cell::get) {
        return false;
    }
    hooks_read().as_ref().is_some_and(|h| h.cas_should_fail(site))
}

/// Asks the installed hooks to pick an index in `0..bound` for the
/// randomized choice at `site`. `None` (always, without hooks or
/// registration) means the object should use its own randomness.
#[inline]
pub fn choose_index(site: Site, bound: usize) -> Option<usize> {
    if ENABLED.load(Ordering::Relaxed) {
        choose_index_slow(site, bound)
    } else {
        None
    }
}

#[cold]
fn choose_index_slow(site: Site, bound: usize) -> Option<usize> {
    if !PARTICIPANT.with(Cell::get) {
        return None;
    }
    hooks_read().as_ref().and_then(|h| h.choose_index(site, bound))
}

/// Capped exponential backoff for retry and wait loops: bursts of
/// [`std::hint::spin_loop`] that double per step up to a cap, after which
/// every step yields the CPU with [`std::thread::yield_now`].
///
/// The shape follows crossbeam's `Backoff`: short contention windows are
/// ridden out without a syscall, while long waits hand the core to the
/// thread being waited for — essential on few-core machines where the
/// partner cannot run until we yield.
///
/// # Examples
///
/// ```
/// use cal_objects::hooks::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.snooze(); // spins, cheap
/// }
/// assert!(!b.is_yielding());
/// for _ in 0..10 {
///     b.snooze(); // escalates to yield_now
/// }
/// assert!(b.is_yielding());
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps `0..=SPIN_LIMIT` spin; later steps yield. `2^6 = 64` spin
    /// hints in the largest burst, ~127 in total before the first yield.
    const SPIN_LIMIT: u32 = 6;

    /// A fresh backoff at the cheapest step.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Backs off once: a doubling burst of spin hints while below the
    /// cap, a `yield_now` at and beyond it.
    pub fn snooze(&mut self) {
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// True once the backoff has escalated past spinning to yielding.
    pub fn is_yielding(&self) -> bool {
        self.step >= Self::SPIN_LIMIT
    }

    /// Resets to the cheapest step (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Serializes the install/uninstall tests (the registry is global).
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    struct Counter {
        points: AtomicUsize,
        fail_cas: bool,
    }

    impl ChaosHooks for Counter {
        fn at_point(&self, _site: Site) {
            self.points.fetch_add(1, Ordering::Relaxed);
        }
        fn cas_should_fail(&self, _site: Site) -> bool {
            self.fail_cas
        }
    }

    #[test]
    fn disabled_points_are_noops() {
        chaos_point(Site::OpStart);
        assert!(!cas_should_fail(Site::StackCas));
    }

    #[test]
    fn unregistered_threads_are_unaffected() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let hooks = Arc::new(Counter { points: AtomicUsize::new(0), fail_cas: true });
        let _guard = install(Arc::clone(&hooks) as Arc<dyn ChaosHooks>);
        chaos_point(Site::OpStart);
        assert!(!cas_should_fail(Site::StackCas));
        assert_eq!(hooks.points.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn registered_threads_hit_hooks_until_guards_drop() {
        let _serial = INSTALL_LOCK.lock().unwrap();
        let hooks = Arc::new(Counter { points: AtomicUsize::new(0), fail_cas: true });
        let guard = install(Arc::clone(&hooks) as Arc<dyn ChaosHooks>);
        {
            let _reg = register_current_thread();
            chaos_point(Site::ExchangeWait);
            chaos_point(Site::ExchangeMatch);
            assert!(cas_should_fail(Site::StackCas));
        }
        // De-registered: no further hits.
        chaos_point(Site::ExchangeWait);
        assert_eq!(hooks.points.load(Ordering::Relaxed), 2);
        drop(guard);
        // Uninstalled: fully inert again.
        let _reg = register_current_thread();
        chaos_point(Site::ExchangeWait);
        assert!(!cas_should_fail(Site::StackCas));
        assert_eq!(hooks.points.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.snooze(); // yields without panicking
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn site_names_are_stable() {
        assert_eq!(Site::ExchangeInstall.name(), "exchange-install");
        assert_eq!(Site::DualPoll.to_string(), "dual-poll");
    }
}
