//! A real wait-free exchanger, transliterated from Fig. 1 to Rust atomics
//! with epoch-based reclamation.
//!
//! The algorithm is exactly the paper's: a thread either publishes its
//! offer into the global slot `g` and waits for a partner to fill its
//! `hole` (passing with the `fail` sentinel if none arrives), or finds an
//! offer in `g` and tries to satisfy it with a CAS on the offer's `hole`,
//! cleaning `g` afterwards. The `fail` sentinel is represented as a
//! tagged null pointer, and offers are reclaimed with `crossbeam-epoch`
//! (each offer is retired exactly once, by its allocating thread).

use std::sync::atomic::Ordering::SeqCst;

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};

use crate::hooks::{self, Backoff, Site};

/// The tag marking the `fail` sentinel in a `hole` pointer.
const FAIL_TAG: usize = 1;

/// How an exchange attempt ended, distinguishing the two failure causes —
/// the signal the adaptive arena of
/// [`crate::arena_exchanger::ArenaExchanger`] adapts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeOutcome {
    /// Paired with a partner; carries the partner's value.
    Swapped(i64),
    /// Published an offer but no partner arrived within the spin budget.
    TimedOut,
    /// Found an offer but lost the race to satisfy it (or it vanished):
    /// the slot is contended.
    Contended,
}

struct Offer {
    data: i64,
    hole: Atomic<Offer>,
}

/// A wait-free exchanger object (Fig. 1).
///
/// `exchange` attempts to swap values with a concurrently executing
/// thread; the wait for a partner is bounded by a spin budget, preserving
/// wait-freedom.
///
/// # Examples
///
/// ```
/// use cal_objects::exchanger::Exchanger;
/// let e = Exchanger::new();
/// // No partner: the exchange fails and returns the offered value.
/// assert_eq!(e.exchange(7, 10), (false, 7));
/// ```
#[derive(Debug, Default)]
pub struct Exchanger {
    g: Atomic<Offer>,
    /// Deliberate bug switch for harness validation: a matching thread
    /// returns its *own* value instead of the partner's, so both sides of
    /// a swap report the matcher's value. See
    /// [`Exchanger::new_misdelivering`].
    misdeliver: bool,
}

impl std::fmt::Debug for Offer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Offer").field("data", &self.data).finish_non_exhaustive()
    }
}

impl Exchanger {
    /// Creates an exchanger with an empty slot.
    pub fn new() -> Self {
        Exchanger { g: Atomic::null(), misdeliver: false }
    }

    /// Creates a **deliberately broken** exchanger that hands the same
    /// value to both sides of a swap (the matcher keeps its own value
    /// instead of taking the waiter's). Every successful pairing with
    /// distinct values violates the exchanger's CA-specification — the
    /// planted bug the chaos harness must catch.
    pub fn new_misdelivering() -> Self {
        Exchanger { g: Atomic::null(), misdeliver: true }
    }

    /// Attempts to exchange `v` with a concurrent partner, spinning at
    /// most `spin_budget` times while waiting. Returns `(true, partner's
    /// value)` on success and `(false, v)` on failure — the signature of
    /// Fig. 1's `exchange`.
    pub fn exchange(&self, v: i64, spin_budget: usize) -> (bool, i64) {
        match self.exchange_detailed(v, spin_budget) {
            ExchangeOutcome::Swapped(got) => (true, got),
            ExchangeOutcome::TimedOut | ExchangeOutcome::Contended => (false, v),
        }
    }

    /// Like [`Exchanger::exchange`], but reports *why* a failed attempt
    /// failed (timeout vs. contention).
    pub fn exchange_detailed(&self, v: i64, spin_budget: usize) -> ExchangeOutcome {
        let guard = &epoch::pin();
        // Line 13: Offer n = new Offer(tid, v).
        let n = Owned::new(Offer { data: v, hole: Atomic::null() }).into_shared(guard);
        // SAFETY: `n` was just allocated and stays valid while pinned.
        let n_ref = unsafe { n.deref() };
        // Line 15: if (CAS(g, null, n)) — the init path. A spurious
        // chaos failure routes to the matching path, exactly as losing
        // the installation race would.
        hooks::chaos_point(Site::ExchangeInstall);
        if !hooks::cas_should_fail(Site::ExchangeInstall)
            && self
                .g
                .compare_exchange(Shared::null(), n, SeqCst, SeqCst, guard)
                .is_ok()
        {
            self.wait_for_partner(n, n_ref, spin_budget, guard)
        } else {
            self.match_existing(n, guard)
        }
    }

    /// The waiting path (lines 16–23): the offer is published; wait for a
    /// partner, then either pass or take the partner's value.
    fn wait_for_partner(
        &self,
        n: Shared<'_, Offer>,
        n_ref: &Offer,
        spin_budget: usize,
        guard: &Guard,
    ) -> ExchangeOutcome {
        let mut spins = spin_budget;
        let mut backoff = Backoff::new();
        loop {
            hooks::chaos_point(Site::ExchangeWait);
            let h = n_ref.hole.load(SeqCst, guard);
            if !h.is_null() {
                // A partner matched us; h points to its offer.
                // SAFETY: the partner's offer is retired only by the
                // partner, after this guard was pinned.
                let got = unsafe { h.deref() }.data;
                self.unlink_and_retire(n, guard);
                return ExchangeOutcome::Swapped(got);
            }
            if spins == 0 {
                // Line 18: if (CAS(n.hole, null, fail)) — pass.
                if n_ref
                    .hole
                    .compare_exchange(
                        Shared::null(),
                        Shared::null().with_tag(FAIL_TAG),
                        SeqCst,
                        SeqCst,
                        guard,
                    )
                    .is_ok()
                {
                    self.unlink_and_retire(n, guard);
                    return ExchangeOutcome::TimedOut; // line 20
                }
                // The CAS lost to a matching partner.
                let h = n_ref.hole.load(SeqCst, guard);
                debug_assert!(!h.is_null());
                // SAFETY: as above.
                let got = unsafe { h.deref() }.data;
                self.unlink_and_retire(n, guard);
                return ExchangeOutcome::Swapped(got); // line 22
            }
            spins -= 1;
            // Fig. 1 waits with sleep(50): ride out short waits with spin
            // hints, then give the CPU away so a partner can actually
            // arrive (essential on few-core machines).
            backoff.snooze();
        }
    }

    /// The matching path (lines 25–35): try to satisfy the offer in `g`.
    fn match_existing(&self, n: Shared<'_, Offer>, guard: &Guard) -> ExchangeOutcome {
        // Line 25: Offer cur = g.
        let cur = self.g.load(SeqCst, guard);
        let got = if !cur.is_null() {
            // SAFETY: an offer reachable from g is not yet retired (its
            // owner unlinks it before retiring), and we are pinned.
            let cur_ref = unsafe { cur.deref() };
            // Line 29: s = CAS(cur.hole, null, n) — xchg. A spurious
            // chaos failure reports contention, as a lost race would.
            hooks::chaos_point(Site::ExchangeMatch);
            let s = !hooks::cas_should_fail(Site::ExchangeMatch)
                && cur_ref
                    .hole
                    .compare_exchange(Shared::null(), n, SeqCst, SeqCst, guard)
                    .is_ok();
            // Line 31: CAS(g, cur, null) — clean, unconditionally.
            let _ = self.g.compare_exchange(cur, Shared::null(), SeqCst, SeqCst, guard);
            // The planted misdelivery bug returns the matcher's own value.
            // SAFETY: `n` is this thread's own offer, valid while pinned.
            s.then(|| if self.misdeliver { unsafe { n.deref() }.data } else { cur_ref.data })
        } else {
            None
        };
        // Our own offer was never published into g; it is reachable only
        // through the partner's hole (if we matched). Either way we are
        // the unique retirer.
        // SAFETY: retired exactly once, here.
        unsafe { guard.defer_destroy(n) };
        match got {
            Some(d) => ExchangeOutcome::Swapped(d), // line 33
            None => ExchangeOutcome::Contended,     // line 35
        }
    }

    /// Unlinks the own offer from `g` (helping semantics aside, the owner
    /// always tries) and retires it.
    fn unlink_and_retire(&self, n: Shared<'_, Offer>, guard: &Guard) {
        let _ = self.g.compare_exchange(n, Shared::null(), SeqCst, SeqCst, guard);
        // SAFETY: `n` is this thread's own offer; it is retired exactly
        // once, here, after being unlinked from `g` (or observed already
        // unlinked).
        unsafe { guard.defer_destroy(n) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn lone_exchange_fails_with_own_value() {
        let e = Exchanger::new();
        assert_eq!(e.exchange(42, 0), (false, 42));
        assert_eq!(e.exchange(7, 100), (false, 7));
    }

    #[test]
    fn sequential_exchanges_never_pair() {
        let e = Exchanger::new();
        for i in 0..50 {
            assert_eq!(e.exchange(i, 10), (false, i));
        }
    }

    #[test]
    fn concurrent_pair_eventually_swaps() {
        // Two threads repeatedly exchanging must eventually pair up.
        let e = Arc::new(Exchanger::new());
        let swaps = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2i64 {
                let e = Arc::clone(&e);
                let swaps = Arc::clone(&swaps);
                s.spawn(move || {
                    for i in 0..10_000 {
                        let (ok, got) = e.exchange(t * 100_000 + i, 200);
                        if ok {
                            swaps.fetch_add(1, Ordering::Relaxed);
                            // The partner's value comes from the other thread.
                            assert_ne!(got / 100_000, t, "swapped with itself");
                        }
                    }
                });
            }
        });
        assert!(swaps.load(Ordering::Relaxed) > 0, "no exchange ever succeeded");
        // Swaps come in pairs.
        assert_eq!(swaps.load(Ordering::Relaxed) % 2, 0);
    }

    #[test]
    fn values_cross_exactly() {
        // Each thread offers a unique tagged value; on success the received
        // value must be some other thread's exact offer.
        let e = Arc::new(Exchanger::new());
        let received = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let e = Arc::clone(&e);
                let received = Arc::clone(&received);
                s.spawn(move || {
                    for i in 0..2_000 {
                        let mine = t * 1_000_000 + i;
                        let (ok, got) = e.exchange(mine, 100);
                        if ok {
                            received.lock().push((mine, got));
                        }
                    }
                });
            }
        });
        let pairs = received.lock();
        // Every successful receive is reciprocated: if a got b, then b got a.
        for &(mine, got) in pairs.iter() {
            assert!(
                pairs.iter().any(|&(m, g)| m == got && g == mine),
                "unreciprocated swap {mine} -> {got}"
            );
        }
    }

    #[test]
    fn many_threads_stress() {
        let e = Arc::new(Exchanger::new());
        std::thread::scope(|s| {
            for t in 0..8i64 {
                let e = Arc::clone(&e);
                s.spawn(move || {
                    for i in 0..5_000 {
                        let _ = e.exchange(t * 10_000 + i, 50);
                    }
                });
            }
        });
        // Reaching here without crash/UB (under miri/asan in CI) is the test.
    }
}
