//! A real one-shot immediate atomic snapshot (Borowsky–Gafni), on
//! atomics — the set-linearizable object of the paper's §6, usable from
//! OS threads and checkable with the CAL machinery.

use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};

/// A one-shot immediate snapshot for up to `n` processes.
///
/// Each process calls [`ImmediateSnapshot::im_snap`] at most once, with its
/// process index and a value in `0..63`; the returned view is the bitmask
/// of values of the processes it observed (always including its own), and
/// views of any two processes are ordered by containment, with processes
/// stuck at the same level seeing *exactly* the same view.
///
/// # Examples
///
/// ```
/// use cal_objects::snapshot::ImmediateSnapshot;
/// let snap = ImmediateSnapshot::new(2);
/// let view = snap.im_snap(0, 5);
/// assert_ne!(view & (1 << 5), 0); // own value always included
/// ```
#[derive(Debug)]
pub struct ImmediateSnapshot {
    values: Vec<AtomicI64>,
    /// `n + 1` = not started.
    levels: Vec<AtomicU8>,
}

const UNWRITTEN: i64 = -1;

impl ImmediateSnapshot {
    /// Creates an immediate snapshot for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 250 (levels are stored in a `u8`).
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= 250, "process count must be in 1..=250");
        ImmediateSnapshot {
            values: (0..n).map(|_| AtomicI64::new(UNWRITTEN)).collect(),
            levels: (0..n).map(|_| AtomicU8::new(n as u8 + 1)).collect(),
        }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.values.len()
    }

    /// Performs process `i`'s one-shot snapshot with value `v`, returning
    /// the view bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, `v` is outside `0..63`, or the
    /// process already participated.
    pub fn im_snap(&self, i: usize, v: i64) -> i64 {
        let n = self.values.len();
        assert!(i < n, "process index out of range");
        assert!((0..63).contains(&v), "values must be in 0..63");
        let prev = self.values[i].swap(v, Ordering::SeqCst);
        assert_eq!(prev, UNWRITTEN, "im_snap is one-shot per process");
        loop {
            // level[i] := level[i] - 1 (only the owner writes its level).
            let my_level = self.levels[i].load(Ordering::SeqCst) - 1;
            self.levels[i].store(my_level, Ordering::SeqCst);
            // Collect everyone at or below our level.
            let below: Vec<usize> = (0..n)
                .filter(|&j| self.levels[j].load(Ordering::SeqCst) <= my_level)
                .collect();
            if below.len() >= my_level as usize {
                let mut mask = 0i64;
                for j in below {
                    let value = self.values[j].load(Ordering::SeqCst);
                    debug_assert_ne!(value, UNWRITTEN, "lowered level implies written value");
                    mask |= 1 << value;
                }
                return mask;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lone_process_sees_itself() {
        let s = ImmediateSnapshot::new(3);
        assert_eq!(s.im_snap(0, 7), 1 << 7);
        assert_eq!(s.processes(), 3);
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn double_participation_rejected() {
        let s = ImmediateSnapshot::new(2);
        s.im_snap(0, 1);
        s.im_snap(0, 2);
    }

    #[test]
    fn sequential_processes_see_growing_views() {
        let s = ImmediateSnapshot::new(3);
        let v0 = s.im_snap(0, 1);
        let v1 = s.im_snap(1, 2);
        let v2 = s.im_snap(2, 3);
        assert_eq!(v0, 0b10);
        assert_eq!(v1, 0b110);
        assert_eq!(v2, 0b1110);
    }

    #[test]
    fn concurrent_views_are_comparable_and_self_inclusive() {
        for round in 0..50 {
            let n = 4;
            let s = Arc::new(ImmediateSnapshot::new(n));
            let views = Arc::new(parking_lot::Mutex::new(Vec::new()));
            std::thread::scope(|scope| {
                for i in 0..n {
                    let s = Arc::clone(&s);
                    let views = Arc::clone(&views);
                    scope.spawn(move || {
                        let v = s.im_snap(i, i as i64);
                        views.lock().push((i, v));
                    });
                }
            });
            let views = views.lock();
            assert_eq!(views.len(), n);
            for &(i, vi) in views.iter() {
                assert_ne!(vi & (1 << i), 0, "round {round}: self-inclusion violated");
                for &(_, vj) in views.iter() {
                    assert!(
                        vi & vj == vi || vi & vj == vj,
                        "round {round}: incomparable views {vi:#b} {vj:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn immediacy_same_view_processes_see_each_other() {
        // If two processes have equal views, each contains the other's
        // value (they are in the same block).
        for _ in 0..50 {
            let n = 3;
            let s = Arc::new(ImmediateSnapshot::new(n));
            let views = Arc::new(parking_lot::Mutex::new(Vec::new()));
            std::thread::scope(|scope| {
                for i in 0..n {
                    let s = Arc::clone(&s);
                    let views = Arc::clone(&views);
                    scope.spawn(move || {
                        let v = s.im_snap(i, i as i64);
                        views.lock().push((i, v));
                    });
                }
            });
            let views = views.lock();
            for &(i, vi) in views.iter() {
                for &(j, vj) in views.iter() {
                    if vi == vj {
                        assert_ne!(vi & (1 << j), 0);
                        assert_ne!(vj & (1 << i), 0);
                    }
                }
            }
        }
    }
}
