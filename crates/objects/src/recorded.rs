//! Recorded wrappers: the real objects instrumented to log client-visible
//! histories for offline CAL / linearizability checking.

use std::sync::Arc;

use cal_core::{ObjectId, ThreadId, Value};
use cal_specs::vocab::{CANCEL_SENTINEL, EXCHANGE, POP, PUSH, PUT, TAKE};

use crate::arena_exchanger::ArenaExchanger;
use crate::dual_stack::DualStack;
use crate::elim_stack::EliminationStack;
use crate::exchanger::Exchanger;
use crate::hooks::{self, Site};
use crate::record::Recorder;
use crate::stack::TreiberStack;
use crate::sync_queue::SyncQueue;

/// An [`Exchanger`] that records its history.
///
/// # Examples
///
/// ```
/// use cal_core::{ObjectId, ThreadId};
/// use cal_objects::recorded::RecordedExchanger;
/// let e = RecordedExchanger::new(ObjectId(0));
/// e.exchange(ThreadId(0), 5, 4);
/// assert_eq!(e.recorder().history().len(), 2);
/// ```
#[derive(Debug)]
pub struct RecordedExchanger {
    inner: Exchanger,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedExchanger {
    /// Creates a recorded exchanger named `object`.
    pub fn new(object: ObjectId) -> Self {
        RecordedExchanger {
            inner: Exchanger::new(),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// Creates a recorded **deliberately broken** exchanger (see
    /// [`Exchanger::new_misdelivering`]) — the chaos harness's planted
    /// bug.
    pub fn new_misdelivering(object: ObjectId) -> Self {
        RecordedExchanger {
            inner: Exchanger::new_misdelivering(),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded `exchange` performed by `thread`.
    pub fn exchange(&self, thread: ThreadId, v: i64, spin_budget: usize) -> (bool, i64) {
        self.recorder.invoke(thread, self.object, EXCHANGE, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        let (ok, got) = self.inner.exchange(v, spin_budget);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, EXCHANGE, Value::Pair(ok, got));
        (ok, got)
    }
}

/// An [`ArenaExchanger`] that records its history. The arena exposes the
/// same concurrency-aware specification surface as a single exchanger.
#[derive(Debug)]
pub struct RecordedArenaExchanger {
    inner: ArenaExchanger,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedArenaExchanger {
    /// Creates a recorded arena named `object` with `slots` slots.
    pub fn new(object: ObjectId, slots: usize, spin_budget: usize) -> Self {
        RecordedArenaExchanger {
            inner: ArenaExchanger::new(slots, spin_budget),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded `exchange` by `thread`, trying up to `attempts` slots.
    pub fn exchange(&self, thread: ThreadId, v: i64, attempts: usize) -> (bool, i64) {
        self.recorder.invoke(thread, self.object, EXCHANGE, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        let (ok, got) = self.inner.exchange(v, attempts);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, EXCHANGE, Value::Pair(ok, got));
        (ok, got)
    }
}

/// A [`TreiberStack`] that records its history.
#[derive(Debug)]
pub struct RecordedTreiberStack {
    inner: TreiberStack,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedTreiberStack {
    /// Creates a recorded retrying stack named `object`.
    pub fn new(object: ObjectId) -> Self {
        RecordedTreiberStack {
            inner: TreiberStack::new(),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded `push`.
    pub fn push(&self, thread: ThreadId, v: i64) {
        self.recorder.invoke(thread, self.object, PUSH, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        self.inner.push(v);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, PUSH, Value::Bool(true));
    }

    /// A recorded `pop`.
    pub fn pop(&self, thread: ThreadId) -> (bool, i64) {
        self.recorder.invoke(thread, self.object, POP, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let (ok, v) = self.inner.pop();
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, POP, Value::Pair(ok, if ok { v } else { 0 }));
        (ok, v)
    }
}

/// An [`EliminationStack`] that records its client-visible history.
#[derive(Debug)]
pub struct RecordedEliminationStack {
    inner: EliminationStack,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedEliminationStack {
    /// Creates a recorded elimination stack named `object`, with `k`
    /// elimination slots and the given exchanger spin budget.
    pub fn new(object: ObjectId, k: usize, spin_budget: usize) -> Self {
        RecordedEliminationStack {
            inner: EliminationStack::new(k, spin_budget),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded `push`.
    pub fn push(&self, thread: ThreadId, v: i64) {
        self.recorder.invoke(thread, self.object, PUSH, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        self.inner.push(v);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, PUSH, Value::Bool(true));
    }

    /// A recorded blocking `pop`.
    pub fn pop_wait(&self, thread: ThreadId) -> i64 {
        self.recorder.invoke(thread, self.object, POP, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let v = self.inner.pop_wait();
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, POP, Value::Pair(true, v));
        v
    }

    /// A recorded *bounded* pop: up to `rounds` rounds, then gives up
    /// with `(false, 0)` — the convention of [`StackSpec::failing`].
    /// Chaos workloads use this so starved poppers still terminate.
    ///
    /// [`StackSpec::failing`]: cal_specs::stack::StackSpec::failing
    pub fn try_pop(&self, thread: ThreadId, rounds: usize) -> Option<i64> {
        self.recorder.invoke(thread, self.object, POP, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let got = self.inner.try_pop(rounds);
        hooks::chaos_point(Site::OpEnd);
        let ret = match got {
            Some(v) => Value::Pair(true, v),
            None => Value::Pair(false, 0),
        };
        self.recorder.response(thread, self.object, POP, ret);
        got
    }
}

/// A [`DualStack`] that records its history.
#[derive(Debug)]
pub struct RecordedDualStack {
    inner: DualStack,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedDualStack {
    /// Creates a recorded dual stack named `object`.
    pub fn new(object: ObjectId) -> Self {
        RecordedDualStack {
            inner: DualStack::new(),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded `push`.
    pub fn push(&self, thread: ThreadId, v: i64) {
        self.recorder.invoke(thread, self.object, PUSH, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        self.inner.push(v);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, PUSH, Value::Unit);
    }

    /// A recorded waiting `pop`.
    pub fn pop_wait(&self, thread: ThreadId) -> i64 {
        self.recorder.invoke(thread, self.object, POP, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let v = self.inner.pop_wait();
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, POP, Value::Int(v));
        v
    }

    /// A recorded *bounded* pop: waits up to `patience` polls, recording
    /// [`CANCEL_SENTINEL`] as the return on timeout. Check the resulting
    /// history against [`DualStackSpec::with_timeouts`].
    ///
    /// [`DualStackSpec::with_timeouts`]: cal_specs::dual_stack::DualStackSpec::with_timeouts
    pub fn try_pop(&self, thread: ThreadId, patience: usize) -> Option<i64> {
        self.recorder.invoke(thread, self.object, POP, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let got = self.inner.try_pop(patience);
        hooks::chaos_point(Site::OpEnd);
        let ret = Value::Int(got.unwrap_or(CANCEL_SENTINEL));
        self.recorder.response(thread, self.object, POP, ret);
        got
    }
}

/// A [`SyncQueue`] that records its history.
#[derive(Debug)]
pub struct RecordedSyncQueue {
    inner: SyncQueue,
    object: ObjectId,
    recorder: Arc<Recorder>,
}

impl RecordedSyncQueue {
    /// Creates a recorded synchronous queue named `object`.
    pub fn new(object: ObjectId, spin_budget: usize) -> Self {
        RecordedSyncQueue {
            inner: SyncQueue::new(spin_budget),
            object,
            recorder: Arc::new(Recorder::new()),
        }
    }

    /// The recorder collecting the history.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// A recorded bounded `put`.
    pub fn try_put(&self, thread: ThreadId, v: i64, attempts: usize) -> bool {
        self.recorder.invoke(thread, self.object, PUT, Value::Int(v));
        hooks::chaos_point(Site::OpStart);
        let ok = self.inner.try_put(v, attempts);
        hooks::chaos_point(Site::OpEnd);
        self.recorder.response(thread, self.object, PUT, Value::Bool(ok));
        ok
    }

    /// A recorded bounded `take`.
    pub fn try_take(&self, thread: ThreadId, attempts: usize) -> Option<i64> {
        self.recorder.invoke(thread, self.object, TAKE, Value::Unit);
        hooks::chaos_point(Site::OpStart);
        let got = self.inner.try_take(attempts);
        hooks::chaos_point(Site::OpEnd);
        let ret = match got {
            Some(v) => Value::Pair(true, v),
            None => Value::Pair(false, 0),
        };
        self.recorder.response(thread, self.object, TAKE, ret);
        got
    }
}

/// Runs `body(ThreadId(0)) … body(ThreadId(n-1))` on `n` scoped OS
/// threads, returning after all complete.
pub fn run_threads<F>(n: u32, body: F)
where
    F: Fn(ThreadId) + Sync,
{
    std::thread::scope(|s| {
        for t in 0..n {
            let body = &body;
            s.spawn(move || body(ThreadId(t)));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cal_core::check::is_cal;
    use cal_core::seqlin::check_linearizable;
    use cal_specs::exchanger::ExchangerSpec;
    use cal_specs::stack::StackSpec;
    use cal_specs::sync_queue::SyncQueueSpec;

    #[test]
    fn recorded_exchanger_history_is_cal() {
        let e = RecordedExchanger::new(ObjectId(0));
        run_threads(3, |t| {
            for i in 0..8 {
                e.exchange(t, (t.0 as i64) * 100 + i, 64);
            }
        });
        let h = e.recorder().history();
        assert!(h.is_complete());
        assert!(is_cal(&h, &ExchangerSpec::new(ObjectId(0))).unwrap(), "history not CAL:\n{h}");
    }

    #[test]
    fn recorded_arena_exchanger_history_is_cal() {
        let a = RecordedArenaExchanger::new(ObjectId(0), 4, 64);
        run_threads(4, |t| {
            for i in 0..8 {
                a.exchange(t, (t.0 as i64) * 100 + i, 3);
            }
        });
        let h = a.recorder().history();
        assert!(h.is_complete());
        assert!(is_cal(&h, &ExchangerSpec::new(ObjectId(0))).unwrap(), "history not CAL:\n{h}");
    }

    #[test]
    fn recorded_treiber_history_is_linearizable() {
        let s = RecordedTreiberStack::new(ObjectId(0));
        run_threads(3, |t| {
            for i in 0..10 {
                let v = (t.0 as i64) * 100 + i;
                s.push(t, v);
                s.pop(t);
            }
        });
        let h = s.recorder().history();
        let outcome = check_linearizable(&h, &StackSpec::total(ObjectId(0))).unwrap();
        assert!(outcome.verdict.is_cal(), "history not linearizable:\n{h}");
    }

    #[test]
    fn recorded_elimination_stack_history_is_linearizable() {
        let s = RecordedEliminationStack::new(ObjectId(0), 2, 64);
        run_threads(4, |t| {
            for i in 0..8 {
                let v = (t.0 as i64) * 100 + i;
                s.push(t, v);
                s.pop_wait(t);
            }
        });
        let h = s.recorder().history();
        let outcome = check_linearizable(&h, &StackSpec::total(ObjectId(0))).unwrap();
        assert!(outcome.verdict.is_cal(), "history not linearizable:\n{h}");
    }

    #[test]
    fn recorded_dual_stack_history_is_cal() {
        use cal_specs::dual_stack::DualStackSpec;
        let s = RecordedDualStack::new(ObjectId(0));
        run_threads(4, |t| {
            for i in 0..6 {
                let v = (t.0 as i64) * 100 + i;
                s.push(t, v);
                s.pop_wait(t);
            }
        });
        let h = s.recorder().history();
        assert!(h.is_complete());
        assert!(is_cal(&h, &DualStackSpec::new(ObjectId(0))).unwrap(), "history not CAL:\n{h}");
    }

    #[test]
    fn recorded_sync_queue_history_is_cal() {
        let q = RecordedSyncQueue::new(ObjectId(0), 64);
        run_threads(2, |t| {
            for i in 0..10 {
                if t.0 == 0 {
                    q.try_put(t, i, 32);
                } else {
                    q.try_take(t, 32);
                }
            }
        });
        let h = q.recorder().history();
        assert!(is_cal(&h, &SyncQueueSpec::new(ObjectId(0))).unwrap(), "history not CAL:\n{h}");
    }
}
