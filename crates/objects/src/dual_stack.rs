//! A real lock-free dual stack (Scherer & Scott, DISC 2004): `pop` on an
//! empty stack installs a reservation and waits for a push to fulfill it.
//! The §6 example of a dual data structure, here with epoch reclamation
//! and timeout-based cancellation.
//!
//! Node discipline: data nodes are retired by the popper that unlinks
//! them; reservation nodes are retired by whichever thread wins the
//! unlink CAS (owner, fulfiller, or a later helper), while the waiting
//! owner polls its separately-owned fulfillment slot (an `Arc`d atomic),
//! so no thread ever reads a freed node.

use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

use crossbeam::epoch::{self, Atomic, Guard, Owned, Shared};

use crate::hooks::{self, Site};

/// The fulfillment slot is in this state until a push arrives.
const UNFILLED: i64 = i64::MIN;
/// The waiting pop gave up; the reservation is dead.
const CANCELLED: i64 = i64::MIN + 1;

struct Node {
    /// `None` for data nodes; the fulfillment slot for reservations.
    fill: Option<Arc<AtomicI64>>,
    data: i64,
    next: Atomic<Node>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("is_reservation", &self.fill.is_some())
            .field("data", &self.data)
            .finish_non_exhaustive()
    }
}

/// A lock-free dual stack.
///
/// # Examples
///
/// ```
/// use cal_objects::dual_stack::DualStack;
/// let s = DualStack::new();
/// s.push(5);
/// assert_eq!(s.try_pop(16), Some(5));
/// assert_eq!(s.try_pop(2), None); // empty: the reservation times out
/// ```
#[derive(Debug, Default)]
pub struct DualStack {
    top: Atomic<Node>,
}

impl DualStack {
    /// Creates an empty dual stack.
    pub fn new() -> Self {
        DualStack { top: Atomic::null() }
    }

    /// Pushes `v`, fulfilling a waiting pop if one is reserved.
    ///
    /// # Panics
    ///
    /// Panics if `v` collides with the internal sentinels (`i64::MIN`,
    /// `i64::MIN + 1`).
    pub fn push(&self, v: i64) {
        assert!(v != UNFILLED && v != CANCELLED, "reserved sentinel value");
        loop {
            let guard = &epoch::pin();
            let top = self.top.load(SeqCst, guard);
            let reservation = if top.is_null() {
                None
            } else {
                // SAFETY: reachable-from-top nodes are not yet retired.
                let top_ref = unsafe { top.deref() };
                top_ref.fill.as_ref().map(Arc::clone)
            };
            match reservation {
                None => {
                    // Plain push of a data node. A spurious chaos failure
                    // behaves like losing the CAS race: retry.
                    let n = Owned::new(Node {
                        fill: None,
                        data: v,
                        next: Atomic::null(),
                    });
                    n.next.store(top, SeqCst);
                    hooks::chaos_point(Site::DualCas);
                    if !hooks::cas_should_fail(Site::DualCas)
                        && self.top.compare_exchange(top, n, SeqCst, SeqCst, guard).is_ok()
                    {
                        return;
                    }
                }
                Some(slot) => {
                    // Reservation on top: fulfill or help clean.
                    if slot
                        .compare_exchange(UNFILLED, v, SeqCst, SeqCst)
                        .is_ok()
                    {
                        self.try_unlink(top, guard);
                        return;
                    }
                    // Already fulfilled or cancelled: help unlink, retry.
                    self.try_unlink(top, guard);
                }
            }
            std::thread::yield_now();
        }
    }

    /// Pops, waiting (by polling a reservation) for up to `patience`
    /// polls if the stack is empty. Returns `None` on timeout.
    pub fn try_pop(&self, patience: usize) -> Option<i64> {
        loop {
            let guard = &epoch::pin();
            let top = self.top.load(SeqCst, guard);
            if top.is_null() {
                if let Some(v) = self.reserve_and_wait(top, patience, guard) {
                    return v;
                }
                continue;
            }
            // SAFETY: reachable-from-top nodes are not yet retired.
            let top_ref = unsafe { top.deref() };
            match &top_ref.fill {
                None => {
                    // Data on top: take it (chaos may force a retry).
                    let next = top_ref.next.load(SeqCst, guard);
                    hooks::chaos_point(Site::DualCas);
                    if hooks::cas_should_fail(Site::DualCas) {
                        continue;
                    }
                    if self.top.compare_exchange(top, next, SeqCst, SeqCst, guard).is_ok() {
                        // SAFETY: we unlinked the node; retired once, here.
                        unsafe { guard.defer_destroy(top) };
                        return Some(top_ref.data);
                    }
                }
                Some(slot) => {
                    if slot.load(SeqCst) != UNFILLED {
                        // Dead reservation surfaced: help unlink.
                        self.try_unlink(top, guard);
                    } else if let Some(v) = self.reserve_and_wait(top, patience, guard) {
                        return v;
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    /// Pops, waiting indefinitely for a pusher.
    pub fn pop_wait(&self) -> i64 {
        loop {
            if let Some(v) = self.try_pop(64) {
                return v;
            }
        }
    }

    /// Returns `true` if the stack currently holds no nodes at all
    /// (neither data nor reservations).
    pub fn is_empty(&self) -> bool {
        let guard = &epoch::pin();
        self.top.load(SeqCst, guard).is_null()
    }

    /// Installs a reservation on top of `expected_top` and waits for
    /// fulfillment. Returns:
    /// - `Some(Some(v))` — fulfilled with `v`;
    /// - `Some(None)` — timed out (reservation cancelled);
    /// - `None` — lost the installation race; caller retries.
    fn reserve_and_wait(
        &self,
        expected_top: Shared<'_, Node>,
        patience: usize,
        guard: &Guard,
    ) -> Option<Option<i64>> {
        let slot = Arc::new(AtomicI64::new(UNFILLED));
        let r = Owned::new(Node {
            fill: Some(Arc::clone(&slot)),
            data: 0,
            next: Atomic::null(),
        });
        r.next.store(expected_top, SeqCst);
        // A spurious chaos failure on the installation CAS sends the
        // caller back around its retry loop, as a lost race would.
        hooks::chaos_point(Site::DualCas);
        if hooks::cas_should_fail(Site::DualCas) {
            return None; // the Owned reservation is dropped here
        }
        let r = match self.top.compare_exchange(expected_top, r, SeqCst, SeqCst, guard) {
            Ok(installed) => installed,
            Err(_) => return None, // Owned dropped by the error value
        };
        // Wait for a fulfilling push, polling our own Arc'd slot (safe
        // regardless of who retires the node).
        for _ in 0..patience {
            hooks::chaos_point(Site::DualPoll);
            let v = slot.load(SeqCst);
            if v != UNFILLED {
                self.try_unlink(r, guard);
                return Some(Some(v));
            }
            std::thread::yield_now();
        }
        // Timeout: try to cancel; a concurrent fulfiller may win.
        match slot.compare_exchange(UNFILLED, CANCELLED, SeqCst, SeqCst) {
            Ok(_) => {
                self.try_unlink(r, guard);
                Some(None)
            }
            Err(v) => {
                self.try_unlink(r, guard);
                Some(Some(v))
            }
        }
    }

    /// Unlinks `node` if it is still on top; the winner retires it.
    fn try_unlink(&self, node: Shared<'_, Node>, guard: &Guard) {
        // SAFETY: node is reachable (we hold it pinned since loading it).
        let next = unsafe { node.deref() }.next.load(SeqCst, guard);
        if self.top.compare_exchange(node, next, SeqCst, SeqCst, guard).is_ok() {
            // SAFETY: the unlink CAS succeeds exactly once per node, so
            // this is the unique retirement.
            unsafe { guard.defer_destroy(node) };
        }
    }
}

impl Drop for DualStack {
    fn drop(&mut self) {
        // SAFETY: exclusive access; free whatever is still linked.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.top.load(SeqCst, guard);
            while !cur.is_null() {
                let next = cur.deref().next.load(SeqCst, guard);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_lifo() {
        let s = DualStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.try_pop(4), Some(2));
        assert_eq!(s.try_pop(4), Some(1));
        assert_eq!(s.try_pop(2), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_rejected() {
        DualStack::new().push(i64::MIN);
    }

    #[test]
    fn waiting_pop_gets_fulfilled() {
        let s = Arc::new(DualStack::new());
        let got = Arc::new(parking_lot::Mutex::new(None));
        std::thread::scope(|scope| {
            {
                let s = Arc::clone(&s);
                let got = Arc::clone(&got);
                scope.spawn(move || {
                    *got.lock() = Some(s.pop_wait());
                });
            }
            {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    std::thread::yield_now();
                    s.push(42);
                });
            }
        });
        assert_eq!(*got.lock(), Some(42));
    }

    #[test]
    fn balanced_producers_consumers_conserve_values() {
        const N: i64 = 2_000;
        let s = Arc::new(DualStack::new());
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for t in 0..2i64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..N {
                        s.push(t * 100_000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let s = Arc::clone(&s);
                let got = Arc::clone(&got);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..N {
                        mine.push(s.pop_wait());
                    }
                    got.lock().extend(mine);
                });
            }
        });
        let got = got.lock();
        let unique: HashSet<i64> = got.iter().copied().collect();
        assert_eq!(got.len(), 2 * N as usize);
        assert_eq!(unique.len(), got.len(), "duplicate pops");
    }

    #[test]
    fn timeouts_leave_stack_usable() {
        let s = DualStack::new();
        assert_eq!(s.try_pop(1), None);
        assert_eq!(s.try_pop(1), None);
        s.push(7);
        assert_eq!(s.try_pop(8), Some(7));
    }

    #[test]
    fn cancelled_reservations_get_cleaned() {
        let s = DualStack::new();
        for _ in 0..10 {
            assert_eq!(s.try_pop(1), None);
        }
        // Pushes clean surfaced dead reservations and still deliver.
        s.push(1);
        s.push(2);
        assert_eq!(s.try_pop(4), Some(2));
        assert_eq!(s.try_pop(4), Some(1));
    }
}
