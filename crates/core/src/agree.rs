//! The agreement relation `H ⊑CAL T` (Def. 5 of the paper).
//!
//! A complete history `H` agrees with a CA-trace `T` when there is a
//! surjection `π` from the operations of `H` onto the elements of `T` such
//! that (i) each element `T_k` equals the operation set mapped onto it and
//! (ii) the real-time order of `H` is respected: `i ≺H j ⟹ π(i) < π(j)`.
//!
//! The relation is order-parametric: [`agrees`] instantiates it with the
//! real-time order `≺H` (Def. 5 exactly), while [`agrees_under`] takes any
//! [`HbRelation`] — the causal checker's oracle substitutes a
//! happens-before partial order without changing the matching search.
//!
//! The search proceeds element-by-element: element `k` must be matched by a
//! set of yet-unmatched operations that (a) equals `T_k` as a set and
//! (b) consists only of *minimal* operations — ones all of whose
//! order-predecessors were matched to earlier elements. Because equal
//! operations can appear at several history positions, the match is found
//! by backtracking with memoization; minimality is tracked incrementally
//! with predecessor counts, so the common case (few duplicate operations)
//! runs in near-linear time after an `O(n²)` precomputation of the
//! order relation.

use std::collections::{HashMap, HashSet};

use crate::bitset::BitSet;
use crate::history::{HbRelation, History, PartialHistory, Span};
use crate::op::Operation;
use crate::trace::CaTrace;

/// A witness for `H ⊑CAL T`: `assignment[i] = k` maps the `i`-th operation
/// (in invocation order) of the history to the `k`-th element of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// For each history operation (by span index), the trace element index
    /// it was matched to.
    pub assignment: Vec<usize>,
}

/// Checks `H ⊑CAL T` (Def. 5) and returns a witness surjection if one
/// exists.
///
/// # Panics
///
/// Panics if `history` is not well-formed or not complete; Def. 5 is only
/// defined for complete histories. Use [`History::completions`] first for
/// incomplete histories, or the full CAL membership check in
/// [`crate::check`].
///
/// # Examples
///
/// ```
/// use cal_core::{agree, Action, CaElement, CaTrace, History, Method, ObjectId,
///                Operation, ThreadId, Value};
/// let e = ObjectId(0);
/// let ex = Method("exchange");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(1), e, ex, Value::Int(3)),
///     Action::invoke(ThreadId(2), e, ex, Value::Int(4)),
///     Action::response(ThreadId(1), e, ex, Value::Pair(true, 4)),
///     Action::response(ThreadId(2), e, ex, Value::Pair(true, 3)),
/// ]);
/// let swap = CaElement::pair(
///     Operation::new(ThreadId(1), e, ex, Value::Int(3), Value::Pair(true, 4)),
///     Operation::new(ThreadId(2), e, ex, Value::Int(4), Value::Pair(true, 3)),
/// ).unwrap();
/// let t = CaTrace::from_elements(vec![swap]);
/// assert!(agree::agrees(&h, &t).is_some());
/// ```
pub fn agrees(history: &History, trace: &CaTrace) -> Option<Agreement> {
    let hb = HbRelation::real_time(&history.spans());
    agrees_under(history, trace, &hb)
}

/// Like [`agrees`], but under an arbitrary happens-before relation built
/// over this history's spans: condition (ii) becomes `i ≺hb j ⟹ π(i) <
/// π(j)` and element membership requires pairwise hb-concurrency. With
/// [`HbRelation::real_time`] this is exactly [`agrees`]; with a causal
/// order it is the agreement oracle of `--mode causal`.
///
/// # Panics
///
/// Panics if `history` is not well-formed or not complete, or if `hb` was
/// built over a different number of spans.
pub fn agrees_under(history: &History, trace: &CaTrace, hb: &HbRelation) -> Option<Agreement> {
    let spans = history.spans();
    assert!(
        spans.iter().all(Span::is_complete),
        "⊑CAL is defined on complete histories only"
    );
    assert_eq!(hb.len(), spans.len(), "hb relation built over a different history");
    if spans.len() != trace.total_ops() {
        // π must be total on operations and each element exactly matched,
        // so the operation counts must be equal.
        return None;
    }
    let n = spans.len();
    // pending[i] = number of unmatched predecessors of i under hb.
    let pending: Vec<usize> = (0..n).map(|i| hb.preds(i).len()).collect();
    // Positions of each concrete operation value.
    let mut by_op: HashMap<Operation, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_op.entry(s.operation().expect("complete")).or_default().push(i);
    }
    let mut search = AgreeSearch {
        hb,
        trace,
        pending,
        by_op,
        matched: BitSet::new(n.max(1)),
        assignment: vec![usize::MAX; n],
        failed: HashSet::new(),
    };
    if search.element(0) {
        Some(Agreement { assignment: search.assignment })
    } else {
        None
    }
}

/// Convenience wrapper for [`agrees`] returning only a boolean.
pub fn agrees_bool(history: &History, trace: &CaTrace) -> bool {
    agrees(history, trace).is_some()
}

struct AgreeSearch<'a> {
    hb: &'a HbRelation,
    trace: &'a CaTrace,
    pending: Vec<usize>,
    by_op: HashMap<Operation, Vec<usize>>,
    matched: BitSet,
    assignment: Vec<usize>,
    failed: HashSet<(usize, BitSet)>,
}

impl AgreeSearch<'_> {
    fn element(&mut self, k: usize) -> bool {
        if k == self.trace.len() {
            return self.matched.len() == self.hb.len();
        }
        if self.failed.contains(&(k, self.matched.clone())) {
            return false;
        }
        let element = &self.trace.elements()[k];
        // For each (distinct) operation of the element, the candidate
        // spans: unmatched, minimal, carrying exactly that operation.
        let mut chosen: Vec<usize> = Vec::with_capacity(element.len());
        if self.combos(k, 0, &mut chosen) {
            return true;
        }
        self.failed.insert((k, self.matched.clone()));
        false
    }

    /// Chooses a span for operation `idx` of element `k`, then recurses.
    fn combos(&mut self, k: usize, idx: usize, chosen: &mut Vec<usize>) -> bool {
        let element = &self.trace.elements()[k];
        if idx == element.len() {
            // Commit this combination and move to the next element.
            for &i in chosen.iter() {
                self.matched.insert(i);
                self.assignment[i] = k;
            }
            for &i in chosen.iter() {
                for s in 0..self.hb.succs(i).len() {
                    let j = self.hb.succs(i)[s];
                    self.pending[j] -= 1;
                }
            }
            if self.element(k + 1) {
                return true;
            }
            for &i in chosen.iter() {
                for s in 0..self.hb.succs(i).len() {
                    let j = self.hb.succs(i)[s];
                    self.pending[j] += 1;
                }
            }
            for &i in chosen.iter() {
                self.matched.remove(i);
                self.assignment[i] = usize::MAX;
            }
            return false;
        }
        let target = element.ops()[idx];
        let candidates = match self.by_op.get(&target) {
            Some(c) => c.clone(),
            None => return false,
        };
        for i in candidates {
            if self.matched.contains(i) || self.pending[i] != 0 || chosen.contains(&i) {
                continue;
            }
            // Members of one element must be pairwise concurrent under hb.
            if !chosen.iter().all(|&j| self.hb.concurrent(i, j)) {
                continue;
            }
            chosen.push(i);
            if self.combos(k, idx + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::trace::CaElement;

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    fn inv(t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), E, EX, Value::Int(v))
    }

    fn res(t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), E, EX, Value::Pair(ok, v))
    }

    fn op(t: u32, arg: i64, ok: bool, ret: i64) -> Operation {
        Operation::new(ThreadId(t), E, EX, Value::Int(arg), Value::Pair(ok, ret))
    }

    fn swap12() -> CaElement {
        CaElement::pair(op(1, 3, true, 4), op(2, 4, true, 3)).unwrap()
    }

    #[test]
    fn empty_agrees_with_empty() {
        assert!(agrees_bool(&History::new(), &CaTrace::new()));
    }

    #[test]
    fn empty_history_disagrees_with_nonempty_trace() {
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(1, 7, false, 7))]);
        assert!(!agrees_bool(&History::new(), &t));
    }

    #[test]
    fn overlapping_swap_agrees() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let t = CaTrace::from_elements(vec![swap12()]);
        let w = agrees(&h, &t).unwrap();
        assert_eq!(w.assignment, vec![0, 0]);
    }

    #[test]
    fn non_overlapping_ops_cannot_share_element() {
        // t1 finishes before t2 starts, so they cannot be simultaneous.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4), inv(2, 4), res(2, true, 3)]);
        let t = CaTrace::from_elements(vec![swap12()]);
        assert!(!agrees_bool(&h, &t));
    }

    #[test]
    fn real_time_order_must_be_preserved() {
        // t1 ≺H t2, trace has t2's element first: refused.
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3), inv(2, 4), res(2, false, 4)]);
        let t_wrong = CaTrace::from_elements(vec![
            CaElement::singleton(op(2, 4, false, 4)),
            CaElement::singleton(op(1, 3, false, 3)),
        ]);
        assert!(!agrees_bool(&h, &t_wrong));
        let t_right = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 3, false, 3)),
            CaElement::singleton(op(2, 4, false, 4)),
        ]);
        let w = agrees(&h, &t_right).unwrap();
        assert_eq!(w.assignment, vec![0, 1]);
    }

    #[test]
    fn concurrent_singletons_may_order_either_way() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, false, 3), res(2, false, 4)]);
        let t_ab = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 3, false, 3)),
            CaElement::singleton(op(2, 4, false, 4)),
        ]);
        let t_ba = CaTrace::from_elements(vec![
            CaElement::singleton(op(2, 4, false, 4)),
            CaElement::singleton(op(1, 3, false, 3)),
        ]);
        assert!(agrees_bool(&h, &t_ab));
        assert!(agrees_bool(&h, &t_ba));
    }

    #[test]
    fn operation_mismatch_detected() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        // Trace claims the exchange succeeded.
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(1, 3, true, 9))]);
        assert!(!agrees_bool(&h, &t));
    }

    #[test]
    fn surjection_requires_all_ops_covered() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3), inv(2, 4), res(2, false, 4)]);
        let t = CaTrace::from_elements(vec![CaElement::singleton(op(1, 3, false, 3))]);
        // Trace misses t2's operation.
        assert!(!agrees_bool(&h, &t));
    }

    #[test]
    fn trace_with_extra_element_rejected() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 3, false, 3)),
            CaElement::singleton(op(2, 4, false, 4)),
        ]);
        assert!(!agrees_bool(&h, &t));
    }

    #[test]
    fn duplicate_operations_need_backtracking() {
        // The same thread performs two identical failed exchanges, with a
        // different thread's op strictly between them. Matching the wrong
        // occurrence first must be undone by backtracking.
        let h = History::from_actions(vec![
            inv(1, 5),
            res(1, false, 5),
            inv(2, 6),
            res(2, false, 6),
            inv(1, 5),
            res(1, false, 5),
        ]);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 5, false, 5)),
            CaElement::singleton(op(2, 6, false, 6)),
            CaElement::singleton(op(1, 5, false, 5)),
        ]);
        let w = agrees(&h, &t).unwrap();
        assert_eq!(w.assignment, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_operations_across_threads() {
        // Two different threads perform the same op concurrently; the
        // element order in the trace can bind either occurrence.
        let h = History::from_actions(vec![inv(1, 5), inv(2, 5), res(1, false, 5), res(2, false, 5)]);
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 5, false, 5)),
            CaElement::singleton(op(2, 5, false, 5)),
        ]);
        assert!(agrees_bool(&h, &t));
    }

    #[test]
    fn fig3_h1_agrees_with_swap_then_fail() {
        // Fig. 3's H1: t1, t2 swap 3↔4 concurrently; t3 fails with 7.
        let h = History::from_actions(vec![
            inv(1, 3),
            inv(2, 4),
            inv(3, 7),
            res(1, true, 4),
            res(2, true, 3),
            res(3, false, 7),
        ]);
        let t = CaTrace::from_elements(vec![swap12(), CaElement::singleton(op(3, 7, false, 7))]);
        assert!(agrees_bool(&h, &t));
        // And the other element order also works since all overlap:
        let t2 = CaTrace::from_elements(vec![CaElement::singleton(op(3, 7, false, 7)), swap12()]);
        assert!(agrees_bool(&h, &t2));
    }

    #[test]
    fn causal_order_relaxes_agreement() {
        // t1 finishes before t2 starts: `≺H` forbids them sharing an
        // element, but a session-only causal order (no cross-thread
        // edges) leaves them concurrent.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4), inv(2, 4), res(2, true, 3)]);
        let t = CaTrace::from_elements(vec![swap12()]);
        assert!(agrees(&h, &t).is_none());
        let session = HbRelation::causal(&h.spans(), &[]).unwrap();
        assert!(agrees_under(&h, &t, &session).is_some());
        // An explicit hb edge t1-op -> t2-op restores the prohibition.
        let edged = HbRelation::causal(&h.spans(), &[(0, 1)]).unwrap();
        assert!(agrees_under(&h, &t, &edged).is_none());
    }

    #[test]
    #[should_panic(expected = "complete histories")]
    fn incomplete_history_panics() {
        let h = History::from_actions(vec![inv(1, 3)]);
        agrees_bool(&h, &CaTrace::new());
    }
}
