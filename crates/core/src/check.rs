//! Concurrency-aware linearizability membership checking (Def. 6).
//!
//! An object system `OS` is CAL with respect to a trace set `𝒯` when every
//! history `H ∈ OS` has a completion `Hᶜ` and a trace `T ∈ 𝒯` such that
//! `Hᶜ ⊑CAL T`. Given one history and a [`CaSpec`], [`check_cal`] decides
//! whether such a completion and trace exist, returning a witness trace.
//!
//! The search generalizes the classical Wing–Gong linearizability search:
//! instead of repeatedly extracting one minimal operation, it extracts a
//! *CA-element* — a set of pairwise-concurrent minimal operations on one
//! object accepted by the specification. Pending invocations may join an
//! element (completing them with a spec-proposed return value) or remain
//! unassigned (dropping them, per Def. 2's completions). Failed search
//! states are memoized on `(matched-set, spec-state)`.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bitset::BitSet;
use crate::history::{History, HistoryError, Span};
use crate::obs::StatsSink;
use crate::op::Operation;
use crate::spec::{CaSpec, Invocation};
use crate::trace::{CaElement, CaTrace};

/// A cooperative cancellation token shared between a checker run and the
/// code supervising it.
///
/// Cloning yields a handle to the same token. The search polls it
/// periodically; after [`CancelToken::cancel`] the run winds down and
/// reports [`Verdict::Interrupted`] with partial [`CheckStats`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; safe to call from any thread, idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tuning knobs for the CAL search.
///
/// # Examples
///
/// Options compose via struct update syntax from [`CheckOptions::default`]:
///
/// ```
/// use std::time::Duration;
/// use cal_core::check::CheckOptions;
///
/// let options = CheckOptions {
///     max_nodes: 100_000,
///     threads: 4,
///     ..CheckOptions::with_deadline(Duration::from_secs(5))
/// };
/// assert_eq!(options.max_nodes, 100_000);
/// assert!(options.memoize); // on by default
/// ```
#[derive(Clone)]
pub struct CheckOptions {
    /// Maximum number of search nodes to expand before giving up with
    /// [`Verdict::ResourcesExhausted`].
    pub max_nodes: u64,
    /// Memoize failed `(matched-set, spec-state)` pairs (Lowe's
    /// optimization of the Wing–Gong search). On by default; the ablation
    /// benchmark turns it off to quantify its effect.
    pub memoize: bool,
    /// Wall-clock budget for the search. When it elapses the search winds
    /// down and reports [`Verdict::Interrupted`] with the stats gathered
    /// so far. `None` (the default) means unbounded.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: when the token fires, the search winds
    /// down and reports [`Verdict::Interrupted`]. `None` by default.
    pub cancel: Option<CancelToken>,
    /// Worker threads for the parallel checker
    /// ([`crate::par::check_cal_par_with`]). The sequential entry points
    /// ([`check_cal`], [`check_cal_with`]) ignore it. Defaults to 1.
    pub threads: usize,
    /// Observability sink the search reports events to
    /// ([`crate::obs::StatsSink`]). `None` (the default) disables
    /// observability entirely: each instrumentation point reduces to one
    /// never-taken branch, no allocation, no atomics.
    pub sink: Option<Arc<dyn StatsSink>>,
}

impl fmt::Debug for CheckOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckOptions")
            .field("max_nodes", &self.max_nodes)
            .field("memoize", &self.memoize)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel)
            .field("threads", &self.threads)
            .field("sink", &self.sink.as_ref().map(|_| "StatsSink"))
            .finish()
    }
}

impl CheckOptions {
    /// The default node budget.
    pub const DEFAULT_MAX_NODES: u64 = 4_000_000;

    /// Returns the default options with a wall-clock `deadline`.
    pub fn with_deadline(deadline: Duration) -> Self {
        CheckOptions { deadline: Some(deadline), ..CheckOptions::default() }
    }

    /// Returns the default options with [`CheckOptions::threads`] set to
    /// the machine's available parallelism.
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        CheckOptions { threads, ..CheckOptions::default() }
    }
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_nodes: Self::DEFAULT_MAX_NODES,
            memoize: true,
            deadline: None,
            cancel: None,
            threads: 1,
            sink: None,
        }
    }
}

/// Why a search stopped before reaching a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The wall-clock deadline in [`CheckOptions::deadline`] elapsed.
    DeadlineExceeded,
    /// The [`CancelToken`] in [`CheckOptions::cancel`] fired.
    Cancelled,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::DeadlineExceeded => f.write_str("deadline exceeded"),
            InterruptReason::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// The outcome of a CAL membership check.
///
/// # Examples
///
/// ```
/// use cal_core::check::{InterruptReason, Verdict};
/// use cal_core::trace::CaTrace;
///
/// let cal = Verdict::Cal(CaTrace::new());
/// assert!(cal.is_cal() && !cal.is_undecided());
/// assert!(cal.witness().is_some());
///
/// // Budget and interrupt outcomes are undecided, not refutations.
/// let timed_out = Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded };
/// assert!(timed_out.is_undecided());
/// assert_eq!(Verdict::NotCal.witness(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history is CA-linearizable; the witness trace is attached.
    Cal(CaTrace),
    /// No completion/trace pair exists: the history violates the
    /// specification.
    NotCal,
    /// The node budget was exhausted before the search completed.
    ResourcesExhausted,
    /// The search was stopped early by a deadline or cancellation; the
    /// accompanying [`CheckStats`] cover the work done up to that point.
    Interrupted {
        /// What stopped the search.
        reason: InterruptReason,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Cal`].
    pub fn is_cal(&self) -> bool {
        matches!(self, Verdict::Cal(_))
    }

    /// Returns `true` when the search stopped without deciding —
    /// [`Verdict::ResourcesExhausted`] or [`Verdict::Interrupted`].
    pub fn is_undecided(&self) -> bool {
        matches!(self, Verdict::ResourcesExhausted | Verdict::Interrupted { .. })
    }

    /// The witness trace, if the verdict is [`Verdict::Cal`].
    pub fn witness(&self) -> Option<&CaTrace> {
        match self {
            Verdict::Cal(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Cal(t) => write!(f, "CAL (witness: {t})"),
            Verdict::NotCal => f.write_str("not CAL"),
            Verdict::ResourcesExhausted => f.write_str("undecided: node budget exhausted"),
            Verdict::Interrupted { reason } => write!(f, "undecided: interrupted ({reason})"),
        }
    }
}

/// Search statistics, for the checker-scalability experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Search nodes expanded.
    pub nodes: u64,
    /// Candidate elements tried (spec `step` calls).
    pub elements_tried: u64,
    /// Failed states pruned via the memo table.
    pub memo_hits: u64,
}

impl std::ops::AddAssign for CheckStats {
    fn add_assign(&mut self, other: CheckStats) {
        self.nodes += other.nodes;
        self.elements_tried += other.elements_tried;
        self.memo_hits += other.memo_hits;
    }
}

/// A verdict together with search statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Search statistics.
    pub stats: CheckStats,
}

/// Errors reported by [`check_cal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The input history is not well-formed.
    IllFormed(HistoryError),
    /// The specification panicked during a transition; the payload is the
    /// panic message. The search state is discarded — a panicking spec
    /// cannot be trusted to have left its `State` values consistent.
    SpecPanicked(String),
    /// A boolean convenience query ([`is_cal`]) could not be answered
    /// because the underlying check stopped without deciding.
    Undecided(Verdict),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::IllFormed(e) => write!(f, "ill-formed history: {e}"),
            CheckError::SpecPanicked(msg) => write!(f, "specification panicked: {msg}"),
            CheckError::Undecided(v) => write!(f, "check undecided: {v}"),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::IllFormed(e) => Some(e),
            CheckError::SpecPanicked(_) | CheckError::Undecided(_) => None,
        }
    }
}

/// Renders a `catch_unwind` payload as a message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<HistoryError> for CheckError {
    fn from(e: HistoryError) -> Self {
        CheckError::IllFormed(e)
    }
}

/// Decides whether `history` is concurrency-aware linearizable with respect
/// to `spec` (Def. 6), with default options.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
///
/// # Examples
///
/// ```
/// # use cal_core::{check, Action, History, Method, ObjectId, ThreadId, Value};
/// # use cal_core::spec::{CaSpec, Invocation};
/// # use cal_core::trace::CaElement;
/// #[derive(Debug)]
/// struct AnySingleton;
/// impl CaSpec for AnySingleton {
///     type State = ();
///     fn initial(&self) {}
///     fn step(&self, _: &(), e: &CaElement) -> Option<()> { (e.len() == 1).then_some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let o = ObjectId(0);
/// let m = Method("noop");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(0), o, m, Value::Unit),
///     Action::response(ThreadId(0), o, m, Value::Unit),
/// ]);
/// let outcome = check::check_cal(&h, &AnySingleton)?;
/// assert!(outcome.verdict.is_cal());
/// # Ok::<(), cal_core::check::CheckError>(())
/// ```
pub fn check_cal<S: CaSpec>(history: &History, spec: &S) -> Result<CheckOutcome, CheckError> {
    check_cal_with(history, spec, &CheckOptions::default())
}

/// Like [`check_cal`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_cal_with<S: CaSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    let spans = history.try_spans()?;
    let (succs, pending_preds) = realtime_order(&spans);
    let mut search = Search::new(
        &spans,
        spec,
        options,
        succs,
        pending_preds,
        MemoTable::Local(HashSet::new()),
        None,
        None,
        Instant::now(),
    );
    let mut matched = BitSet::new(spans.len().max(1));
    let initial = catch_unwind(AssertUnwindSafe(|| spec.initial()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    let found = search.dfs(&mut matched, &initial);
    if let Some(msg) = search.panicked {
        return Err(CheckError::SpecPanicked(msg));
    }
    let verdict = if found {
        Verdict::Cal(CaTrace::from_elements(std::mem::take(&mut search.witness)))
    } else if let Some(reason) = search.interrupted {
        Verdict::Interrupted { reason }
    } else if search.exhausted {
        Verdict::ResourcesExhausted
    } else {
        Verdict::NotCal
    };
    Ok(CheckOutcome { verdict, stats: search.stats })
}

/// Convenience predicate: `Ok(true)` iff the history is CAL w.r.t. `spec`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the default node budget runs out before
/// the search decides.
pub fn is_cal<S: CaSpec>(history: &History, spec: &S) -> Result<bool, CheckError> {
    is_cal_with(history, spec, &CheckOptions::default())
}

/// Like [`is_cal`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// As [`is_cal`]; a deadline or cancellation interrupt also surfaces as
/// [`CheckError::Undecided`].
pub fn is_cal_with<S: CaSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<bool, CheckError> {
    let outcome = check_cal_with(history, spec, options)?;
    match outcome.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        undecided => Err(CheckError::Undecided(undecided)),
    }
}

/// Validates a [`Verdict::Cal`] witness against a (possibly incomplete)
/// history: the specification must accept `witness`, and some completion
/// of `history` (Def. 2) must agree with it (Def. 5).
///
/// The completion is reconstructed from the witness itself: every complete
/// operation must appear in the trace exactly once; a thread's pending
/// invocation may additionally appear once, completed with the return
/// value the trace assigns it; pending invocations absent from the trace
/// are dropped. Returns `false` for ill-formed histories.
///
/// This is the oracle the differential tests use to cross-validate
/// witnesses produced by the parallel checker
/// ([`crate::par::check_cal_par`]).
pub fn witness_explains<S: CaSpec>(history: &History, spec: &S, witness: &CaTrace) -> bool {
    if history.validate().is_err() || !spec.accepts(witness) {
        return false;
    }
    let spans = history.spans();
    // Multiset of witness operations, minus each complete operation.
    let mut counts: std::collections::HashMap<Operation, i64> = std::collections::HashMap::new();
    for op in witness.all_ops() {
        *counts.entry(op).or_insert(0) += 1;
    }
    for span in spans.iter().filter(|s| s.is_complete()) {
        let op = span.operation().expect("complete span has an operation");
        match counts.get_mut(&op) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return false, // a complete operation the trace does not explain
        }
    }
    // What remains must complete pending invocations, at most one per
    // thread (well-formedness guarantees at most one pending per thread).
    let mut completed_pending: Vec<(usize, Operation)> = Vec::new();
    for (op, count) in counts {
        match count {
            0 => {}
            1 => {
                let Some(span) = spans.iter().find(|s| {
                    !s.is_complete()
                        && s.thread == op.thread
                        && s.object == op.object
                        && s.method == op.method
                        && s.arg == op.arg
                }) else {
                    return false; // an op the history never invoked
                };
                completed_pending.push((span.inv, op));
            }
            _ => return false, // duplicated beyond the one pending slot
        }
    }
    // Build the completion: drop uncompleted pending invocations, append
    // responses for completed ones. Appending at the end adds no real-time
    // constraints, matching the checker's treatment of completed pending
    // operations.
    let completed_invs: HashSet<usize> = completed_pending.iter().map(|&(inv, _)| inv).collect();
    let dropped: HashSet<usize> = spans
        .iter()
        .filter(|s| !s.is_complete() && !completed_invs.contains(&s.inv))
        .map(|s| s.inv)
        .collect();
    let mut actions: Vec<crate::action::Action> = history
        .actions()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    for (_, op) in &completed_pending {
        actions.push(op.response());
    }
    let completion = History::from_actions(actions);
    crate::agree::agrees(&completion, witness).is_some()
}

/// How many search ticks (nodes or elements) pass between wall-clock and
/// cancellation polls. A power of two; small enough that even slow spec
/// transitions keep deadline overshoot well under the deadline itself.
const POLL_INTERVAL_MASK: u64 = 255;

/// Precomputes the real-time order over `spans`: `succs[i]` = spans that
/// span `i` precedes; `pending_preds[i]` = number of predecessors of `i`.
pub(crate) fn realtime_order(spans: &[Span]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = spans.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending_preds: Vec<usize> = vec![0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && History::spans_precede(&spans[i], &spans[j]) {
                succs[i].push(j);
                pending_preds[j] += 1;
            }
        }
    }
    (succs, pending_preds)
}

/// The failed-state table behind a search: thread-private for the
/// sequential checker, a reference to a shared sharded table for the
/// parallel one (so cross-worker pruning compounds).
pub(crate) enum MemoTable<'m, K: Eq + Hash> {
    /// A plain private hash set.
    Local(HashSet<K>),
    /// A shared mutex-striped table owned by the parallel driver.
    Shared(&'m crate::par::ShardedMemo<K>),
}

impl<K: Eq + Hash> MemoTable<'_, K> {
    /// The shard `key` lives in, for per-shard memo attribution: always 0
    /// for the private table, the stripe index for the shared one.
    fn shard_of(&self, key: &K) -> usize {
        match self {
            MemoTable::Local(_) => 0,
            MemoTable::Shared(memo) => memo.shard_index(key),
        }
    }

    fn contains(&self, key: &K) -> bool {
        match self {
            MemoTable::Local(set) => set.contains(key),
            MemoTable::Shared(memo) => memo.contains(key),
        }
    }

    fn insert(&mut self, key: K) {
        match self {
            MemoTable::Local(set) => {
                set.insert(key);
            }
            MemoTable::Shared(memo) => {
                memo.insert(key);
            }
        }
    }
}

pub(crate) struct Search<'a, S: CaSpec> {
    spans: &'a [Span],
    spec: &'a S,
    options: &'a CheckOptions,
    pub(crate) stats: CheckStats,
    failed: MemoTable<'a, (BitSet, S::State)>,
    pub(crate) exhausted: bool,
    pub(crate) witness: Vec<CaElement>,
    /// Span indices matched by each witness element, parallel to
    /// `witness`; the decomposition pre-pass uses them to interleave
    /// per-object witnesses without re-deriving op↦span assignments.
    pub(crate) witness_sets: Vec<Vec<usize>>,
    /// succs[i] = span indices that span i real-time-precedes.
    succs: Vec<Vec<usize>>,
    /// Number of yet-unmatched predecessors per span.
    pending_preds: Vec<usize>,
    /// When the search started, for deadline accounting. Parallel workers
    /// share the driver's start so the deadline is global.
    start: Instant,
    /// Monotone work counter driving periodic interrupt polls.
    ticks: u64,
    /// Set once a deadline/cancellation interrupt fires; makes the whole
    /// recursion wind down without expanding further work.
    pub(crate) interrupted: Option<InterruptReason>,
    /// Set when the spec panics inside a guarded call; like `interrupted`
    /// it drains the recursion, and the driver converts it to an error.
    pub(crate) panicked: Option<String>,
    /// Global node counter for parallel searches; when present it replaces
    /// the private `stats.nodes` in the budget check, so `max_nodes`
    /// bounds the *total* across workers.
    shared_nodes: Option<&'a AtomicU64>,
    /// Early-stop latch for parallel searches: fired by the driver when a
    /// sibling worker found a witness (or panicked), making every other
    /// worker wind down. Distinct from the user's [`CheckOptions::cancel`]
    /// so an internal stop is never mistaken for a user cancellation.
    stop: Option<&'a CancelToken>,
    /// The observability sink from [`CheckOptions::sink`], pre-derefed so
    /// the hot path branches on a thin `Option` instead of unwrapping an
    /// `Arc` per event.
    sink: Option<&'a dyn StatsSink>,
}

impl<'a, S: CaSpec> Search<'a, S> {
    /// Assembles a search over precomputed spans and real-time order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        spans: &'a [Span],
        spec: &'a S,
        options: &'a CheckOptions,
        succs: Vec<Vec<usize>>,
        pending_preds: Vec<usize>,
        failed: MemoTable<'a, (BitSet, S::State)>,
        shared_nodes: Option<&'a AtomicU64>,
        stop: Option<&'a CancelToken>,
        start: Instant,
    ) -> Self {
        Search {
            spans,
            spec,
            options,
            stats: CheckStats::default(),
            failed,
            exhausted: false,
            witness: Vec::new(),
            witness_sets: Vec::new(),
            succs,
            pending_preds,
            start,
            ticks: 0,
            interrupted: None,
            panicked: None,
            shared_nodes,
            stop,
            sink: options.sink.as_deref(),
        }
    }

    /// `true` once the search must stop (interrupt already latched, spec
    /// panicked, or a periodic poll observes deadline/cancellation).
    fn should_stop(&mut self) -> bool {
        if self.interrupted.is_some() || self.panicked.is_some() {
            return true;
        }
        self.ticks += 1;
        if self.ticks & POLL_INTERVAL_MASK == 0 {
            if let Some(deadline) = self.options.deadline {
                if self.start.elapsed() >= deadline {
                    return self.latch_interrupt(InterruptReason::DeadlineExceeded);
                }
            }
            if let Some(cancel) = &self.options.cancel {
                if cancel.is_cancelled() {
                    return self.latch_interrupt(InterruptReason::Cancelled);
                }
            }
            if let Some(stop) = self.stop {
                if stop.is_cancelled() {
                    return self.latch_interrupt(InterruptReason::Cancelled);
                }
            }
        }
        false
    }

    /// Latches `reason`, reports it to the sink, and returns `true`.
    fn latch_interrupt(&mut self, reason: InterruptReason) -> bool {
        self.interrupted = Some(reason);
        if let Some(sink) = self.sink {
            sink.on_interrupt(reason);
        }
        true
    }

    /// Charges one node against the budget (the shared counter when
    /// present, the private one otherwise) and latches `exhausted` when
    /// the budget is spent.
    fn charge_node(&mut self) -> bool {
        let spent = match self.shared_nodes {
            Some(counter) => counter.fetch_add(1, Ordering::Relaxed),
            None => self.stats.nodes,
        };
        if spent >= self.options.max_nodes {
            if !self.exhausted {
                if let Some(sink) = self.sink {
                    sink.on_budget_exhausted(self.options.max_nodes);
                }
            }
            self.exhausted = true;
            return false;
        }
        self.stats.nodes += 1;
        if let Some(sink) = self.sink {
            sink.on_node();
        }
        true
    }

    /// [`CaSpec::step`] behind `catch_unwind`: a panicking spec reads as
    /// a rejected transition and latches `panicked`.
    fn step_guarded(&mut self, state: &S::State, element: &CaElement) -> Option<S::State> {
        match catch_unwind(AssertUnwindSafe(|| self.spec.step(state, element))) {
            Ok(next) => next,
            Err(payload) => {
                self.panicked = Some(panic_message(payload));
                None
            }
        }
    }

    /// [`CaSpec::completions_among`] behind `catch_unwind`; a panic yields
    /// no completions and latches `panicked`.
    fn completions_guarded(&mut self, inv: &Invocation, peers: &[Invocation]) -> Vec<crate::ids::Value> {
        match catch_unwind(AssertUnwindSafe(|| self.spec.completions_among(inv, peers))) {
            Ok(values) => values,
            Err(payload) => {
                self.panicked = Some(panic_message(payload));
                Vec::new()
            }
        }
    }

    pub(crate) fn dfs(&mut self, matched: &mut BitSet, state: &S::State) -> bool {
        // Success: every *complete* operation explained; unmatched pending
        // invocations are dropped by the chosen completion (Def. 2).
        if (0..self.spans.len())
            .all(|i| matched.contains(i) || !self.spans[i].is_complete())
        {
            return true;
        }
        if self.should_stop() {
            return false;
        }
        if !self.charge_node() {
            return false;
        }
        if self.options.memoize {
            let key = (matched.clone(), state.clone());
            if self.failed.contains(&key) {
                self.stats.memo_hits += 1;
                if let Some(sink) = self.sink {
                    sink.on_memo_hit(self.failed.shard_of(&key));
                }
                return false;
            }
            if let Some(sink) = self.sink {
                sink.on_memo_miss(self.failed.shard_of(&key));
            }
        }

        // Minimal operations: unmatched, with every ≺H-predecessor matched
        // (tracked incrementally via predecessor counts).
        let minimal: Vec<usize> = (0..self.spans.len())
            .filter(|&i| !matched.contains(i) && self.pending_preds[i] == 0)
            .collect();
        if let Some(sink) = self.sink {
            sink.on_frontier(minimal.len());
        }

        let max_size = self.spec.max_element_size().max(1);
        // Enumerate candidate elements: subsets of minimal ops, one object,
        // pairwise concurrent, size 1..=max_size, each pending member
        // completed with each spec-proposed return value.
        let mut subset: Vec<usize> = Vec::with_capacity(max_size);
        if self.try_subsets(&minimal, 0, max_size, &mut subset, matched, state) {
            return true;
        }
        // An interrupted or panicked subtree is not a *proven* failure —
        // only record states whose expansion genuinely completed.
        if self.options.memoize
            && self.interrupted.is_none()
            && self.panicked.is_none()
            && !self.exhausted
        {
            let key = (matched.clone(), state.clone());
            if let Some(sink) = self.sink {
                sink.on_memo_insert(self.failed.shard_of(&key));
            }
            self.failed.insert(key);
        }
        false
    }

    /// Grows `subset` over `minimal[from..]` and attempts every non-empty
    /// prefix-closed choice as a CA-element.
    fn try_subsets(
        &mut self,
        minimal: &[usize],
        from: usize,
        max_size: usize,
        subset: &mut Vec<usize>,
        matched: &mut BitSet,
        state: &S::State,
    ) -> bool {
        if !subset.is_empty() && self.try_element(subset, matched, state) {
            return true;
        }
        if subset.len() == max_size {
            return false;
        }
        for (k, &i) in minimal.iter().enumerate().skip(from) {
            // Same object as the rest of the subset.
            if let Some(&first) = subset.first() {
                if self.spans[i].object != self.spans[first].object {
                    continue;
                }
                // Pairwise concurrent with all members.
                if !subset
                    .iter()
                    .all(|&j| History::spans_concurrent(&self.spans[i], &self.spans[j]))
                {
                    continue;
                }
            }
            subset.push(i);
            if self.try_subsets(minimal, k + 1, max_size, subset, matched, state) {
                return true;
            }
            subset.pop();
        }
        false
    }

    /// Attempts `subset` as the next CA-element, enumerating completions
    /// for pending members.
    fn try_element(
        &mut self,
        subset: &[usize],
        matched: &mut BitSet,
        state: &S::State,
    ) -> bool {
        // Collect per-member candidate operations. Pending members are
        // completed with values proposed by the spec, which may depend on
        // the other members of the element (e.g. a successful exchange
        // returns its partner's argument).
        let invocations: Vec<Invocation> = subset
            .iter()
            .map(|&i| {
                let s = &self.spans[i];
                Invocation::new(s.thread, s.object, s.method, s.arg)
            })
            .collect();
        let mut choices: Vec<Vec<Operation>> = Vec::with_capacity(subset.len());
        for (k, &i) in subset.iter().enumerate() {
            let s = &self.spans[i];
            let ops = match s.operation() {
                Some(op) => vec![op],
                None => {
                    let peers: Vec<Invocation> = invocations
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, inv)| *inv)
                        .collect();
                    self.completions_guarded(&invocations[k], &peers)
                        .into_iter()
                        .map(|ret| s.operation_with_ret(ret))
                        .collect()
                }
            };
            choices.push(ops);
        }
        if choices.iter().any(Vec::is_empty) {
            return false;
        }
        let mut pick = vec![0usize; subset.len()];
        loop {
            if self.should_stop() {
                return false;
            }
            let ops: Vec<Operation> =
                pick.iter().zip(&choices).map(|(&c, opts)| opts[c]).collect();
            let object = ops[0].object;
            if let Ok(element) = CaElement::new(object, ops) {
                self.stats.elements_tried += 1;
                if let Some(sink) = self.sink {
                    sink.on_element_tried();
                }
                if let Some(next) = self.step_guarded(state, &element) {
                    for &i in subset {
                        matched.insert(i);
                        for s in 0..self.succs[i].len() {
                            let j = self.succs[i][s];
                            self.pending_preds[j] -= 1;
                        }
                    }
                    self.witness.push(element);
                    self.witness_sets.push(subset.to_vec());
                    if self.dfs(matched, &next) {
                        return true;
                    }
                    self.witness.pop();
                    self.witness_sets.pop();
                    for &i in subset {
                        matched.remove(i);
                        for s in 0..self.succs[i].len() {
                            let j = self.succs[i][s];
                            self.pending_preds[j] += 1;
                        }
                    }
                }
            }
            // Advance the mixed-radix counter over completion choices.
            let mut d = 0;
            loop {
                if d == pick.len() {
                    return false;
                }
                pick[d] += 1;
                if pick[d] < choices[d].len() {
                    break;
                }
                pick[d] = 0;
                d += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId, Value};

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    /// An exchanger-shaped spec, inlined to keep cal-core self-contained:
    /// elements are either a pair swapping values or a singleton failure.
    #[derive(Debug)]
    struct MiniExchanger;

    impl CaSpec for MiniExchanger {
        type State = ();

        fn initial(&self) {}

        fn step(&self, _: &(), e: &CaElement) -> Option<()> {
            match e.ops() {
                [a] => {
                    let (ok, v) = a.ret.as_pair()?;
                    (!ok && Value::Int(v) == a.arg).then_some(())
                }
                [a, b] => {
                    let (oka, va) = a.ret.as_pair()?;
                    let (okb, vb) = b.ret.as_pair()?;
                    (oka && okb && a.arg == Value::Int(vb) && b.arg == Value::Int(va))
                        .then_some(())
                }
                _ => None,
            }
        }

        fn max_element_size(&self) -> usize {
            2
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            let v = inv.arg.as_int().unwrap_or(0);
            vec![Value::Pair(false, v)]
        }

        fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
            let mut out = self.completions_of(inv);
            // A successful exchange returns the partner's argument.
            out.extend(peers.iter().filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))));
            out
        }
    }

    fn inv(t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), E, EX, Value::Int(v))
    }

    fn res(t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), E, EX, Value::Pair(ok, v))
    }

    #[test]
    fn empty_history_is_cal() {
        assert!(is_cal(&History::new(), &MiniExchanger).unwrap());
    }

    #[test]
    fn concurrent_swap_is_cal() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        let witness = outcome.verdict.witness().unwrap().clone();
        assert_eq!(witness.len(), 1);
        assert_eq!(witness.elements()[0].len(), 2);
    }

    #[test]
    fn sequential_swap_is_not_cal() {
        // The §3 argument: non-overlapping operations cannot swap.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4), inv(2, 4), res(2, true, 3)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn failed_exchange_is_cal() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn failure_returning_wrong_value_is_not_cal() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 9)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn lone_successful_exchange_is_not_cal() {
        // Fig. 3's H3 prefix: one thread cannot succeed alone.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn pending_invocation_may_be_dropped() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4)]);
        // t2's response is missing; completing it as (true,3) explains t1.
        // Even if it were dropped, t1 alone would fail — so the checker
        // must find the completion.
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn pending_invocation_dropped_when_unexplainable() {
        let h = History::from_actions(vec![inv(1, 3)]);
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn fig3_h1_is_cal() {
        let h = History::from_actions(vec![
            inv(1, 3),
            inv(2, 4),
            inv(3, 7),
            res(1, true, 4),
            res(2, true, 3),
            res(3, false, 7),
        ]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        assert!(outcome.verdict.is_cal());
        assert!(outcome.stats.nodes > 0);
    }

    #[test]
    fn mismatched_swap_values_not_cal() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 9), res(2, true, 3)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn three_way_swap_not_cal() {
        // a→b→c→a cyclic "swap" is not decomposable into legal elements.
        let h = History::from_actions(vec![
            inv(1, 1),
            inv(2, 2),
            inv(3, 3),
            res(1, true, 2),
            res(2, true, 3),
            res(3, true, 1),
        ]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome =
            check_cal_with(&h, &MiniExchanger, &CheckOptions { max_nodes: 0, ..CheckOptions::default() }).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = History::from_actions(vec![res(1, false, 3)]);
        assert!(matches!(check_cal(&h, &MiniExchanger), Err(CheckError::IllFormed(_))));
    }

    #[test]
    fn witness_agrees_with_history() {
        let h = History::from_actions(vec![
            inv(1, 3),
            inv(2, 4),
            res(1, true, 4),
            res(2, true, 3),
            inv(3, 7),
            res(3, false, 7),
        ]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        let witness = outcome.verdict.witness().unwrap();
        assert!(crate::agree::agrees_bool(&h, witness));
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::NotCal.to_string(), "not CAL");
        assert!(Verdict::ResourcesExhausted.to_string().contains("budget"));
        let interrupted = Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded };
        assert!(interrupted.to_string().contains("deadline"));
        assert!(interrupted.is_undecided());
        assert!(Verdict::ResourcesExhausted.is_undecided());
        assert!(!Verdict::NotCal.is_undecided());
    }

    /// A hard unsatisfiable workload: an odd number of identical
    /// concurrent exchanges, all claiming success. Only pairs are legal
    /// elements, so the (memoization-free) search backtracks over every
    /// pairing before concluding NotCal.
    fn hard_history(k: u32) -> History {
        let mut acts: Vec<Action> = (1..=k).map(|t| inv(t, 0)).collect();
        acts.extend((1..=k).map(|t| res(t, true, 0)));
        History::from_actions(acts)
    }

    fn unbounded_no_memo() -> CheckOptions {
        CheckOptions { max_nodes: u64::MAX, memoize: false, ..CheckOptions::default() }
    }

    #[test]
    fn zero_deadline_interrupts_search() {
        let options =
            CheckOptions { deadline: Some(std::time::Duration::ZERO), ..unbounded_no_memo() };
        let outcome = check_cal_with(&hard_history(13), &MiniExchanger, &options).unwrap();
        assert_eq!(
            outcome.verdict,
            Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
        );
        // Partial stats survive the interrupt.
        assert!(outcome.stats.nodes > 0 || outcome.stats.elements_tried > 0);
    }

    #[test]
    fn cancelled_token_interrupts_search() {
        let token = CancelToken::new();
        token.cancel();
        let options = CheckOptions { cancel: Some(token), ..unbounded_no_memo() };
        let outcome = check_cal_with(&hard_history(13), &MiniExchanger, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::Interrupted { reason: InterruptReason::Cancelled });
    }

    #[test]
    fn deadline_does_not_stop_a_decidable_check() {
        let options = CheckOptions::with_deadline(std::time::Duration::from_secs(60));
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome = check_cal_with(&h, &MiniExchanger, &options).unwrap();
        assert!(outcome.verdict.is_cal());
    }

    #[test]
    fn panicking_spec_is_an_error_not_a_panic() {
        #[derive(Debug)]
        struct PanickySpec;
        impl CaSpec for PanickySpec {
            type State = ();
            fn initial(&self) {}
            fn step(&self, _: &(), _: &CaElement) -> Option<()> {
                panic!("spec bug: unreachable method")
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                vec![]
            }
        }
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        match check_cal(&h, &PanickySpec) {
            Err(CheckError::SpecPanicked(msg)) => assert!(msg.contains("spec bug")),
            other => panic!("expected SpecPanicked, got {other:?}"),
        }
    }

    #[test]
    fn is_cal_reports_undecided_as_error() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let options = CheckOptions { max_nodes: 0, ..CheckOptions::default() };
        match is_cal_with(&h, &MiniExchanger, &options) {
            Err(CheckError::Undecided(Verdict::ResourcesExhausted)) => {}
            other => panic!("expected Undecided, got {other:?}"),
        }
    }
}
