//! Concurrency-aware linearizability membership checking (Def. 6).
//!
//! An object system `OS` is CAL with respect to a trace set `𝒯` when every
//! history `H ∈ OS` has a completion `Hᶜ` and a trace `T ∈ 𝒯` such that
//! `Hᶜ ⊑CAL T`. Given one history and a [`CaSpec`], [`check_cal`] decides
//! whether such a completion and trace exist, returning a witness trace.
//!
//! The search generalizes the classical Wing–Gong linearizability search:
//! instead of repeatedly extracting one minimal operation, it extracts a
//! *CA-element* — a set of pairwise-concurrent minimal operations on one
//! object accepted by the specification. Pending invocations may join an
//! element (completing them with a spec-proposed return value) or remain
//! unassigned (dropping them, per Def. 2's completions). Failed search
//! states are memoized on `(matched-set, spec-state)`.
//!
//! This module is a thin *domain* over the shared search kernel
//! ([`crate::engine`]): `CalDomain` enumerates candidate CA-elements,
//! while budgets, deadlines, memoization, observability and parallelism
//! live in the engine and are shared with the classical ([`crate::seqlin`])
//! and interval ([`crate::interval`]) checkers.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};

use crate::bitset::BitSet;
use crate::engine::{self, ExpandObs, SearchDomain, SpecRef};
use crate::history::{HbRelation, History, HistoryError, PartialHistory, Span};
use crate::ids::ObjectId;
use crate::op::Operation;
use crate::spec::{CaSpec, Invocation};
use crate::symmetry::SymClasses;
use crate::trace::{CaElement, CaTrace};

pub use crate::engine::{
    CancelToken, CheckError, CheckOptions, CheckOutcome, CheckStats, InterruptReason, Verdict,
};

/// Decides whether `history` is concurrency-aware linearizable with respect
/// to `spec` (Def. 6), with default options.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
///
/// # Examples
///
/// ```
/// # use cal_core::{check, Action, History, Method, ObjectId, ThreadId, Value};
/// # use cal_core::spec::{CaSpec, Invocation};
/// # use cal_core::trace::CaElement;
/// #[derive(Debug)]
/// struct AnySingleton;
/// impl CaSpec for AnySingleton {
///     type State = ();
///     fn initial(&self) {}
///     fn step(&self, _: &(), e: &CaElement) -> Option<()> { (e.len() == 1).then_some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let o = ObjectId(0);
/// let m = Method("noop");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(0), o, m, Value::Unit),
///     Action::response(ThreadId(0), o, m, Value::Unit),
/// ]);
/// let outcome = check::check_cal(&h, &AnySingleton)?;
/// assert!(outcome.verdict.is_cal());
/// # Ok::<(), cal_core::check::CheckError>(())
/// ```
pub fn check_cal<S: CaSpec>(history: &History, spec: &S) -> Result<CheckOutcome, CheckError> {
    check_cal_with(history, spec, &CheckOptions::default())
}

/// Like [`check_cal`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_cal_with<S: CaSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    let domain = CalDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search(&domain, options)?.map_witness(steps_to_trace))
}

/// Assembles the engine's step sequence into a [`CaTrace`] witness.
pub(crate) fn steps_to_trace(steps: Vec<CalStep>) -> CaTrace {
    CaTrace::from_elements(steps.into_iter().map(|s| s.element).collect())
}

/// Convenience predicate: `Ok(true)` iff the history is CAL w.r.t. `spec`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the default node budget runs out before
/// the search decides.
pub fn is_cal<S: CaSpec>(history: &History, spec: &S) -> Result<bool, CheckError> {
    is_cal_with(history, spec, &CheckOptions::default())
}

/// Like [`is_cal`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// As [`is_cal`]; a deadline or cancellation interrupt also surfaces as
/// [`CheckError::Undecided`].
pub fn is_cal_with<S: CaSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<bool, CheckError> {
    let outcome = check_cal_with(history, spec, options)?;
    match outcome.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        undecided => Err(CheckError::Undecided(undecided)),
    }
}

/// Validates a [`Verdict::Cal`] witness against a (possibly incomplete)
/// history: the specification must accept `witness`, and some completion
/// of `history` (Def. 2) must agree with it (Def. 5).
///
/// The completion is reconstructed from the witness itself: every complete
/// operation must appear in the trace exactly once; a thread's pending
/// invocation may additionally appear once, completed with the return
/// value the trace assigns it; pending invocations absent from the trace
/// are dropped. Returns `false` for ill-formed histories.
///
/// This is the oracle the differential tests use to cross-validate
/// witnesses produced by the parallel checker
/// ([`crate::par::check_cal_par`]).
pub fn witness_explains<S: CaSpec>(history: &History, spec: &S, witness: &CaTrace) -> bool {
    if history.validate().is_err() || !spec.accepts(witness) {
        return false;
    }
    match reconstruct_completion(history, witness) {
        Some((completion, _kept)) => crate::agree::agrees(&completion, witness).is_some(),
        None => false,
    }
}

/// Reconstructs the completion of `history` implied by `witness` (see
/// [`witness_explains`]): every complete operation must appear in the
/// trace exactly once, a pending invocation may appear once completed,
/// absent pending invocations are dropped. Returns the completion plus the
/// surviving spans' original indices (ascending) so order relations built
/// over the original spans can be restricted to the completion.
pub(crate) fn reconstruct_completion(
    history: &History,
    witness: &CaTrace,
) -> Option<(History, Vec<usize>)> {
    let spans = history.spans();
    // Multiset of witness operations, minus each complete operation.
    let mut counts: HashMap<Operation, i64> = HashMap::new();
    for op in witness.all_ops() {
        *counts.entry(op).or_insert(0) += 1;
    }
    for span in spans.iter().filter(|s| s.is_complete()) {
        let op = span.operation().expect("complete span has an operation");
        match counts.get_mut(&op) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return None, // a complete operation the trace does not explain
        }
    }
    // What remains must complete pending invocations, at most one per
    // thread (well-formedness guarantees at most one pending per thread).
    let mut completed_pending: Vec<(usize, Operation)> = Vec::new();
    for (op, count) in counts {
        match count {
            0 => {}
            1 => {
                let Some(span) = spans.iter().find(|s| {
                    !s.is_complete()
                        && s.thread == op.thread
                        && s.object == op.object
                        && s.method == op.method
                        && s.arg == op.arg
                }) else {
                    return None; // an op the history never invoked
                };
                completed_pending.push((span.inv, op));
            }
            _ => return None, // duplicated beyond the one pending slot
        }
    }
    // Build the completion: drop uncompleted pending invocations, append
    // responses for completed ones. Appending at the end adds no real-time
    // constraints, matching the checker's treatment of completed pending
    // operations.
    let completed_invs: HashSet<usize> = completed_pending.iter().map(|&(inv, _)| inv).collect();
    let dropped: HashSet<usize> = spans
        .iter()
        .filter(|s| !s.is_complete() && !completed_invs.contains(&s.inv))
        .map(|s| s.inv)
        .collect();
    let mut actions: Vec<crate::action::Action> = history
        .actions()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, a)| *a)
        .collect();
    for (_, op) in &completed_pending {
        actions.push(op.response());
    }
    let completion = History::from_actions(actions);
    let kept: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_complete() || completed_invs.contains(&s.inv))
        .map(|(i, _)| i)
        .collect();
    Some((completion, kept))
}

/// One step of a CAL witness: the CA-element extracted plus the span
/// indices it matched (used to interleave per-object witnesses under
/// decomposition without re-deriving op↦span assignments).
#[derive(Debug, Clone)]
pub(crate) struct CalStep {
    pub(crate) element: CaElement,
    subset: Vec<usize>,
}

/// The CAL checker as a [`SearchDomain`]: nodes are `(matched-set,
/// spec-state)` pairs (also the memo key), steps are CA-elements, and
/// expansion enumerates subsets of minimal operations that are same-object,
/// pairwise concurrent and accepted by the specification, completing
/// pending members with spec-proposed return values.
pub(crate) struct CalDomain<'a, S: CaSpec> {
    spec: SpecRef<'a, S>,
    history: Cow<'a, History>,
    spans: Vec<Span>,
    /// The happens-before relation the search runs over: real-time `≺H`
    /// for CAL mode, a causal partial order for `--mode causal`.
    hb: HbRelation,
    /// Interchangeability classes for symmetry-reduced memo keys, built
    /// from `hb`'s constraint sets.
    sym: SymClasses,
}

impl<'a, S: CaSpec> CalDomain<'a, S> {
    /// Builds the domain over the real-time order `≺H`, validating the
    /// history.
    pub(crate) fn new(
        history: Cow<'a, History>,
        spec: SpecRef<'a, S>,
    ) -> Result<Self, HistoryError> {
        let spans = history.try_spans()?;
        let hb = HbRelation::real_time(&spans);
        Self::from_parts(history, spec, spans, hb)
    }

    /// Builds the domain over an explicit happens-before relation (the
    /// causal checker's entry point). `hb` must have been built over this
    /// history's spans.
    pub(crate) fn with_order(
        history: Cow<'a, History>,
        spec: SpecRef<'a, S>,
        hb: HbRelation,
    ) -> Result<Self, HistoryError> {
        let spans = history.try_spans()?;
        debug_assert_eq!(hb.len(), spans.len(), "hb relation built over a different history");
        Self::from_parts(history, spec, spans, hb)
    }

    fn from_parts(
        history: Cow<'a, History>,
        spec: SpecRef<'a, S>,
        spans: Vec<Span>,
        hb: HbRelation,
    ) -> Result<Self, HistoryError> {
        let sym = SymClasses::of_order(&spans, &hb);
        Ok(CalDomain { spec, history, spans, hb, sym })
    }

    /// Grows `subset` over `minimal[from..]` and collects every non-empty
    /// prefix-closed choice accepted as a CA-element. Returns `false` when
    /// a cooperative stop was requested mid-enumeration.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        minimal: &[usize],
        from: usize,
        max_size: usize,
        subset: &mut Vec<usize>,
        matched: &BitSet,
        state: &S::State,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(CalStep, (BitSet, S::State))>,
    ) -> bool {
        if !subset.is_empty() && !self.collect_elements(subset, matched, state, obs, out) {
            return false;
        }
        if subset.len() == max_size {
            return true;
        }
        for (k, &i) in minimal.iter().enumerate().skip(from) {
            // Same object as the rest of the subset.
            if let Some(&first) = subset.first() {
                if self.spans[i].object != self.spans[first].object {
                    continue;
                }
                // Pairwise concurrent (under hb) with all members.
                if !subset.iter().all(|&j| self.hb.concurrent(i, j)) {
                    continue;
                }
            }
            subset.push(i);
            let keep = self.grow(minimal, k + 1, max_size, subset, matched, state, obs, out);
            subset.pop();
            if !keep {
                return false;
            }
        }
        true
    }

    /// Attempts `subset` as the next CA-element, enumerating completions
    /// for pending members and recording every accepted successor.
    /// Returns `false` when a cooperative stop was requested.
    fn collect_elements(
        &self,
        subset: &[usize],
        matched: &BitSet,
        state: &S::State,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(CalStep, (BitSet, S::State))>,
    ) -> bool {
        // Collect per-member candidate operations. Pending members are
        // completed with values proposed by the spec, which may depend on
        // the other members of the element (e.g. a successful exchange
        // returns its partner's argument).
        let invocations: Vec<Invocation> = subset
            .iter()
            .map(|&i| {
                let s = &self.spans[i];
                Invocation::new(s.thread, s.object, s.method, s.arg)
            })
            .collect();
        let mut choices: Vec<Vec<Operation>> = Vec::with_capacity(subset.len());
        for (k, &i) in subset.iter().enumerate() {
            let s = &self.spans[i];
            let ops = match s.operation() {
                Some(op) => vec![op],
                None => {
                    let peers: Vec<Invocation> = invocations
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, inv)| *inv)
                        .collect();
                    self.spec
                        .get()
                        .completions_among(&invocations[k], &peers)
                        .into_iter()
                        .map(|ret| s.operation_with_ret(ret))
                        .collect()
                }
            };
            if ops.is_empty() {
                return true;
            }
            choices.push(ops);
        }
        let mut pick = vec![0usize; subset.len()];
        loop {
            if obs.should_stop() {
                return false;
            }
            let ops: Vec<Operation> =
                pick.iter().zip(&choices).map(|(&c, opts)| opts[c]).collect();
            let object = ops[0].object;
            if let Ok(element) = CaElement::new(object, ops) {
                obs.on_element_tried();
                if let Some(next) = self.spec.get().step(state, &element) {
                    let mut next_matched = matched.clone();
                    for &i in subset {
                        next_matched.insert(i);
                    }
                    out.push((
                        CalStep { element, subset: subset.to_vec() },
                        (next_matched, next),
                    ));
                }
            }
            // Advance the mixed-radix counter over completion choices.
            let mut d = 0;
            loop {
                if d == pick.len() {
                    return true;
                }
                pick[d] += 1;
                if pick[d] < choices[d].len() {
                    break;
                }
                pick[d] = 0;
                d += 1;
            }
        }
    }
}

impl<S: CaSpec> SearchDomain for CalDomain<'_, S> {
    type Node = (BitSet, S::State);
    type Step = CalStep;

    fn initial(&self) -> Self::Node {
        (BitSet::new(self.spans.len().max(1)), self.spec.get().initial())
    }

    fn is_goal(&self, node: &Self::Node) -> bool {
        // Success: every *complete* operation explained; unmatched pending
        // invocations are dropped by the chosen completion (Def. 2).
        let (matched, _) = node;
        (0..self.spans.len()).all(|i| matched.contains(i) || !self.spans[i].is_complete())
    }

    fn expand(
        &self,
        node: &Self::Node,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(Self::Step, Self::Node)>,
    ) {
        let (matched, state) = node;
        // Minimal operations: unmatched, with every hb-predecessor matched.
        let minimal: Vec<usize> = (0..self.spans.len())
            .filter(|&i| {
                !matched.contains(i) && self.hb.preds(i).iter().all(|&j| matched.contains(j))
            })
            .collect();
        obs.on_frontier(minimal.len());
        let max_size = self.spec.get().max_element_size().max(1);
        let mut subset: Vec<usize> = Vec::with_capacity(max_size);
        self.grow(&minimal, 0, max_size, &mut subset, matched, state, obs, out);
    }

    fn canonical_key(&self, node: &Self::Node) -> Option<Self::Node> {
        if self.sym.is_trivial() {
            return None;
        }
        self.sym.canonical_bits(&node.0).map(|bits| (bits, node.1.clone()))
    }

    fn decompose(&self) -> Option<Vec<(ObjectId, Self)>> {
        // Per-object decomposition (and the `(maxinv, minresp)` witness
        // merge below) is justified by real-time locality; under a causal
        // partial order the cross-object session edges make objects
        // non-independent, so the parallel driver falls back to
        // root-frontier splitting.
        if !self.hb.is_real_time() {
            return None;
        }
        let objects = self.history.objects();
        if objects.len() < 2 {
            return None;
        }
        let parts: Option<Vec<(ObjectId, S)>> =
            objects.iter().map(|&o| self.spec.get().restrict(o).map(|s| (o, s))).collect();
        Some(
            parts?
                .into_iter()
                .map(|(o, s)| {
                    let sub = CalDomain::new(
                        Cow::Owned(self.history.project_object(o)),
                        SpecRef::Owned(s),
                    )
                    .expect("projection of a well-formed history is well-formed");
                    (o, sub)
                })
                .collect(),
        )
    }

    /// Interleaves per-object witnesses into a single sequence agreeing
    /// with the full history's real-time order; see
    /// [`engine::merge_by_order`] for the greedy argument. The k-th span
    /// of `H|o` is the k-th object-`o` span of `H`: projection preserves
    /// invocation order.
    fn merge_witnesses(&self, parts: Vec<(ObjectId, Vec<CalStep>)>) -> Vec<CalStep> {
        let mut by_object: HashMap<ObjectId, Vec<&Span>> = HashMap::new();
        for span in &self.spans {
            by_object.entry(span.object).or_default().push(span);
        }
        let queues: Vec<VecDeque<(CalStep, usize, usize)>> = parts
            .into_iter()
            .map(|(object, steps)| {
                let object_spans = by_object.get(&object).map(Vec::as_slice).unwrap_or(&[]);
                steps
                    .into_iter()
                    .map(|step| {
                        let maxinv =
                            step.subset.iter().map(|&k| object_spans[k].inv).max().unwrap_or(0);
                        let minresp = step
                            .subset
                            .iter()
                            .map(|&k| object_spans[k].resp.unwrap_or(usize::MAX))
                            .min()
                            .unwrap_or(usize::MAX);
                        (step, maxinv, minresp)
                    })
                    .collect()
            })
            .collect();
        engine::merge_by_order(queues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId, Value};

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    /// An exchanger-shaped spec, inlined to keep cal-core self-contained:
    /// elements are either a pair swapping values or a singleton failure.
    #[derive(Debug)]
    struct MiniExchanger;

    impl CaSpec for MiniExchanger {
        type State = ();

        fn initial(&self) {}

        fn step(&self, _: &(), e: &CaElement) -> Option<()> {
            match e.ops() {
                [a] => {
                    let (ok, v) = a.ret.as_pair()?;
                    (!ok && Value::Int(v) == a.arg).then_some(())
                }
                [a, b] => {
                    let (oka, va) = a.ret.as_pair()?;
                    let (okb, vb) = b.ret.as_pair()?;
                    (oka && okb && a.arg == Value::Int(vb) && b.arg == Value::Int(va))
                        .then_some(())
                }
                _ => None,
            }
        }

        fn max_element_size(&self) -> usize {
            2
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            let v = inv.arg.as_int().unwrap_or(0);
            vec![Value::Pair(false, v)]
        }

        fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
            let mut out = self.completions_of(inv);
            // A successful exchange returns the partner's argument.
            out.extend(peers.iter().filter_map(|p| Some(Value::Pair(true, p.arg.as_int()?))));
            out
        }
    }

    fn inv(t: u32, v: i64) -> Action {
        Action::invoke(ThreadId(t), E, EX, Value::Int(v))
    }

    fn res(t: u32, ok: bool, v: i64) -> Action {
        Action::response(ThreadId(t), E, EX, Value::Pair(ok, v))
    }

    #[test]
    fn empty_history_is_cal() {
        assert!(is_cal(&History::new(), &MiniExchanger).unwrap());
    }

    #[test]
    fn concurrent_swap_is_cal() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        let witness = outcome.verdict.witness().unwrap().clone();
        assert_eq!(witness.len(), 1);
        assert_eq!(witness.elements()[0].len(), 2);
    }

    #[test]
    fn sequential_swap_is_not_cal() {
        // The §3 argument: non-overlapping operations cannot swap.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4), inv(2, 4), res(2, true, 3)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn failed_exchange_is_cal() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn failure_returning_wrong_value_is_not_cal() {
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 9)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn lone_successful_exchange_is_not_cal() {
        // Fig. 3's H3 prefix: one thread cannot succeed alone.
        let h = History::from_actions(vec![inv(1, 3), res(1, true, 4)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn pending_invocation_may_be_dropped() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4)]);
        // t2's response is missing; completing it as (true,3) explains t1.
        // Even if it were dropped, t1 alone would fail — so the checker
        // must find the completion.
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn pending_invocation_dropped_when_unexplainable() {
        let h = History::from_actions(vec![inv(1, 3)]);
        assert!(is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn fig3_h1_is_cal() {
        let h = History::from_actions(vec![
            inv(1, 3),
            inv(2, 4),
            inv(3, 7),
            res(1, true, 4),
            res(2, true, 3),
            res(3, false, 7),
        ]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        assert!(outcome.verdict.is_cal());
        assert!(outcome.stats.nodes > 0);
    }

    #[test]
    fn mismatched_swap_values_not_cal() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 9), res(2, true, 3)]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn three_way_swap_not_cal() {
        // a→b→c→a cyclic "swap" is not decomposable into legal elements.
        let h = History::from_actions(vec![
            inv(1, 1),
            inv(2, 2),
            inv(3, 3),
            res(1, true, 2),
            res(2, true, 3),
            res(3, true, 1),
        ]);
        assert!(!is_cal(&h, &MiniExchanger).unwrap());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome =
            check_cal_with(&h, &MiniExchanger, &CheckOptions { max_nodes: 0, ..CheckOptions::default() }).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = History::from_actions(vec![res(1, false, 3)]);
        assert!(matches!(check_cal(&h, &MiniExchanger), Err(CheckError::IllFormed(_))));
    }

    #[test]
    fn witness_agrees_with_history() {
        let h = History::from_actions(vec![
            inv(1, 3),
            inv(2, 4),
            res(1, true, 4),
            res(2, true, 3),
            inv(3, 7),
            res(3, false, 7),
        ]);
        let outcome = check_cal(&h, &MiniExchanger).unwrap();
        let witness = outcome.verdict.witness().unwrap();
        assert!(crate::agree::agrees_bool(&h, witness));
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::<CaTrace>::NotCal.to_string(), "not CAL");
        assert!(Verdict::<CaTrace>::ResourcesExhausted.to_string().contains("budget"));
        let interrupted =
            Verdict::<CaTrace>::Interrupted { reason: InterruptReason::DeadlineExceeded };
        assert!(interrupted.to_string().contains("deadline"));
        assert!(interrupted.is_undecided());
        assert!(Verdict::<CaTrace>::ResourcesExhausted.is_undecided());
        assert!(!Verdict::<CaTrace>::NotCal.is_undecided());
    }

    /// A hard unsatisfiable workload: an odd number of identical
    /// concurrent exchanges, all claiming success. Only pairs are legal
    /// elements, so the (memoization-free) search backtracks over every
    /// pairing before concluding NotCal.
    fn hard_history(k: u32) -> History {
        let mut acts: Vec<Action> = (1..=k).map(|t| inv(t, 0)).collect();
        acts.extend((1..=k).map(|t| res(t, true, 0)));
        History::from_actions(acts)
    }

    fn unbounded_no_memo() -> CheckOptions {
        CheckOptions { max_nodes: u64::MAX, memoize: false, ..CheckOptions::default() }
    }

    #[test]
    fn zero_deadline_interrupts_search() {
        let options =
            CheckOptions { deadline: Some(std::time::Duration::ZERO), ..unbounded_no_memo() };
        let outcome = check_cal_with(&hard_history(13), &MiniExchanger, &options).unwrap();
        assert_eq!(
            outcome.verdict,
            Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
        );
        // Partial stats survive the interrupt.
        assert!(outcome.stats.nodes > 0 || outcome.stats.elements_tried > 0);
    }

    #[test]
    fn cancelled_token_interrupts_search() {
        let token = CancelToken::new();
        token.cancel();
        let options = CheckOptions { cancel: Some(token), ..unbounded_no_memo() };
        let outcome = check_cal_with(&hard_history(13), &MiniExchanger, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::Interrupted { reason: InterruptReason::Cancelled });
    }

    #[test]
    fn deadline_does_not_stop_a_decidable_check() {
        let options = CheckOptions::with_deadline(std::time::Duration::from_secs(60));
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let outcome = check_cal_with(&h, &MiniExchanger, &options).unwrap();
        assert!(outcome.verdict.is_cal());
    }

    #[test]
    fn panicking_spec_is_an_error_not_a_panic() {
        #[derive(Debug)]
        struct PanickySpec;
        impl CaSpec for PanickySpec {
            type State = ();
            fn initial(&self) {}
            fn step(&self, _: &(), _: &CaElement) -> Option<()> {
                panic!("spec bug: unreachable method")
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                vec![]
            }
        }
        let h = History::from_actions(vec![inv(1, 3), res(1, false, 3)]);
        match check_cal(&h, &PanickySpec) {
            Err(CheckError::SpecPanicked(msg)) => assert!(msg.contains("spec bug")),
            other => panic!("expected SpecPanicked, got {other:?}"),
        }
    }

    #[test]
    fn is_cal_reports_undecided_as_error() {
        let h = History::from_actions(vec![inv(1, 3), inv(2, 4), res(1, true, 4), res(2, true, 3)]);
        let options = CheckOptions { max_nodes: 0, ..CheckOptions::default() };
        match is_cal_with(&h, &MiniExchanger, &options) {
            Err(CheckError::Undecided(Verdict::ResourcesExhausted)) => {}
            other => panic!("expected Undecided, got {other:?}"),
        }
    }
}
