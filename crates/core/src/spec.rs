//! Specification traits: concurrency-aware and sequential object
//! specifications.
//!
//! The paper specifies an object by a set of CA-traces (§4). We represent
//! such a set operationally, as a stateful acceptor: a [`CaSpec`] has an
//! initial state and a partial transition function over CA-elements; the
//! specified trace set is every sequence of elements the acceptor can
//! consume. This matches the paper's examples, which are all prefix-closed.
//!
//! Classical linearizability uses *sequential* specifications; those are
//! [`SeqSpec`]s, acceptors over single operations. [`SeqAsCa`] embeds a
//! sequential specification into the CA world as the singleton-element
//! fragment, recovering Herlihy–Wing linearizability as the special case the
//! paper describes.

use std::fmt::Debug;
use std::hash::Hash;

use crate::ids::{Method, ObjectId, ThreadId, Value};
use crate::op::Operation;
use crate::trace::{CaElement, CaTrace};

/// A not-yet-responded invocation, as presented to a specification when the
/// checker needs candidate return values to complete it (Def. 2's
/// completions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Invocation {
    /// Invoking thread.
    pub thread: ThreadId,
    /// Target object.
    pub object: ObjectId,
    /// Invoked method.
    pub method: Method,
    /// Invocation argument.
    pub arg: Value,
}

impl Invocation {
    /// Creates an invocation descriptor.
    pub fn new(thread: ThreadId, object: ObjectId, method: Method, arg: Value) -> Self {
        Invocation { thread, object, method, arg }
    }

    /// The operation obtained by completing this invocation with `ret`.
    pub fn complete_with(&self, ret: Value) -> Operation {
        Operation::new(self.thread, self.object, self.method, self.arg, ret)
    }
}

/// A concurrency-aware specification: a prefix-closed set of CA-traces,
/// represented as a stateful acceptor (§4 of the paper).
pub trait CaSpec {
    /// Acceptor state. For a stack this is the abstract stack contents; for
    /// the exchanger it is `()` (every element is judged locally).
    type State: Clone + Eq + Hash + Debug;

    /// The initial acceptor state.
    fn initial(&self) -> Self::State;

    /// Attempts to consume one CA-element, returning the successor state if
    /// the element is allowed in `state`.
    fn step(&self, state: &Self::State, element: &CaElement) -> Option<Self::State>;

    /// Upper bound on the number of operations in any CA-element of the
    /// specification. The CAL checker enumerates candidate elements up to
    /// this size; `1` recovers classical linearizability.
    fn max_element_size(&self) -> usize {
        1
    }

    /// Candidate return values for completing a pending invocation
    /// (Def. 2's completions). Return an empty vector to force dropping the
    /// invocation.
    fn completions_of(&self, inv: &Invocation) -> Vec<Value>;

    /// Candidate return values for completing a pending invocation that is
    /// being placed in a CA-element together with `peers` (the invocation
    /// views of the element's other members).
    ///
    /// The default ignores the peers. Specifications whose successful
    /// return values are determined by simultaneous operations — e.g. the
    /// exchanger, where a successful `exchange(v)` returns its partner's
    /// argument — should override this to propose peer-derived values,
    /// otherwise the CAL checker cannot complete pending invocations into
    /// multi-operation elements.
    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        let _ = peers;
        self.completions_of(inv)
    }

    /// Returns `true` if the full trace is accepted from the initial state.
    fn accepts(&self, trace: &CaTrace) -> bool {
        let mut state = self.initial();
        for e in trace.elements() {
            match self.step(&state, e) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }

    /// The specification restricted to a single object, when this
    /// specification constrains its objects independently (CAL locality).
    ///
    /// Contract: if `restrict(o)` returns `Some` for **every** object `o`
    /// occurring in a trace `T`, then `self` accepts `T` iff each
    /// `restrict(o)` accepts the projection `T|o`. The parallel checker
    /// ([`crate::par::check_cal_par_with`]) uses this to check per-object
    /// subhistories independently; returning `None` for any object forces
    /// the whole-history search, which is always sound.
    ///
    /// The default returns `None` (no decomposition).
    fn restrict(&self, object: ObjectId) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = object;
        None
    }
}

/// A sequential specification: a prefix-closed set of sequential histories,
/// represented as a stateful acceptor over single operations.
pub trait SeqSpec {
    /// Acceptor state (e.g. abstract stack contents).
    type State: Clone + Eq + Hash + Debug;

    /// The initial acceptor state.
    fn initial(&self) -> Self::State;

    /// Attempts to apply one operation, returning the successor state if
    /// the operation is legal in `state`.
    fn apply(&self, state: &Self::State, op: &Operation) -> Option<Self::State>;

    /// Candidate return values for completing a pending invocation.
    fn completions_of(&self, inv: &Invocation) -> Vec<Value>;

    /// Returns `true` if the sequence of operations is accepted from the
    /// initial state.
    fn accepts(&self, ops: &[Operation]) -> bool {
        let mut state = self.initial();
        for op in ops {
            match self.apply(&state, op) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }

    /// The specification restricted to a single object; same contract as
    /// [`CaSpec::restrict`]. The default returns `None`.
    fn restrict(&self, object: ObjectId) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = object;
        None
    }
}

/// Embeds a sequential specification as a CA specification whose elements
/// are all singletons.
///
/// CAL with a `SeqAsCa` specification coincides with classical
/// linearizability, which is how the paper relates the two notions.
///
/// # Examples
///
/// ```
/// use cal_core::spec::{CaSpec, SeqAsCa, SeqSpec};
/// # use cal_core::spec::Invocation;
/// # use cal_core::{Operation, Value};
/// #[derive(Debug)]
/// struct AnyOp;
/// impl SeqSpec for AnyOp {
///     type State = ();
///     fn initial(&self) {}
///     fn apply(&self, _: &(), _: &Operation) -> Option<()> { Some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let ca = SeqAsCa::new(AnyOp);
/// assert_eq!(ca.max_element_size(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeqAsCa<S> {
    inner: S,
}

impl<S> SeqAsCa<S> {
    /// Wraps a sequential specification.
    pub fn new(inner: S) -> Self {
        SeqAsCa { inner }
    }

    /// The wrapped sequential specification.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the sequential specification.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SeqSpec> CaSpec for SeqAsCa<S> {
    type State = S::State;

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn step(&self, state: &Self::State, element: &CaElement) -> Option<Self::State> {
        if element.len() != 1 {
            return None;
        }
        self.inner.apply(state, &element.ops()[0])
    }

    fn max_element_size(&self) -> usize {
        1
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        self.inner.completions_of(inv)
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        self.inner.restrict(object).map(SeqAsCa::new)
    }
}

/// A product specification constraining each object independently: object
/// `o`'s elements are judged by `o`'s part alone, so the composed trace set
/// is `{T | ∀o. part_o accepts T|o}`.
///
/// This is exactly the shape [`CaSpec::restrict`]'s locality contract
/// describes, so the parallel checker decomposes a `PerObject` check into
/// independent per-object subchecks. Elements on objects without a part
/// are rejected.
///
/// # Examples
///
/// ```
/// use cal_core::spec::{CaSpec, PerObject, SeqAsCa};
/// # use cal_core::spec::{Invocation, SeqSpec};
/// # use cal_core::{ObjectId, Operation, Value};
/// #[derive(Debug, Clone)]
/// struct AnyOp;
/// impl SeqSpec for AnyOp {
///     type State = ();
///     fn initial(&self) {}
///     fn apply(&self, _: &(), _: &Operation) -> Option<()> { Some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
///     fn restrict(&self, _: ObjectId) -> Option<Self> { Some(AnyOp) }
/// }
/// let spec = PerObject::new(vec![
///     (ObjectId(0), SeqAsCa::new(AnyOp)),
///     (ObjectId(1), SeqAsCa::new(AnyOp)),
/// ]);
/// assert!(spec.restrict(ObjectId(1)).is_some());
/// assert!(spec.restrict(ObjectId(9)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PerObject<S> {
    parts: Vec<(ObjectId, S)>,
}

impl<S> PerObject<S> {
    /// Composes per-object parts. Later duplicates of an object id are
    /// ignored (the first part wins).
    pub fn new(parts: Vec<(ObjectId, S)>) -> Self {
        PerObject { parts }
    }

    /// The per-object parts in composition order.
    pub fn parts(&self) -> &[(ObjectId, S)] {
        &self.parts
    }

    fn position(&self, object: ObjectId) -> Option<usize> {
        self.parts.iter().position(|(o, _)| *o == object)
    }
}

impl<S: CaSpec + Clone> CaSpec for PerObject<S> {
    type State = Vec<S::State>;

    fn initial(&self) -> Self::State {
        self.parts.iter().map(|(_, s)| s.initial()).collect()
    }

    fn step(&self, state: &Self::State, element: &CaElement) -> Option<Self::State> {
        let k = self.position(element.object())?;
        let next = self.parts[k].1.step(&state[k], element)?;
        let mut out = state.clone();
        out[k] = next;
        Some(out)
    }

    fn max_element_size(&self) -> usize {
        self.parts.iter().map(|(_, s)| s.max_element_size()).max().unwrap_or(1)
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        match self.position(inv.object) {
            Some(k) => self.parts[k].1.completions_of(inv),
            None => vec![],
        }
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        match self.position(inv.object) {
            Some(k) => self.parts[k].1.completions_among(inv, peers),
            None => vec![],
        }
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        let k = self.position(object)?;
        Some(PerObject { parts: vec![self.parts[k].clone()] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;

    /// A toy sequential counter: `inc() ▷ n` must return the number of
    /// previous increments.
    #[derive(Debug, Clone, Copy)]
    struct Counter(ObjectId);

    impl SeqSpec for Counter {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
            if op.object != self.0 || op.method != Method("inc") {
                return None;
            }
            (op.ret == Value::Int(*state)).then_some(state + 1)
        }

        fn completions_of(&self, _inv: &Invocation) -> Vec<Value> {
            (0..4).map(Value::Int).collect()
        }
    }

    fn inc(t: u32, ret: i64) -> Operation {
        Operation::new(ThreadId(t), ObjectId(0), Method("inc"), Value::Unit, Value::Int(ret))
    }

    #[test]
    fn seq_accepts_folds_apply() {
        let c = Counter(ObjectId(0));
        assert!(c.accepts(&[inc(1, 0), inc(2, 1), inc(1, 2)]));
        assert!(!c.accepts(&[inc(1, 0), inc(2, 0)]));
        assert!(c.accepts(&[]));
    }

    #[test]
    fn seq_as_ca_accepts_singleton_traces() {
        let ca = SeqAsCa::new(Counter(ObjectId(0)));
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(inc(1, 0)),
            CaElement::singleton(inc(2, 1)),
        ]);
        assert!(ca.accepts(&t));
    }

    #[test]
    fn seq_as_ca_rejects_wide_elements() {
        let ca = SeqAsCa::new(Counter(ObjectId(0)));
        let wide = CaElement::pair(inc(1, 0), inc(2, 1)).unwrap();
        let t = CaTrace::from_elements(vec![wide]);
        assert!(!ca.accepts(&t));
    }

    #[test]
    fn seq_as_ca_rejects_illegal_singleton() {
        let ca = SeqAsCa::new(Counter(ObjectId(0)));
        let t = CaTrace::from_elements(vec![CaElement::singleton(inc(1, 5))]);
        assert!(!ca.accepts(&t));
    }

    #[test]
    fn invocation_complete_with() {
        let inv = Invocation::new(ThreadId(1), ObjectId(0), Method("inc"), Value::Unit);
        let op = inv.complete_with(Value::Int(3));
        assert_eq!(op.ret, Value::Int(3));
        assert_eq!(op.thread, ThreadId(1));
    }

    #[test]
    fn seq_as_ca_forwards_completions() {
        let ca = SeqAsCa::new(Counter(ObjectId(0)));
        let inv = Invocation::new(ThreadId(1), ObjectId(0), Method("inc"), Value::Unit);
        assert_eq!(ca.completions_of(&inv).len(), 4);
        assert_eq!(ca.inner().completions_of(&inv).len(), 4);
    }
}
