//! # cal-core — concurrency-aware linearizability
//!
//! A from-scratch implementation of *concurrency-aware linearizability*
//! (CAL) as defined by Hemed, Rinetzky and Vafeiadis: a generalization of
//! Herlihy–Wing linearizability in which a specification is a set of
//! **CA-traces** — sequences of sets of operations that appear to take
//! effect *simultaneously* — rather than a set of sequential histories.
//! CAL makes it possible to specify concurrency-aware objects such as
//! exchangers, elimination arrays and synchronous queues, whose concurrent
//! behaviour is intentionally different from any sequential behaviour.
//!
//! The crate provides:
//!
//! - the formal vocabulary: [`Action`]s, [`History`]s with projections and
//!   the real-time order (Defs. 1–3), [`Operation`]s, [`CaElement`]s and
//!   [`CaTrace`]s (Def. 4);
//! - the agreement relation `H ⊑CAL T` ([`agree`], Def. 5);
//! - a CAL membership checker over stateful trace specifications
//!   ([`check`], Def. 6, [`spec::CaSpec`]);
//! - a classical linearizability checker as the singleton-element special
//!   case ([`seqlin`], [`spec::SeqSpec`]);
//! - the `F_o` view-function machinery for compositional verification of
//!   objects built from subobjects ([`compose`]);
//! - generators of sound and adversarial histories ([`gen`]).
//!
//! ## Example: a successful exchange is CAL but not linearizable
//!
//! ```
//! use cal_core::{check, Action, History, Method, ObjectId, ThreadId, Value};
//! use cal_core::spec::{CaSpec, Invocation};
//! use cal_core::trace::CaElement;
//!
//! /// Exchanger spec: a CA-element is a matched swap pair or a singleton
//! /// failure.
//! #[derive(Debug)]
//! struct Exchanger;
//! impl CaSpec for Exchanger {
//!     type State = ();
//!     fn initial(&self) {}
//!     fn step(&self, _: &(), e: &CaElement) -> Option<()> {
//!         match e.ops() {
//!             [a] => {
//!                 let (ok, v) = a.ret.as_pair()?;
//!                 (!ok && Value::Int(v) == a.arg).then_some(())
//!             }
//!             [a, b] => {
//!                 let (oka, va) = a.ret.as_pair()?;
//!                 let (okb, vb) = b.ret.as_pair()?;
//!                 (oka && okb && a.arg == Value::Int(vb) && b.arg == Value::Int(va))
//!                     .then_some(())
//!             }
//!             _ => None,
//!         }
//!     }
//!     fn max_element_size(&self) -> usize { 2 }
//!     fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
//!         vec![Value::Pair(false, inv.arg.as_int().unwrap_or(0))]
//!     }
//! }
//!
//! let e = ObjectId(0);
//! let ex = Method("exchange");
//! // Two overlapping exchanges that swapped 3 ↔ 4:
//! let h = History::from_actions(vec![
//!     Action::invoke(ThreadId(1), e, ex, Value::Int(3)),
//!     Action::invoke(ThreadId(2), e, ex, Value::Int(4)),
//!     Action::response(ThreadId(1), e, ex, Value::Pair(true, 4)),
//!     Action::response(ThreadId(2), e, ex, Value::Pair(true, 3)),
//! ]);
//! assert!(check::is_cal(&h, &Exchanger).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod agree;
pub mod bitset;
pub mod causal;
pub mod check;
pub mod compose;
pub mod dsl;
pub mod engine;
pub mod format;
pub mod fpmemo;
pub mod gen;
pub mod history;
pub mod ids;
pub mod interval;
pub mod obs;
pub mod op;
pub mod par;
pub mod seqlin;
pub mod spec;
pub mod stream;
pub mod symmetry;
pub mod text;
pub mod trace;

pub use action::{Action, ActionKind};
pub use history::{History, HistoryError, Span};
pub use ids::{Method, ObjectId, ThreadId, Value};
pub use op::Operation;
pub use trace::{CaElement, CaElementError, CaTrace};
