//! Generation of histories from CA-traces, random interleavings and
//! adversarial mutations.
//!
//! These helpers turn specification-level traces into concrete histories
//! (sound inputs for the checkers), loosen them while preserving agreement,
//! and inject mutations that are expected to break agreement — the raw
//! material for checker validation tests and the scaling benchmarks.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::action::Action;
use crate::history::History;
use crate::trace::CaTrace;

/// Renders a CA-trace as a complete history that agrees with it: for each
/// element in order, all invocations are emitted, then all responses.
/// Operations within an element overlap pairwise; distinct elements do not
/// overlap.
///
/// # Examples
///
/// ```
/// use cal_core::{gen, CaElement, CaTrace, Method, ObjectId, Operation, ThreadId, Value};
/// let e = ObjectId(0);
/// let ex = Method("exchange");
/// let swap = CaElement::pair(
///     Operation::new(ThreadId(1), e, ex, Value::Int(3), Value::Pair(true, 4)),
///     Operation::new(ThreadId(2), e, ex, Value::Int(4), Value::Pair(true, 3)),
/// ).unwrap();
/// let trace = CaTrace::from_elements(vec![swap]);
/// let h = gen::render(&trace);
/// assert!(h.is_complete());
/// assert!(cal_core::agree::agrees_bool(&h, &trace));
/// ```
pub fn render(trace: &CaTrace) -> History {
    let mut actions = Vec::with_capacity(trace.total_ops() * 2);
    for element in trace.elements() {
        for op in element.ops() {
            actions.push(op.invocation());
        }
        for op in element.ops() {
            actions.push(op.response());
        }
    }
    History::from_actions(actions)
}

/// Renders a CA-trace as a history with extra overlap: starting from
/// [`render`], invocation actions are repeatedly hoisted earlier past
/// actions of other threads. Hoisting an invocation only *removes*
/// real-time orderings, so the result still agrees with the trace — but it
/// exercises the checkers on histories where many operations overlap.
pub fn render_loose<R: Rng>(trace: &CaTrace, rng: &mut R, moves: usize) -> History {
    let mut actions: Vec<Action> = render(trace).actions().to_vec();
    for _ in 0..moves {
        if actions.len() < 2 {
            break;
        }
        let i = rng.gen_range(1..actions.len());
        if actions[i].is_invoke() && actions[i - 1].thread() != actions[i].thread() {
            actions.swap(i - 1, i);
        }
    }
    History::from_actions(actions)
}

/// Renders a CA-trace as a history with *guaranteed* overlap: consecutive
/// elements are grouped into windows of up to `window` elements (closing a
/// window early when a thread would appear twice); all invocations of a
/// window are emitted before any of its responses. Operations in one
/// window are pairwise concurrent, so a checker that does not know the
/// witness faces a branching factor of about `window` — the adversarial
/// input for the modular-vs-monolithic experiment.
///
/// The result agrees with the trace: order across windows is preserved,
/// and widening overlap only removes real-time constraints.
pub fn render_windowed(trace: &CaTrace, window: usize) -> History {
    let window = window.max(1);
    let mut actions = Vec::with_capacity(trace.total_ops() * 2);
    let mut pending: Vec<&crate::trace::CaElement> = Vec::new();
    let flush = |pending: &mut Vec<&crate::trace::CaElement>,
                     actions: &mut Vec<Action>| {
        for e in pending.iter() {
            for op in e.ops() {
                actions.push(op.invocation());
            }
        }
        for e in pending.iter() {
            for op in e.ops() {
                actions.push(op.response());
            }
        }
        pending.clear();
    };
    for element in trace.elements() {
        let thread_clash = pending.iter().any(|p| {
            element.ops().iter().any(|op| p.mentions_thread(op.thread))
        });
        if thread_clash || pending.len() == window {
            flush(&mut pending, &mut actions);
        }
        pending.push(element);
    }
    flush(&mut pending, &mut actions);
    History::from_actions(actions)
}

/// Interleaves per-thread sequential action lists into one history,
/// preserving each thread's order, choosing the next thread uniformly at
/// random. The result is well-formed whenever each input list is a
/// sequential history of a distinct thread.
pub fn interleave<R: Rng>(per_thread: &[Vec<Action>], rng: &mut R) -> History {
    let mut cursors = vec![0usize; per_thread.len()];
    let mut actions = Vec::with_capacity(per_thread.iter().map(Vec::len).sum());
    loop {
        let live: Vec<usize> = cursors
            .iter()
            .enumerate()
            .filter(|(t, &c)| c < per_thread[*t].len())
            .map(|(t, _)| t)
            .collect();
        let Some(&t) = live.choose(rng) else { break };
        actions.push(per_thread[t][cursors[t]]);
        cursors[t] += 1;
    }
    History::from_actions(actions)
}

/// Mutations that corrupt a history in ways a sound checker must notice
/// (when the mutated value is semantically illegal for the specification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace a response's return value.
    CorruptReturn,
    /// Delete a response, leaving its invocation pending.
    DropResponse,
    /// Swap two adjacent actions of different threads.
    SwapAdjacent,
}

/// Applies `mutation` at a random applicable position, using `fresh_ret` to
/// produce a replacement return value for [`Mutation::CorruptReturn`].
/// Returns `None` when the history has no applicable position.
pub fn mutate<R: Rng>(
    history: &History,
    mutation: Mutation,
    rng: &mut R,
    fresh_ret: impl Fn(&Action) -> crate::ids::Value,
) -> Option<History> {
    let actions = history.actions();
    match mutation {
        Mutation::CorruptReturn => {
            let responses: Vec<usize> =
                (0..actions.len()).filter(|&i| actions[i].is_response()).collect();
            let &i = responses.as_slice().choose(rng)?;
            let a = &actions[i];
            let mut out = actions.to_vec();
            out[i] = Action::response(a.thread(), a.object(), a.method(), fresh_ret(a));
            Some(History::from_actions(out))
        }
        Mutation::DropResponse => {
            // Only a thread's final response may be dropped: removing an
            // earlier one would make its next invocation nested and the
            // history ill-formed.
            let responses: Vec<usize> = (0..actions.len())
                .filter(|&i| {
                    actions[i].is_response()
                        && actions[i + 1..].iter().all(|a| a.thread() != actions[i].thread())
                })
                .collect();
            let &i = responses.as_slice().choose(rng)?;
            let mut out = actions.to_vec();
            out.remove(i);
            Some(History::from_actions(out))
        }
        Mutation::SwapAdjacent => {
            let sites: Vec<usize> = (1..actions.len())
                .filter(|&i| actions[i - 1].thread() != actions[i].thread())
                .collect();
            let &i = sites.as_slice().choose(rng)?;
            let mut out = actions.to_vec();
            out.swap(i - 1, i);
            Some(History::from_actions(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agree::agrees_bool;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::op::Operation;
    use crate::trace::CaElement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    fn op(t: u32, arg: i64, ok: bool, ret: i64) -> Operation {
        Operation::new(ThreadId(t), E, EX, Value::Int(arg), Value::Pair(ok, ret))
    }

    fn sample_trace() -> CaTrace {
        CaTrace::from_elements(vec![
            CaElement::pair(op(1, 3, true, 4), op(2, 4, true, 3)).unwrap(),
            CaElement::singleton(op(3, 7, false, 7)),
            CaElement::pair(op(1, 5, true, 6), op(3, 6, true, 5)).unwrap(),
        ])
    }

    #[test]
    fn render_is_complete_and_agrees() {
        let t = sample_trace();
        let h = render(&t);
        assert!(h.is_complete());
        assert!(agrees_bool(&h, &t));
        assert_eq!(h.len(), t.total_ops() * 2);
    }

    #[test]
    fn render_loose_stays_well_formed_and_agrees() {
        let t = sample_trace();
        let mut rng = StdRng::seed_from_u64(7);
        for moves in [0, 1, 5, 50] {
            let h = render_loose(&t, &mut rng, moves);
            assert!(h.is_well_formed(), "loose render ill-formed at {moves} moves");
            assert!(h.is_complete());
            assert!(agrees_bool(&h, &t), "loose render disagrees at {moves} moves");
        }
    }

    #[test]
    fn render_windowed_agrees_and_overlaps() {
        let t = sample_trace();
        for window in [1, 2, 3, 8] {
            let h = render_windowed(&t, window);
            assert!(h.is_well_formed(), "window {window} ill-formed");
            assert!(h.is_complete());
            assert!(agrees_bool(&h, &t), "window {window} disagrees");
        }
        // window 1 coincides with the strict render.
        assert_eq!(render_windowed(&t, 1), render(&t));
    }

    #[test]
    fn render_windowed_closes_window_on_thread_clash() {
        // Two consecutive elements of the same thread can never overlap.
        let t = CaTrace::from_elements(vec![
            CaElement::singleton(op(1, 1, false, 1)),
            CaElement::singleton(op(1, 2, false, 2)),
        ]);
        let h = render_windowed(&t, 4);
        assert!(h.is_well_formed());
        let spans = h.spans();
        assert!(History::spans_precede(&spans[0], &spans[1]));
    }

    #[test]
    fn interleave_preserves_thread_order() {
        let t1 = vec![
            Action::invoke(ThreadId(1), E, EX, Value::Int(1)),
            Action::response(ThreadId(1), E, EX, Value::Pair(false, 1)),
        ];
        let t2 = vec![
            Action::invoke(ThreadId(2), E, EX, Value::Int(2)),
            Action::response(ThreadId(2), E, EX, Value::Pair(false, 2)),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let h = interleave(&[t1.clone(), t2.clone()], &mut rng);
            assert!(h.is_well_formed());
            assert_eq!(h.len(), 4);
        }
    }

    #[test]
    fn corrupt_return_changes_a_response() {
        let t = sample_trace();
        let h = render(&t);
        let mut rng = StdRng::seed_from_u64(3);
        let bad =
            mutate(&h, Mutation::CorruptReturn, &mut rng, |_| Value::Pair(true, 999)).unwrap();
        assert_ne!(bad, h);
        assert!(!agrees_bool(&bad, &t), "corrupted return should break agreement");
    }

    #[test]
    fn drop_response_makes_history_incomplete() {
        let t = sample_trace();
        let h = render(&t);
        let mut rng = StdRng::seed_from_u64(4);
        let bad = mutate(&h, Mutation::DropResponse, &mut rng, |a| a.ret().unwrap()).unwrap();
        assert!(bad.is_well_formed());
        assert!(!bad.is_complete());
    }

    #[test]
    fn swap_adjacent_keeps_thread_order() {
        let t = sample_trace();
        let h = render(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let swapped = mutate(&h, Mutation::SwapAdjacent, &mut rng, |a| a.ret().unwrap()).unwrap();
        assert!(swapped.is_well_formed());
    }

    #[test]
    fn mutations_on_empty_history_return_none() {
        let h = History::new();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(mutate(&h, Mutation::CorruptReturn, &mut rng, |a| a.ret().unwrap()).is_none());
        assert!(mutate(&h, Mutation::DropResponse, &mut rng, |a| a.ret().unwrap()).is_none());
        assert!(mutate(&h, Mutation::SwapAdjacent, &mut rng, |a| a.ret().unwrap()).is_none());
    }
}
