//! Online (streaming) CAL checking with bounded memory.
//!
//! The batch checkers ([`crate::check`], [`crate::seqlin`],
//! [`crate::interval`]) need the complete history up front, so a live
//! deployment must either buffer unboundedly or not check at all while
//! traffic flows. [`StreamChecker`] closes that gap: events are pushed
//! one [`Action`] at a time, the checker keeps only a bounded *window* of
//! not-yet-decided actions, and everything before the window is
//! *retired* — collapsed into the set of specification states reachable
//! by some witness of the retired prefix. Steady-state memory is
//! `O(window + states)`, not `O(history)`.
//!
//! ## The retirement invariant
//!
//! Let `R` be the retired prefix and `W` the current window, so the
//! admitted history is `R · W`. The checker maintains:
//!
//! > `states` is exactly the set of spec states `q` such that some
//! > CA-trace witnessing `R` (Def. 5 agreement + spec acceptance) leaves
//! > the specification in `q`.
//!
//! Retirement happens only at *closed boundaries*: window cuts where
//! every operation invoked before the cut has responded (or, under
//! forced retirement, was explicitly abandoned) before it. Real-time
//! order then forces every
//! CA-element of any witness to fall entirely on one side of the cut, so
//! witnesses of `R · seg` factor as (witness of `R`) · (witness of `seg`
//! from the reached state) — the invariant is preserved *exactly* by
//! taking the union, over current states, of the end states of an
//! exhaustive segment enumeration ([`crate::engine::enumerate_goals`]).
//! Consequences:
//!
//! - `states = ∅` means no completion of `R` is explainable; since CAL
//!   is prefix-closed (for the prefix-closed specifications this crate
//!   ships), **no extension can recover** — the violation verdict is
//!   final and the stream is refused.
//! - A checkpoint verdict for `R · W` is computed by searching only `W`
//!   from each reachable state: exact parity with a batch check of the
//!   full history.
//! - Failed-node memo entries never survive a boundary: each
//!   per-checkpoint search runs with a fresh memo (a node refuted
//!   against one window can become satisfiable when new events arrive),
//!   and the enumeration's visited set lives and dies with the call.
//!
//! ## Graceful degradation
//!
//! Everything that can go wrong is a *result*, never a panic or an
//! abort:
//!
//! - **Ill-formed events** (nested invocation, orphan response) are
//!   rejected with the matching [`HistoryError`] and do not perturb the
//!   window ([`Push::Rejected`]).
//! - **Window saturation**: when the invocation cap is reached and
//!   retirement cannot free space, [`StreamChecker::push`] returns
//!   [`Push::Saturated`] so the caller can apply backpressure (pause
//!   reads, NAK clients). If the caller gives up it calls
//!   [`StreamChecker::degrade`], latching the explicit
//!   `undecided: window exceeded` verdict instead of growing without
//!   bound. Admitted events are never dropped, so a violation found in
//!   the frozen window is still sound.
//! - **Abandoned clients** ([`StreamChecker::abandon_thread`]): a
//!   pending operation whose client died rides in the window with the
//!   exact batch pending-op semantics — the search may complete it with
//!   the specification's proposed return values (Def. 2's completions;
//!   for the dual stack with timeouts this is exactly the
//!   `CANCEL_SENTINEL` timeout-admission path) or drop it — for as long
//!   as memory allows, so a late-arriving rendezvous partner can still
//!   explain it. Only under real window pressure is it *sealed*: a
//!   forced retirement boundary commits it against events up to that
//!   boundary only. Sealing can under-approximate acceptance (a later
//!   partner could have explained the op), so under pressure a
//!   rendezvous spec may see a false violation — never a false
//!   acceptance.
//!
//! ## Causal mode
//!
//! With [`StreamOptions::causal`] set, every window search runs over the
//! causal happens-before order — per-thread session order plus edges
//! declared via [`StreamChecker::push_hb_edge`] — instead of real time
//! (see [`crate::causal`]). Two streaming-specific rules keep the
//! retirement invariant sound under a partial order:
//!
//! - **Cuts must be hb-closed, not just time-closed**: a segment retires
//!   only when every operation in it happens-before every operation
//!   still in the window *and* every future operation of every
//!   still-live thread (a future operation session-follows its thread's
//!   last seen one, so the thread's last window operation stands proxy
//!   for it). Time-closure alone would commit orders a partial order
//!   does not impose. The rule makes the honest trade explicit:
//!   unsynchronized multi-thread streams never advance the frontier —
//!   causal checking of such streams is inherently unbounded, and the
//!   window fills until backpressure — while streams whose declared
//!   edges chain the threads together retire fluidly. A thread never
//!   seen before the cut cannot be anticipated: its later operations
//!   may cost a false violation, never a false acceptance (the factored
//!   witness set only ever shrinks, matching the sealing caveat above).
//!   [`StreamChecker::finish`] closes the stream — no operation follows,
//!   so the future-operation half of the rule lapses, the residual
//!   window retires against its own contents and declared edges alone,
//!   and further events are refused.
//! - **Late edges are quarantined**: an edge whose *target* is already
//!   retired arrives after its segment was enumerated without it, so
//!   neither verdict can be trusted going forward — the stream latches
//!   `undecided: late happens-before edge` and refuses further events.
//!   Declare edges no later than their target operation's response.

use std::borrow::Cow;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::action::Action;
use crate::check::CalDomain;
use crate::engine::{self, CheckOptions, CheckStats, InterruptReason, SpecRef, Verdict};
use crate::history::{HbRelation, History, HistoryError, PartialHistory, Span};
use crate::ids::{ThreadId, Value};
use crate::obs::push_field;
use crate::op::Operation;
use crate::spec::{CaSpec, Invocation};
use crate::trace::{CaElement, CaTrace};

/// Tuning knobs for a [`StreamChecker`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Hard cap on *open or undecided invocations* buffered in the
    /// window, in actions (each op contributes its invocation and, once
    /// it arrives, its response, so the window holds at most
    /// `2 * max_window` actions). `0` means unbounded. When the cap is
    /// hit and retirement cannot free space, `push` returns
    /// [`Push::Saturated`]. Responses are always admitted — they only
    /// ever help the window drain.
    pub max_window: usize,
    /// Run a [`StreamChecker::checkpoint`] automatically every this many
    /// admitted actions. `0` disables automatic checkpoints (the caller
    /// drives them, e.g. on a timer).
    pub checkpoint_every: usize,
    /// Upper bound on the reachable-state set carried across a
    /// retirement boundary. A segment whose enumeration exceeds it is
    /// kept in the window instead (bounded memory beats eager GC).
    pub max_states: usize,
    /// Budget/deadline/sink for each per-checkpoint search and each
    /// retirement enumeration.
    pub check: CheckOptions,
    /// Check against the causal happens-before order (session order plus
    /// [`StreamChecker::push_hb_edge`] edges) instead of real time. See
    /// the module docs' causal-mode rules. Off by default; when off,
    /// declared edges are accepted but inert, matching the batch parsers'
    /// treatment of annotated inputs in CAL mode.
    pub causal: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            max_window: 4096,
            checkpoint_every: 128,
            max_states: 64,
            check: CheckOptions::default(),
            causal: false,
        }
    }
}

/// What happened to one pushed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Push {
    /// The event entered the window.
    Admitted,
    /// The event does not extend a well-formed history; it was
    /// quarantined and the window is unchanged.
    Rejected(HistoryError),
    /// The invocation cap is reached and retirement could not free
    /// space. The event was *not* admitted: apply backpressure and retry
    /// it, or give up via [`StreamChecker::degrade`].
    Saturated,
    /// The stream is closed: the verdict is final (violation) or the
    /// checker has degraded. The event was not admitted.
    Refused,
}

/// Why a stream is (currently) undecided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndecidedWhy {
    /// The window cap was hit, backpressure failed, and the caller chose
    /// explicit degradation over unbounded growth.
    WindowExceeded,
    /// A per-checkpoint search ran out of node budget.
    ResourcesExhausted,
    /// A per-checkpoint search was interrupted (deadline/cancellation).
    Interrupted(InterruptReason),
    /// The specification panicked during a search; see
    /// [`StreamChecker::last_error`].
    CheckerError,
    /// Causal mode: a declared happens-before edge arrived after its
    /// target operation was retired. The retired prefix was enumerated
    /// without the edge, so no further verdict can be trusted; this
    /// latches (see the module docs).
    LateHbEdge,
}

impl fmt::Display for UndecidedWhy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UndecidedWhy::WindowExceeded => f.write_str("window exceeded"),
            UndecidedWhy::ResourcesExhausted => f.write_str("node budget exhausted"),
            UndecidedWhy::Interrupted(r) => write!(f, "interrupted ({r})"),
            UndecidedWhy::CheckerError => f.write_str("checker error"),
            UndecidedWhy::LateHbEdge => f.write_str("late happens-before edge"),
        }
    }
}

/// The stream's verdict as of the last checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamVerdict {
    /// Every admitted event is explainable: some witness covers the
    /// retired prefix and the current window.
    Consistent,
    /// No witness explains some admitted prefix. Final: CAL is
    /// prefix-closed, so no future event can repair it.
    Violation,
    /// Not (currently) decidable, for the stated reason. Unlike
    /// [`StreamVerdict::Violation`] this can resolve at a later
    /// checkpoint — except `WindowExceeded`, which latches.
    Undecided(UndecidedWhy),
}

impl fmt::Display for StreamVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamVerdict::Consistent => f.write_str("consistent"),
            StreamVerdict::Violation => f.write_str("violation"),
            StreamVerdict::Undecided(why) => write!(f, "undecided: {why}"),
        }
    }
}

/// Monotone counters describing a stream's life so far. The
/// `retired_*` counters are how tests verify the memory bound without
/// measuring RSS: `retired_actions + window == events`, always.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events admitted into the window.
    pub events: u64,
    /// Ill-formed events quarantined ([`Push::Rejected`]).
    pub rejected: u64,
    /// Events turned away because the window was saturated
    /// ([`Push::Saturated`]).
    pub saturated: u64,
    /// Events turned away after the stream closed ([`Push::Refused`]).
    pub refused: u64,
    /// Current window size, in actions.
    pub window: usize,
    /// High-water mark of `window`.
    pub peak_window: usize,
    /// Current reachable-state set size.
    pub states: usize,
    /// High-water mark of `states`.
    pub peak_states: usize,
    /// Operations garbage-collected out of the window.
    pub retired_ops: u64,
    /// Actions garbage-collected out of the window.
    pub retired_actions: u64,
    /// Closed segments retired.
    pub retired_segments: u64,
    /// Checkpoints run (automatic + explicit + final).
    pub checkpoints: u64,
    /// Pending operations sealed because their client abandoned them.
    pub abandoned: u64,
    /// Happens-before edges declared via
    /// [`StreamChecker::push_hb_edge`] (counted whether or not causal
    /// mode is on).
    pub hb_edges: u64,
    /// Declared edges quarantined because their target was already
    /// retired ([`UndecidedWhy::LateHbEdge`]).
    pub late_edges: u64,
    /// Accumulated search-kernel work across every checkpoint search and
    /// retirement enumeration.
    pub search: CheckStats,
}

/// A point-in-time snapshot of a stream, in the same spirit (and JSON
/// wire style) as [`crate::obs::SearchReport`].
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The verdict, rendered ([`StreamVerdict`]'s `Display`).
    pub verdict: String,
    /// Wall-clock milliseconds the stream has been running.
    pub wall_ms: f64,
    /// The configured invocation cap (0 = unbounded).
    pub max_window: usize,
    /// The counters at snapshot time.
    pub stats: StreamStats,
}

impl StreamReport {
    /// Renders the report as a single-line JSON object, the
    /// `--stats-json` wire format of `cal-serve`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_field(&mut out, "verdict", &format!("\"{}\"", self.verdict));
        push_field(&mut out, "wall_ms", &format!("{:.3}", self.wall_ms));
        push_field(&mut out, "max_window", &self.max_window.to_string());
        let s = &self.stats;
        push_field(&mut out, "events", &s.events.to_string());
        push_field(&mut out, "rejected", &s.rejected.to_string());
        push_field(&mut out, "saturated", &s.saturated.to_string());
        push_field(&mut out, "refused", &s.refused.to_string());
        push_field(&mut out, "window", &s.window.to_string());
        push_field(&mut out, "peak_window", &s.peak_window.to_string());
        push_field(&mut out, "states", &s.states.to_string());
        push_field(&mut out, "peak_states", &s.peak_states.to_string());
        push_field(&mut out, "retired_ops", &s.retired_ops.to_string());
        push_field(&mut out, "retired_actions", &s.retired_actions.to_string());
        push_field(&mut out, "retired_segments", &s.retired_segments.to_string());
        push_field(&mut out, "checkpoints", &s.checkpoints.to_string());
        push_field(&mut out, "abandoned", &s.abandoned.to_string());
        push_field(&mut out, "hb_edges", &s.hb_edges.to_string());
        push_field(&mut out, "late_edges", &s.late_edges.to_string());
        push_field(&mut out, "nodes", &s.search.nodes.to_string());
        push_field(&mut out, "elements_tried", &s.search.elements_tried.to_string());
        push_field(&mut out, "memo_hits", &s.search.memo_hits.to_string());
        out.truncate(out.len() - 2);
        out.push('}');
        out
    }

    /// One compact human line: verdict plus headline counters.
    pub fn summary(&self) -> String {
        let s = &self.stats;
        format!(
            "{} in {:.1}ms: {} events, window {} (peak {}), {} states (peak {}), \
             {} ops retired in {} segments, {} checkpoints, {} nodes",
            self.verdict,
            self.wall_ms,
            s.events,
            s.window,
            s.peak_window,
            s.states,
            s.peak_states,
            s.retired_ops,
            s.retired_segments,
            s.checkpoints,
            s.search.nodes,
        )
    }
}

/// A [`CaSpec`] started from an arbitrary state: the wrapper that lets
/// window segments be searched "from the middle" of the retired prefix.
struct ResumeSpec<'s, S: CaSpec> {
    inner: &'s S,
    start: S::State,
}

impl<S: CaSpec> CaSpec for ResumeSpec<'_, S> {
    type State = S::State;

    fn initial(&self) -> S::State {
        self.start.clone()
    }

    fn step(&self, state: &S::State, element: &CaElement) -> Option<S::State> {
        self.inner.step(state, element)
    }

    fn max_element_size(&self) -> usize {
        self.inner.max_element_size()
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        self.inner.completions_of(inv)
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        self.inner.completions_among(inv, peers)
    }
}

/// The incremental checker: push events, read verdicts, stay within a
/// memory bound. See the module docs for the invariant.
pub struct StreamChecker<S: CaSpec> {
    spec: S,
    opts: StreamOptions,
    /// Undecided suffix of the admitted history.
    window: Vec<Action>,
    /// Spec states reachable by some witness of the retired prefix.
    states: Vec<S::State>,
    /// Open invocations: `(thread, index into window)`.
    pending: Vec<(ThreadId, usize)>,
    /// Window indices of pending invocations whose client is gone.
    abandoned: Vec<usize>,
    /// Causal mode: declared happens-before edges by *global operation
    /// ordinal* (invocation admission order; the window's first
    /// operation has ordinal `stats.retired_ops`). Edges whose source
    /// is still in the future are held here until it arrives; fully
    /// retired edges are pruned at each boundary.
    edges: Vec<(u64, u64)>,
    violated: bool,
    degraded: bool,
    /// Causal mode: a late edge was quarantined; latches like
    /// degradation ([`UndecidedWhy::LateHbEdge`]).
    stale: bool,
    /// [`StreamChecker::finish`] ran: no further operation can arrive,
    /// so causal-mode cuts stop anticipating future operations.
    closed: bool,
    /// Causal mode: each seen thread's most recent operation, as a
    /// global ordinal — the proxy for the thread's future operations in
    /// the hb-closure cut rule (see the module docs).
    last_seen: Vec<(ThreadId, u64)>,
    /// Global ordinal of the next admitted invocation.
    op_seq: u64,
    /// Verdict of the last window evaluation (Consistent or a
    /// search-shaped Undecided); `violated`/`degraded` override it.
    last_eval: StreamVerdict,
    last_error: Option<String>,
    since_checkpoint: usize,
    stats: StreamStats,
}

impl<S: CaSpec> fmt::Debug for StreamChecker<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamChecker")
            .field("window", &self.window.len())
            .field("states", &self.states.len())
            .field("verdict", &self.verdict())
            .finish_non_exhaustive()
    }
}

impl<S: CaSpec> StreamChecker<S> {
    /// Creates a checker with an empty window and the spec's initial
    /// state as the only reachable state.
    pub fn new(spec: S, opts: StreamOptions) -> Self {
        let states = vec![spec.initial()];
        let stats = StreamStats { states: 1, peak_states: 1, ..StreamStats::default() };
        StreamChecker {
            spec,
            opts,
            window: Vec::new(),
            states,
            pending: Vec::new(),
            abandoned: Vec::new(),
            edges: Vec::new(),
            violated: false,
            degraded: false,
            stale: false,
            closed: false,
            last_seen: Vec::new(),
            op_seq: 0,
            last_eval: StreamVerdict::Consistent,
            last_error: None,
            since_checkpoint: 0,
            stats,
        }
    }

    /// Offers one event to the stream. See [`Push`] for the outcomes;
    /// only [`Push::Admitted`] consumes the event.
    pub fn push(&mut self, action: Action) -> Push {
        // A finished causal stream refused further events: `finish`
        // retired its window on the premise that no operation follows.
        if self.violated || self.degraded || self.stale || (self.opts.causal && self.closed) {
            self.stats.refused += 1;
            return Push::Refused;
        }
        // Incremental well-formedness: mirror `History::validate` so an
        // ill-formed event never reaches (and never corrupts) the window.
        // Error indices count admitted events, i.e. the index the action
        // would have had in the admitted history.
        let index = self.stats.events as usize;
        let thread = action.thread();
        let mut closes: Option<usize> = None;
        if action.is_invoke() {
            if self.pending.iter().any(|&(t, _)| t == thread) {
                self.stats.rejected += 1;
                return Push::Rejected(HistoryError::NestedInvocation { index, thread });
            }
        } else {
            match self.pending.iter().position(|&(t, _)| t == thread) {
                None => {
                    self.stats.rejected += 1;
                    return Push::Rejected(HistoryError::ResponseWithoutInvocation {
                        index,
                        thread,
                    });
                }
                Some(p) => {
                    let inv = self.window[self.pending[p].1];
                    if inv.object() != action.object() || inv.method() != action.method() {
                        self.stats.rejected += 1;
                        return Push::Rejected(HistoryError::MismatchedResponse { index, thread });
                    }
                    closes = Some(p);
                }
            }
        }
        // The cap counts open-or-undecided *invocations*; responses are
        // always admitted, since they only ever enable retirement.
        if action.is_invoke() && self.opts.max_window > 0 {
            let cap = self.opts.max_window;
            let full = |w: &[Action]| w.iter().filter(|a| a.is_invoke()).count() >= cap;
            if full(&self.window) {
                self.retire(false);
                if !self.violated && full(&self.window) {
                    // Real memory pressure: now (and only now) seal
                    // abandoned operations at a forced boundary to
                    // reclaim space.
                    self.retire(true);
                }
                if self.violated {
                    self.stats.refused += 1;
                    return Push::Refused;
                }
                if full(&self.window) {
                    self.stats.saturated += 1;
                    return Push::Saturated;
                }
            }
        }
        let at = self.window.len();
        self.window.push(action);
        match closes {
            Some(p) => {
                let inv_at = self.pending[p].1;
                // A response for an op previously abandoned: the client
                // came back after all — un-seal it.
                self.abandoned.retain(|&a| a != inv_at);
                self.pending.swap_remove(p);
            }
            None => {
                self.pending.push((thread, at));
                match self.last_seen.iter_mut().find(|(t, _)| *t == thread) {
                    Some(entry) => entry.1 = self.op_seq,
                    None => self.last_seen.push((thread, self.op_seq)),
                }
                self.op_seq += 1;
            }
        }
        self.stats.events += 1;
        self.stats.window = self.window.len();
        self.stats.peak_window = self.stats.peak_window.max(self.window.len());
        self.since_checkpoint += 1;
        if self.opts.checkpoint_every > 0 && self.since_checkpoint >= self.opts.checkpoint_every {
            self.checkpoint();
        }
        Push::Admitted
    }

    /// Declares a happens-before edge between two operations, as 0-based
    /// *global operation ordinals* — the positions of their invocations
    /// in admission order (exactly [`crate::format::WireItem::HbEdge`]'s
    /// numbering). Either endpoint may still be in the future; the edge
    /// is held until it arrives. Outside causal mode the edge is counted
    /// but inert.
    ///
    /// Returns [`Push::Refused`] when the stream is closed, or when the
    /// edge's target is already retired (the late-edge quarantine — see
    /// the module docs; this latches [`UndecidedWhy::LateHbEdge`]).
    /// Malformed edges (self-edges, cycles with session order) are
    /// admitted here and surface as [`UndecidedWhy::CheckerError`] at the
    /// next evaluation, keeping this call cheap.
    pub fn push_hb_edge(&mut self, from: usize, to: usize) -> Push {
        if self.violated || self.degraded || self.stale || (self.opts.causal && self.closed) {
            self.stats.refused += 1;
            return Push::Refused;
        }
        self.stats.hb_edges += 1;
        if !self.opts.causal {
            return Push::Admitted;
        }
        let (from, to) = (from as u64, to as u64);
        if to < self.stats.retired_ops {
            self.stats.late_edges += 1;
            self.stale = true;
            self.stats.refused += 1;
            return Push::Refused;
        }
        if from >= self.stats.retired_ops {
            self.edges.push((from, to));
        }
        // A retired source with a live target needs no bookkeeping: the
        // factored witness already orders every retired element before
        // the window, which is what the edge demands.
        Push::Admitted
    }

    /// Declares that `thread`'s client is gone. Its pending invocation
    /// (if any) rides in the window with exact batch pending-op
    /// semantics — droppable, or completable with the spec's proposed
    /// return values (the timeout-admission path) — for as long as
    /// memory allows; only under window pressure is it *sealed* at a
    /// forced retirement boundary, committing it against events up to
    /// that boundary only.
    pub fn abandon_thread(&mut self, thread: ThreadId) {
        if self.violated || self.degraded || self.stale {
            return;
        }
        if let Some(&(_, at)) = self.pending.iter().find(|&&(t, _)| t == thread) {
            if !self.abandoned.contains(&at) {
                self.abandoned.push(at);
                self.stats.abandoned += 1;
            }
        }
    }

    /// Gives up on backpressure: latches the explicit
    /// `undecided: window exceeded` verdict. Admitted events are kept
    /// (and a later violation found among them is still sound), but no
    /// further event is admitted.
    pub fn degrade(&mut self) {
        if !self.violated {
            self.degraded = true;
        }
    }

    /// Retires every decided prefix, then re-evaluates the residual
    /// window. Returns the resulting verdict.
    pub fn checkpoint(&mut self) -> StreamVerdict {
        self.since_checkpoint = 0;
        self.stats.checkpoints += 1;
        self.retire(false);
        if !self.violated {
            self.evaluate();
        }
        self.verdict()
    }

    /// Runs a final checkpoint and returns the stream's closing verdict.
    ///
    /// Closing the stream is a statement that no further operation will
    /// arrive: in causal mode this lifts the future-operation half of
    /// the hb-closure cut rule (see the module docs' causal-mode rules),
    /// letting the residual window retire, and subsequent [`push`]es are
    /// refused — they would invalidate that premise.
    ///
    /// [`push`]: StreamChecker::push
    pub fn finish(&mut self) -> StreamVerdict {
        self.closed = true;
        self.checkpoint()
    }

    /// The verdict as of the last checkpoint (events pushed since then
    /// are not yet reflected unless they triggered one).
    pub fn verdict(&self) -> StreamVerdict {
        if self.violated {
            StreamVerdict::Violation
        } else if self.stale {
            StreamVerdict::Undecided(UndecidedWhy::LateHbEdge)
        } else if self.degraded {
            StreamVerdict::Undecided(UndecidedWhy::WindowExceeded)
        } else {
            self.last_eval.clone()
        }
    }

    /// The panic message of the most recent specification panic, if a
    /// checkpoint ever reported [`UndecidedWhy::CheckerError`].
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// The stream's counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Snapshots a [`StreamReport`] after `wall` of runtime.
    pub fn report(&self, wall: Duration) -> StreamReport {
        StreamReport {
            verdict: self.verdict().to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            max_window: self.opts.max_window,
            stats: self.stats.clone(),
        }
    }

    /// The earliest closed boundary: the smallest `c > 0` such that every
    /// operation invoked in `window[..c]` responds in `window[..c]` and —
    /// in causal mode — the cut is hb-closed (see the module docs):
    ///
    /// - no declared edge points from an operation at or past the cut
    ///   back into `window[..c]`, and
    /// - while the stream is open, every segment operation happens-before
    ///   every operation still in the window *and* every future operation
    ///   of every seen thread. A future operation session-follows its
    ///   thread's last seen one, so that operation stands proxy for it; a
    ///   proxy that already retired can never come to happen-after the
    ///   segment, so no cut is possible until the thread speaks again.
    ///   Once [`finish`] closes the stream the future half lapses — no
    ///   operation follows — and cuts are constrained by the window's
    ///   contents and declared edges alone.
    ///
    /// Abandoned invocations block a cut unless `force`: sealing one
    /// commits it against the segment's events only, and its rendezvous
    /// partner may not have invoked yet — so the checker holds on to it
    /// until memory pressure leaves no choice (at [`finish`] an unsealed
    /// abandoned op simply gets the exact batch pending-op treatment).
    ///
    /// [`finish`]: StreamChecker::finish
    fn first_cut(&self, force: bool) -> Option<usize> {
        let base = self.stats.retired_ops;
        // Causal mode: the window's happens-before relation, consulted
        // by the hb-closure rules below. A malformed declaration (cycle)
        // blocks every cut here; `evaluate` surfaces the error.
        let window_hb = if self.opts.causal && !self.window.is_empty() {
            let spans = History::from_actions(self.window.clone()).spans();
            match self.causal_relation(&spans) {
                Ok(hb) => Some((hb, spans.len())),
                Err(_) => return None,
            }
        } else {
            None
        };
        let mut depth = 0usize;
        let mut ops = 0u64;
        for (i, a) in self.window.iter().enumerate() {
            if a.is_invoke() {
                ops += 1;
                if !(force && self.abandoned.contains(&i)) {
                    depth += 1;
                }
            } else {
                // Every response in the window closes a non-abandoned
                // invocation in the window (admission un-seals on reply).
                depth = depth.saturating_sub(1);
            }
            if depth == 0 {
                // hb-closure: an edge from a later (or not-yet-arrived)
                // operation into the candidate segment forbids retiring
                // it — keep scanning for a wider closed boundary.
                let cut_g = base + ops;
                if self.edges.iter().any(|&(f, t)| t < cut_g && f >= cut_g) {
                    continue;
                }
                if let Some((hb, w_ops)) = &window_hb {
                    let seg = ops as usize;
                    // Every segment op must happen-before every op still
                    // in the window past the cut...
                    if !(0..seg).all(|s| (seg..*w_ops).all(|r| hb.precedes(s, r))) {
                        continue;
                    }
                    // ...and, while the stream is open, before every
                    // future op of every seen thread, via the thread's
                    // last-op proxy. A failed proxy fails for every
                    // boundary, present and wider; one already retired
                    // can never come to happen-after the segment.
                    if !self.closed {
                        for &(_, l) in &self.last_seen {
                            if l < base {
                                return None;
                            }
                            let li = (l - base) as usize;
                            if !(0..seg).all(|s| s == li || hb.precedes(s, li)) {
                                return None;
                            }
                        }
                    }
                }
                return Some(i + 1);
            }
        }
        None
    }

    /// Retires closed segments off the front of the window until none
    /// remains, a segment resists (budget, deadline, or a state set over
    /// `max_states`), or the state set empties (violation — final).
    /// `force` additionally seals abandoned operations at the boundary
    /// (see [`StreamChecker::first_cut`]).
    fn retire(&mut self, force: bool) {
        while !self.violated {
            let Some(cut) = self.first_cut(force) else { break };
            let Some(next) = self.segment_states(cut) else { break };
            if next.len() > self.opts.max_states {
                break;
            }
            if next.is_empty() {
                self.violated = true;
                break;
            }
            let ops = self.window[..cut].iter().filter(|a| a.is_invoke()).count();
            self.states = next;
            self.stats.states = self.states.len();
            self.stats.peak_states = self.stats.peak_states.max(self.states.len());
            self.stats.retired_segments += 1;
            self.stats.retired_actions += cut as u64;
            self.stats.retired_ops += ops as u64;
            self.window.drain(..cut);
            // Pending entries below the cut are exactly the sealed
            // abandoned ops: they were decided with the segment.
            self.pending.retain(|&(_, at)| at >= cut);
            for p in &mut self.pending {
                p.1 -= cut;
            }
            self.abandoned.retain(|&at| at >= cut);
            for a in &mut self.abandoned {
                *a -= cut;
            }
            // Edges wholly behind the new base are satisfied by the
            // enumeration that just consumed them; a retired source with
            // a live target is satisfied by segment order (hb-closure
            // rules out the reverse).
            let base = self.stats.retired_ops;
            self.edges.retain(|&(f, t)| f >= base && t >= base);
        }
        self.stats.window = self.window.len();
    }

    /// Causal mode: the happens-before relation of a window-prefix
    /// segment — session order plus the declared edges falling inside it
    /// (global ordinals rebased to segment span indices). Edges with a
    /// not-yet-arrived endpoint constrain nothing inside the segment and
    /// are excluded.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::history::HbError`] for malformed declarations
    /// (self-edges, cycles with session order); callers surface it as
    /// [`UndecidedWhy::CheckerError`].
    fn causal_relation(&self, spans: &[Span]) -> Result<HbRelation, crate::history::HbError> {
        let base = self.stats.retired_ops;
        let ops = spans.len() as u64;
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(f, t)| f < base + ops && t < base + ops)
            .map(|&(f, t)| ((f - base) as usize, (t - base) as usize))
            .collect();
        HbRelation::causal(spans, &edges)
    }

    /// The order every search over `segment` (a window prefix) runs
    /// against: real time, or the causal relation in causal mode.
    ///
    /// # Errors
    ///
    /// As [`StreamChecker::causal_relation`]; infallible outside causal
    /// mode.
    fn segment_order(&self, segment: &History) -> Result<HbRelation, crate::history::HbError> {
        let spans = segment.spans();
        if self.opts.causal {
            self.causal_relation(&spans)
        } else {
            Ok(HbRelation::real_time(&spans))
        }
    }

    /// The exact end-state set of `window[..cut]` from the current
    /// states, or `None` when the enumeration could not be completed
    /// (budget, deadline, or a panicking spec) and the segment must stay.
    fn segment_states(&mut self, cut: usize) -> Option<Vec<S::State>> {
        // Fast path: a single complete op admits exactly one witness
        // element (complete ops cannot be dropped and have no one to
        // share an element with), so step the spec directly instead of
        // building a search domain. This is what makes a mostly-
        // sequential replay stream at millions of ops without search
        // overhead. In causal mode the path is taken only when no
        // declared edge touches the op (ordinal `retired_ops`), so a
        // malformed declaration still reaches the relation builder.
        let solo_op_untouched = || {
            let o = self.stats.retired_ops;
            self.edges.iter().all(|&(f, t)| f != o && t != o)
        };
        if cut == 2
            && self.window[0].is_invoke()
            && !self.window[1].is_invoke()
            && (!self.opts.causal || solo_op_untouched())
        {
            let (inv, res) = (self.window[0], self.window[1]);
            let op = Operation::new(
                inv.thread(),
                inv.object(),
                inv.method(),
                inv.arg().expect("invocations carry an argument"),
                res.ret().expect("responses carry a return value"),
            );
            let element = CaElement::singleton(op);
            let mut next: Vec<S::State> = Vec::new();
            for q in &self.states {
                self.stats.search.elements_tried += 1;
                match catch_unwind(AssertUnwindSafe(|| self.spec.step(q, &element))) {
                    Ok(Some(q2)) => {
                        if !next.contains(&q2) {
                            next.push(q2);
                        }
                    }
                    Ok(None) => {}
                    Err(payload) => {
                        self.last_error = Some(crate::engine::panic_message(payload));
                        return None;
                    }
                }
            }
            return Some(next);
        }
        let segment = History::from_actions(self.window[..cut].to_vec());
        let hb = match self.segment_order(&segment) {
            Ok(hb) => hb,
            Err(e) => {
                self.last_error = Some(e.to_string());
                return None;
            }
        };
        let mut next: Vec<S::State> = Vec::new();
        for q in &self.states {
            let resume = ResumeSpec { inner: &self.spec, start: q.clone() };
            let domain = match CalDomain::with_order(
                Cow::Borrowed(&segment),
                SpecRef::Owned(resume),
                hb.clone(),
            ) {
                Ok(d) => d,
                // Unreachable: admission keeps the window well-formed.
                Err(_) => return None,
            };
            match engine::enumerate_goals(&domain, &self.opts.check) {
                Ok(e) => {
                    self.stats.search += e.stats;
                    if !e.complete {
                        return None;
                    }
                    for (_, state) in e.goals {
                        if !next.contains(&state) {
                            next.push(state);
                        }
                    }
                }
                Err(e) => {
                    self.last_error = Some(e.to_string());
                    return None;
                }
            }
        }
        Some(next)
    }

    /// Re-checks the residual window from each reachable state, setting
    /// `last_eval` (or latching the violation when every state refutes).
    fn evaluate(&mut self) {
        if self.window.is_empty() {
            self.last_eval = StreamVerdict::Consistent;
            return;
        }
        let segment = History::from_actions(self.window.clone());
        let hb = match self.segment_order(&segment) {
            Ok(hb) => hb,
            Err(e) => {
                self.last_error = Some(e.to_string());
                self.last_eval = StreamVerdict::Undecided(UndecidedWhy::CheckerError);
                return;
            }
        };
        let mut why: Option<UndecidedWhy> = None;
        for q in &self.states {
            let resume = ResumeSpec { inner: &self.spec, start: q.clone() };
            let domain = match CalDomain::with_order(
                Cow::Borrowed(&segment),
                SpecRef::Owned(resume),
                hb.clone(),
            ) {
                Ok(d) => d,
                Err(_) => return, // unreachable: the window is well-formed
            };
            match engine::search(&domain, &self.opts.check) {
                Ok(outcome) => {
                    self.stats.search += outcome.stats;
                    match outcome.verdict {
                        Verdict::Cal(_) => {
                            self.last_eval = StreamVerdict::Consistent;
                            return;
                        }
                        Verdict::NotCal => {}
                        Verdict::ResourcesExhausted => {
                            why.get_or_insert(UndecidedWhy::ResourcesExhausted);
                        }
                        Verdict::Interrupted { reason } => {
                            why.get_or_insert(UndecidedWhy::Interrupted(reason));
                        }
                    }
                }
                Err(e) => {
                    self.last_error = Some(e.to_string());
                    why.get_or_insert(UndecidedWhy::CheckerError);
                }
            }
        }
        match why {
            // Every reachable state *refuted* the window: no completion
            // of the admitted history is explainable, and prefix closure
            // makes that final.
            None => self.violated = true,
            Some(why) => self.last_eval = StreamVerdict::Undecided(why),
        }
    }

    /// Searches the *residual window* for one witness (the retired
    /// prefix's witness is gone by design). Only meaningful while the
    /// verdict is [`StreamVerdict::Consistent`].
    pub fn window_witness(&mut self) -> Option<CaTrace> {
        if self.window.is_empty() {
            return Some(CaTrace::new());
        }
        let segment = History::from_actions(self.window.clone());
        let hb = self.segment_order(&segment).ok()?;
        for q in &self.states {
            let resume = ResumeSpec { inner: &self.spec, start: q.clone() };
            let Ok(domain) = CalDomain::with_order(
                Cow::Borrowed(&segment),
                SpecRef::Owned(resume),
                hb.clone(),
            ) else {
                return None;
            };
            if let Ok(outcome) = engine::search(&domain, &self.opts.check) {
                self.stats.search += outcome.stats;
                if let Verdict::Cal(steps) = outcome.verdict {
                    return Some(crate::check::steps_to_trace(steps));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_cal;
    use crate::ids::ObjectId;
    use crate::spec::SeqAsCa;
    use crate::text::parse_history;
    use crate::Method;

    /// A tiny sequential register spec for self-contained tests.
    #[derive(Debug, Clone)]
    struct Reg;
    impl crate::spec::SeqSpec for Reg {
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
            match (op.method, op.arg, op.ret) {
                (Method("write"), Value::Int(v), Value::Unit) => Some(v),
                (Method("read"), Value::Unit, Value::Int(v)) if v == *state => Some(*state),
                _ => None,
            }
        }
        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            match inv.method {
                Method("write") => vec![Value::Unit],
                _ => vec![],
            }
        }
    }

    fn reg_checker(opts: StreamOptions) -> StreamChecker<SeqAsCa<Reg>> {
        StreamChecker::new(SeqAsCa::new(Reg), opts)
    }

    fn feed(checker: &mut StreamChecker<SeqAsCa<Reg>>, text: &str) {
        for action in parse_history(text).unwrap().actions() {
            assert_eq!(checker.push(*action), Push::Admitted);
        }
    }

    #[test]
    fn sequential_stream_retires_everything() {
        let mut c = reg_checker(StreamOptions {
            checkpoint_every: 4,
            ..StreamOptions::default()
        });
        let mut text = String::new();
        for i in 0..100 {
            text.push_str(&format!("t0 inv o0.write {i}\nt0 res o0.write ()\n"));
            text.push_str(&format!("t1 inv o0.read ()\nt1 res o0.read {i}\n"));
        }
        feed(&mut c, &text);
        assert_eq!(c.finish(), StreamVerdict::Consistent);
        let s = c.stats();
        assert_eq!(s.events, 400);
        assert_eq!(s.retired_actions + s.window as u64, s.events);
        assert_eq!(s.retired_ops, 200);
        assert!(s.peak_window <= 8, "peak window {} for checkpoint_every=4", s.peak_window);
        assert_eq!(s.states, 1);
    }

    #[test]
    fn violation_is_latched_and_refuses_the_stream() {
        let mut c = reg_checker(StreamOptions::default());
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\n");
        // Stale read: register holds 1, reading 7 is unexplainable.
        feed(&mut c, "t1 inv o0.read ()\nt1 res o0.read 7\n");
        assert_eq!(c.finish(), StreamVerdict::Violation);
        let next = Action::invoke(ThreadId(2), ObjectId(0), Method("read"), Value::Unit);
        assert_eq!(c.push(next), Push::Refused);
        assert_eq!(c.verdict(), StreamVerdict::Violation);
        assert_eq!(c.stats().refused, 1);
    }

    #[test]
    fn ill_formed_events_are_quarantined_without_perturbing_the_window() {
        let mut c = reg_checker(StreamOptions::default());
        feed(&mut c, "t0 inv o0.write 1\n");
        let nested = Action::invoke(ThreadId(0), ObjectId(0), Method("write"), Value::Int(2));
        assert!(matches!(
            c.push(nested),
            Push::Rejected(HistoryError::NestedInvocation { .. })
        ));
        let orphan = Action::response(ThreadId(9), ObjectId(0), Method("read"), Value::Int(0));
        assert!(matches!(
            c.push(orphan),
            Push::Rejected(HistoryError::ResponseWithoutInvocation { .. })
        ));
        let mismatched = Action::response(ThreadId(0), ObjectId(0), Method("read"), Value::Int(0));
        assert!(matches!(
            c.push(mismatched),
            Push::Rejected(HistoryError::MismatchedResponse { .. })
        ));
        feed(&mut c, "t0 res o0.write ()\n");
        assert_eq!(c.finish(), StreamVerdict::Consistent);
        assert_eq!(c.stats().rejected, 3);
        assert_eq!(c.stats().events, 2);
    }

    #[test]
    fn saturation_backpressure_then_explicit_degradation() {
        // Window cap of 2 open invocations; three concurrent ops that
        // never respond can never be retired.
        let mut c = reg_checker(StreamOptions {
            max_window: 2,
            checkpoint_every: 0,
            ..StreamOptions::default()
        });
        feed(&mut c, "t0 inv o0.write 1\nt1 inv o0.write 2\n");
        let third = Action::invoke(ThreadId(2), ObjectId(0), Method("write"), Value::Int(3));
        assert_eq!(c.push(third), Push::Saturated);
        assert_eq!(c.push(third), Push::Saturated);
        // Responses are always admitted: the window can drain, and once
        // both ops close, retirement frees the cap.
        feed(&mut c, "t0 res o0.write ()\nt1 res o0.write ()\n");
        c.checkpoint();
        assert_eq!(c.stats().window, 0, "both closed ops retire");
        assert_eq!(c.push(third), Push::Admitted);
        let fourth = Action::invoke(ThreadId(3), ObjectId(0), Method("write"), Value::Int(4));
        assert_eq!(c.push(fourth), Push::Admitted);
        // Two open invocations again: saturate again, then give up.
        let fifth = Action::invoke(ThreadId(4), ObjectId(0), Method("write"), Value::Int(5));
        assert_eq!(c.push(fifth), Push::Saturated);
        c.degrade();
        assert_eq!(c.verdict(), StreamVerdict::Undecided(UndecidedWhy::WindowExceeded));
        assert_eq!(c.verdict().to_string(), "undecided: window exceeded");
        assert_eq!(c.push(fifth), Push::Refused);
        // Degradation latches across further checkpoints.
        assert_eq!(c.finish(), StreamVerdict::Undecided(UndecidedWhy::WindowExceeded));
    }

    #[test]
    fn abandoned_pending_op_is_sealed_via_spec_completions() {
        // t0's write is abandoned mid-flight. Unsealed it blocks
        // retirement (its rendezvous partner could still be coming), but
        // under window pressure it is force-sealed: the segment
        // enumeration admits both "the write happened" (the spec's `()`
        // completion) and "the write was dropped".
        let mut c = reg_checker(StreamOptions {
            max_window: 1,
            checkpoint_every: 0,
            ..StreamOptions::default()
        });
        feed(&mut c, "t0 inv o0.write 5\n");
        c.abandon_thread(ThreadId(0));
        assert_eq!(c.checkpoint(), StreamVerdict::Consistent);
        assert_eq!(c.stats().abandoned, 1);
        // No pressure yet: the abandoned op still occupies the window.
        assert_eq!(c.stats().window, 1);
        // The next invocation hits the cap and forces the seal.
        feed(&mut c, "t1 inv o0.read ()\n");
        assert_eq!(c.stats().saturated, 0, "forced sealing freed the window");
        assert_eq!(c.stats().states, 2, "both completion and drop survive");
        feed(&mut c, "t1 res o0.read 5\n");
        assert_eq!(c.checkpoint(), StreamVerdict::Consistent);
        // After observing the read of 5, only the "write happened"
        // branch survives retirement.
        assert_eq!(c.stats().states, 1);
        feed(&mut c, "t2 inv o0.read ()\nt2 res o0.read 0\n");
        assert_eq!(c.finish(), StreamVerdict::Violation);
    }

    #[test]
    fn streaming_matches_batch_on_a_concurrent_history() {
        let text = "t1 inv o0.write 1\nt2 inv o0.write 2\nt1 res o0.write ()\n\
                    t2 res o0.write ()\nt3 inv o0.read ()\nt3 res o0.read 1\n";
        let history = parse_history(text).unwrap();
        let batch = check_cal(&history, &SeqAsCa::new(Reg)).unwrap();
        assert!(matches!(batch.verdict, Verdict::Cal(_)));
        for chunk in [1usize, 2, 3, 6] {
            let mut c = reg_checker(StreamOptions {
                checkpoint_every: chunk,
                ..StreamOptions::default()
            });
            feed(&mut c, text);
            assert_eq!(c.finish(), StreamVerdict::Consistent, "chunk {chunk}");
        }
    }

    fn causal_reg_checker(opts: StreamOptions) -> StreamChecker<SeqAsCa<Reg>> {
        StreamChecker::new(SeqAsCa::new(Reg), StreamOptions { causal: true, ..opts })
    }

    #[test]
    fn causal_stream_accepts_a_session_reorderable_stale_read() {
        // write completes in real time before the read starts, but the
        // threads are causally unrelated: violation in real-time mode,
        // consistent in causal mode.
        let text = "t0 inv o0.write 1\nt0 res o0.write ()\nt1 inv o0.read ()\nt1 res o0.read 0\n";
        let mut rt = reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut rt, text);
        assert_eq!(rt.finish(), StreamVerdict::Violation);

        let mut c = causal_reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut c, text);
        assert_eq!(c.finish(), StreamVerdict::Consistent);
    }

    #[test]
    fn declared_edge_restores_the_violation_and_blocks_early_retirement() {
        let mut c = causal_reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\n");
        // An edge from the (future) read back into the window: op 1 → op 0
        // would be a cycle, so declare 0 → 1 (the write became visible).
        assert_eq!(c.push_hb_edge(0, 1), Push::Admitted);
        // The cut after the write is now hb-open in the *forward*
        // direction only — retirement of op 0 alone is still sound and
        // permitted; the reverse edge is what blocks.
        feed(&mut c, "t1 inv o0.read ()\nt1 res o0.read 0\n");
        assert_eq!(c.finish(), StreamVerdict::Violation);
        assert_eq!(c.stats().hb_edges, 1);
    }

    #[test]
    fn backward_edge_defers_retirement_until_hb_closed() {
        let mut c = causal_reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\n");
        // Declare that the (future) op 1 happens before op 0: the cut
        // after op 0 is closed in time but not hb-closed.
        assert_eq!(c.push_hb_edge(1, 0), Push::Admitted);
        c.checkpoint();
        assert_eq!(c.stats().retired_ops, 0, "backward edge must block the cut");
        // Once op 1 (a read of 0, ordered before the write) arrives and
        // completes, the two retire together, edge respected.
        feed(&mut c, "t1 inv o0.read ()\nt1 res o0.read 0\n");
        assert_eq!(c.finish(), StreamVerdict::Consistent);
        assert_eq!(c.stats().retired_ops, 2);
    }

    #[test]
    fn late_edge_into_retired_prefix_latches_undecided() {
        let mut c = causal_reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\n");
        c.checkpoint();
        assert_eq!(c.stats().retired_ops, 1);
        assert_eq!(c.push_hb_edge(5, 0), Push::Refused);
        assert_eq!(c.verdict(), StreamVerdict::Undecided(UndecidedWhy::LateHbEdge));
        assert_eq!(c.verdict().to_string(), "undecided: late happens-before edge");
        assert_eq!(c.stats().late_edges, 1);
        let next = Action::invoke(ThreadId(1), ObjectId(0), Method("read"), Value::Unit);
        assert_eq!(c.push(next), Push::Refused);
        assert_eq!(c.finish(), StreamVerdict::Undecided(UndecidedWhy::LateHbEdge));
    }

    #[test]
    fn edges_are_inert_outside_causal_mode() {
        let mut c = reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\n");
        c.checkpoint();
        // Would be a late edge in causal mode; without it, counted and
        // ignored.
        assert_eq!(c.push_hb_edge(5, 0), Push::Admitted);
        assert_eq!(c.stats().hb_edges, 1);
        assert_eq!(c.finish(), StreamVerdict::Consistent);
    }

    #[test]
    fn cyclic_declaration_surfaces_as_checker_error() {
        let mut c = causal_reg_checker(StreamOptions { checkpoint_every: 0, ..StreamOptions::default() });
        // Same thread: session order gives 0 ≺ 1; declaring 1 → 0 closes
        // a cycle.
        feed(&mut c, "t0 inv o0.write 1\nt0 res o0.write ()\nt0 inv o0.write 2\nt0 res o0.write ()\n");
        assert_eq!(c.push_hb_edge(1, 0), Push::Admitted);
        assert_eq!(c.finish(), StreamVerdict::Undecided(UndecidedWhy::CheckerError));
        assert!(c.last_error().unwrap().contains("cycle"), "{:?}", c.last_error());
    }

    #[test]
    fn causal_stream_matches_batch_causal_on_retired_segments() {
        // Declared edges chain the threads into w1 ≺ r1 ≺ w2 ≺ r2, so
        // hb-closed cuts exist while the stream is still open and
        // retirement happens mid-stream; the final verdict must match
        // the batch causal checker on the whole history.
        let text = "t0 inv o0.write 1\nt0 res o0.write ()\n\
                    t1 inv o0.read ()\nt1 res o0.read 1\n\
                    t0 inv o0.write 2\nt0 res o0.write ()\n\
                    t2 inv o0.read ()\nt2 res o0.read 2\n";
        let edges = [(0usize, 1usize), (1, 2), (2, 3)];
        let history = parse_history(text).unwrap();
        let hb = crate::causal::causal_order(&history, &edges).unwrap();
        let batch = crate::causal::check_causal(&history, &SeqAsCa::new(Reg), &hb).unwrap();
        assert!(batch.verdict.is_cal());
        let actions = parse_history(text).unwrap().actions().to_vec();
        for chunk in [1usize, 2, 4] {
            let mut c = causal_reg_checker(StreamOptions {
                checkpoint_every: chunk,
                ..StreamOptions::default()
            });
            for (i, a) in actions.iter().enumerate() {
                assert_eq!(c.push(*a), Push::Admitted, "chunk {chunk} action {i}");
                // Declare each edge as its source op completes (i.e.
                // never later than its target's response).
                if i % 2 == 1 {
                    if let Some(&(f, t)) = edges.iter().find(|&&(f, _)| f == i / 2) {
                        assert_eq!(c.push_hb_edge(f, t), Push::Admitted);
                    }
                }
            }
            assert!(c.stats().retired_ops > 0, "chunk {chunk} should retire mid-stream");
            assert_eq!(c.finish(), StreamVerdict::Consistent, "chunk {chunk}");
            assert_eq!(c.stats().retired_ops, 4, "chunk {chunk}");
        }
    }

    #[test]
    fn report_json_is_single_line_and_carries_retirement_counters() {
        let mut c = reg_checker(StreamOptions::default());
        feed(&mut c, "t0 inv o0.write 3\nt0 res o0.write ()\n");
        c.finish();
        let json = c.report(Duration::from_millis(12)).to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"verdict\": \"consistent\""), "{json}");
        assert!(json.contains("\"retired_ops\": 1"), "{json}");
        assert!(json.contains("\"max_window\": 4096"), "{json}");
    }
}
