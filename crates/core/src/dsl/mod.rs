//! # The `.cal` specification DSL
//!
//! A small text language for writing
//! [`CaSpec`](crate::spec::CaSpec)/[`SeqSpec`](crate::spec::SeqSpec) object
//! specifications without touching the workspace: state variables,
//! per-element transition rules (guards and effects), return-value
//! completions, and CA-element arity constraints. Files compile through a
//! lexer → parser → validation pipeline into an interpreted [`SpecDef`]
//! that the three checker modes (`cal`, `seq`, `interval`), the parallel
//! and work-stealing search, symmetry reduction, streaming, and chaos all
//! consume unchanged — a loaded spec is just another
//! [`CaSpec`](crate::spec::CaSpec).
//!
//! The language is documented in `docs/SPEC_DSL.md` (reference) and
//! `docs/TUTORIAL.md` (walkthrough); every diagnostic code in
//! [`DiagCode::ALL`] is catalogued there with a triggering example, and a
//! CI integrity test keeps the two in lockstep.
//!
//! ## Example
//!
//! ```
//! use cal_core::dsl::parse_str;
//! use cal_core::spec::CaSpec;
//! use cal_core::ObjectId;
//!
//! let file = parse_str(r#"
//!     spec exchanger {
//!         kind ca;
//!         element 2;
//!         rule fail(a: exchange) { when a.ret == (false, a.arg); }
//!         rule swap(a: exchange, b: exchange) {
//!             when a.ret == (true, b.arg) && b.ret == (true, a.arg);
//!         }
//!         complete exchange {
//!             yield (false, arg);
//!             for peer exchange { yield (true, peer.arg); }
//!         }
//!     }
//! "#).expect("a well-formed spec");
//! let spec = file.get("exchanger").unwrap().to_ca(ObjectId(0));
//! assert_eq!(spec.max_element_size(), 2);
//! ```
//!
//! Failures are typed, span-anchored [`Diagnostic`]s — never a panic:
//!
//! ```
//! use cal_core::dsl::{parse_str, DiagCode};
//!
//! let err = parse_str("spec s { kind maybe; }").unwrap_err();
//! assert_eq!(err.code, DiagCode::E104);
//! assert_eq!((err.line, err.col), (1, 15));
//! assert!(err.to_string().contains("E104"));
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;

mod ast;
mod eval;
mod lex;
mod parse;
mod validate;

pub use eval::{DslCaSpec, DslSeqSpec, RtVal};
pub use validate::{SpecDef, SpecKind};

/// The stable code of a [`Diagnostic`]. `E0xx` are lexical, `E1xx` are
/// syntactic, `E2xx` are semantic (validation) errors. Every code is
/// documented with a triggering example in `docs/SPEC_DSL.md`; the
/// docs-integrity test walks [`DiagCode::ALL`] to enforce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the summaries below are the documentation
pub enum DiagCode {
    E001,
    E002,
    E101,
    E102,
    E103,
    E104,
    E105,
    E201,
    E202,
    E203,
    E204,
    E205,
    E206,
    E207,
    E208,
    E209,
    E210,
    E211,
    E212,
    E213,
}

impl DiagCode {
    /// Every diagnostic code the pipeline can emit, in catalogue order.
    pub const ALL: &'static [DiagCode] = &[
        DiagCode::E001,
        DiagCode::E002,
        DiagCode::E101,
        DiagCode::E102,
        DiagCode::E103,
        DiagCode::E104,
        DiagCode::E105,
        DiagCode::E201,
        DiagCode::E202,
        DiagCode::E203,
        DiagCode::E204,
        DiagCode::E205,
        DiagCode::E206,
        DiagCode::E207,
        DiagCode::E208,
        DiagCode::E209,
        DiagCode::E210,
        DiagCode::E211,
        DiagCode::E212,
        DiagCode::E213,
    ];

    /// The code as it appears in diagnostics and the manual, e.g. `"E204"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::E001 => "E001",
            DiagCode::E002 => "E002",
            DiagCode::E101 => "E101",
            DiagCode::E102 => "E102",
            DiagCode::E103 => "E103",
            DiagCode::E104 => "E104",
            DiagCode::E105 => "E105",
            DiagCode::E201 => "E201",
            DiagCode::E202 => "E202",
            DiagCode::E203 => "E203",
            DiagCode::E204 => "E204",
            DiagCode::E205 => "E205",
            DiagCode::E206 => "E206",
            DiagCode::E207 => "E207",
            DiagCode::E208 => "E208",
            DiagCode::E209 => "E209",
            DiagCode::E210 => "E210",
            DiagCode::E211 => "E211",
            DiagCode::E212 => "E212",
            DiagCode::E213 => "E213",
        }
    }

    /// One-line summary of the error class, matching the manual's
    /// catalogue headings.
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::E001 => "unexpected character",
            DiagCode::E002 => "integer literal out of range",
            DiagCode::E101 => "unexpected token",
            DiagCode::E102 => "unexpected end of file",
            DiagCode::E103 => "unknown item",
            DiagCode::E104 => "unknown spec kind",
            DiagCode::E105 => "unknown type",
            DiagCode::E201 => "duplicate spec name",
            DiagCode::E202 => "duplicate declaration",
            DiagCode::E203 => "missing `kind` declaration",
            DiagCode::E204 => "unknown name",
            DiagCode::E205 => "unknown operation field",
            DiagCode::E206 => "type mismatch",
            DiagCode::E207 => "rule arity exceeds the element cap",
            DiagCode::E208 => "concurrency construct in a sequential spec",
            DiagCode::E209 => "assignment to an unknown state variable",
            DiagCode::E210 => "invalid range",
            DiagCode::E211 => "unyieldable value in a completion",
            DiagCode::E212 => "empty specification file",
            DiagCode::E213 => "invalid element cap",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A compile failure: one typed, span-anchored error. The pipeline stops
/// at the first diagnostic (specs are small; the first error is the one
/// worth fixing) and never panics on any input.
///
/// # Examples
///
/// ```
/// use cal_core::dsl::{parse_str, DiagCode};
/// let d = parse_str("spec s { kind seq; var x: float; }").unwrap_err();
/// assert_eq!(d.code, DiagCode::E105);
/// assert_eq!(d.to_string(), format!("error[E105]: {} (line 1, column 27)", d.message));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable error code.
    pub code: DiagCode,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Diagnostic {
    pub(crate) fn new(code: DiagCode, message: impl Into<String>, line: u32, col: u32) -> Self {
        Diagnostic { code, message: message.into(), line, col }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {} (line {}, column {})",
            self.code, self.message, self.line, self.col
        )
    }
}

impl Error for Diagnostic {}

/// A compiled `.cal` file: the specs it defines, in declaration order.
/// This is the loaded-spec handle `cal-check --spec` and `cal-serve
/// --spec` hold onto; [`SpecFile::get`] resolves a spec by name and
/// [`SpecDef::to_ca`]/[`SpecDef::to_seq`] instantiate it for an object.
///
/// # Examples
///
/// ```
/// use cal_core::dsl::parse_str;
///
/// let file = parse_str(
///     "spec counter { kind seq; var n: int = 0; \
///      rule inc(a) { when a.ret == n; effect n = n + 1; } \
///      complete inc { yield 0 .. 16; } }",
/// )
/// .unwrap();
/// assert_eq!(file.names(), vec!["counter"]);
/// assert!(file.get("counter").unwrap().is_sequential());
/// assert!(file.get("nope").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SpecFile {
    specs: Vec<Arc<SpecDef>>,
}

impl SpecFile {
    /// The compiled specs, in declaration order.
    pub fn specs(&self) -> &[Arc<SpecDef>] {
        &self.specs
    }

    /// Resolves a spec by its declared name.
    pub fn get(&self, name: &str) -> Option<&Arc<SpecDef>> {
        self.specs.iter().find(|s| s.name() == name)
    }

    /// The declared spec names, in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name()).collect()
    }
}

/// Compiles `.cal` source text: lex → parse → validate. Returns the
/// loaded [`SpecFile`] or the first [`Diagnostic`]. The entry point for
/// both CLI `--spec` loading and the docs-integrity test.
///
/// # Errors
///
/// Returns the first diagnostic of the failing stage; see [`DiagCode`]
/// for the catalogue.
///
/// # Examples
///
/// ```
/// use cal_core::dsl::parse_str;
///
/// let file = parse_str(
///     "spec register { kind seq; var val: int = 0; \
///      rule write(a) { when a.ret == unit; effect val = a.arg; } \
///      rule read(a) { when a.ret == val; } \
///      complete write { yield unit; } complete read { yield 0; } }",
/// )
/// .unwrap();
/// assert_eq!(file.specs().len(), 1);
/// ```
pub fn parse_str(src: &str) -> Result<SpecFile, Diagnostic> {
    let tokens = lex::lex(src)?;
    let file_ast = parse::parse(&tokens)?;
    let specs = validate::validate(file_ast)?;
    Ok(SpecFile { specs: specs.into_iter().map(Arc::new).collect() })
}
