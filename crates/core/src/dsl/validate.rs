//! Validation: resolves names to indices, checks types and structural
//! constraints, and compiles each parsed spec into an executable
//! [`SpecDef`]. Emits the `E2xx` family (see [`super::DiagCode`]).
//!
//! Typing is gradual: state variables carry a declared type, while an
//! operation's `arg`/`ret` are dynamic (the trace decides their shape at
//! runtime, exactly as in the hand-written Rust specs, where a shape
//! mismatch makes the rule fail to match rather than the checker fail).
//! Validation rejects only the comparisons and assignments that could
//! *never* be well-typed.

use std::collections::HashSet;

use super::ast::*;
use super::eval::{Builtin, Expr, RtVal};
use super::lex::Span;
use super::{DiagCode, Diagnostic};
use crate::ids::Method;

/// Whether a spec describes a sequential or a concurrency-aware object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// `kind seq;` — a sequential specification. Usable in every checker
    /// mode; `--mode cal` checks classical linearizability over it.
    Seq,
    /// `kind ca;` — a concurrency-aware specification with multi-operation
    /// CA-elements. Only meaningful under `--mode cal`.
    Ca,
}

/// One compiled specification: the executable form of a `spec` block,
/// produced by [`super::parse_str`] and interpreted by
/// [`super::DslCaSpec`]/[`super::DslSeqSpec`].
#[derive(Debug)]
pub struct SpecDef {
    pub(crate) name: String,
    pub(crate) kind: SpecKind,
    pub(crate) element_cap: usize,
    /// Declared state variables: name and type, in slot order.
    pub(crate) vars: Vec<(String, TyAst)>,
    /// Initial value per slot.
    pub(crate) init: Vec<RtVal>,
    pub(crate) rules: Vec<RuleDef>,
    pub(crate) completes: Vec<CompleteDef>,
}

impl SpecDef {
    /// The declared spec name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The spec's kind.
    pub fn kind(&self) -> SpecKind {
        self.kind
    }

    /// `true` for `kind seq` specs, which every checker mode accepts.
    pub fn is_sequential(&self) -> bool {
        self.kind == SpecKind::Seq
    }

    /// The declared CA-element size cap (1 for sequential specs).
    pub fn element_cap(&self) -> usize {
        self.element_cap
    }

    pub(crate) fn initial_state(&self) -> Vec<RtVal> {
        self.init.clone()
    }
}

#[derive(Debug)]
pub(crate) struct RuleDef {
    #[allow(dead_code)] // kept for debugging / future reporting surfaces
    pub name: String,
    /// Required method per binding, in binding order; the rule's arity.
    pub methods: Vec<Method>,
    pub guards: Vec<Expr>,
    /// `(state slot, value)` assignments, applied simultaneously against
    /// the pre-state.
    pub effects: Vec<(usize, Expr)>,
}

#[derive(Debug)]
pub(crate) struct CompleteDef {
    pub method: Method,
    pub items: Vec<CItem>,
}

#[derive(Debug)]
pub(crate) enum CItem {
    Yield(Expr),
    /// Inclusive integer range.
    YieldRange(i64, i64),
    ForPeer(Method, Vec<CItem>),
}

/// Largest allowed `element` cap. The checker enumerates candidate
/// elements up to this size, so it is a direct search-width knob.
const MAX_ELEMENT_CAP: i64 = 8;
/// Widest allowed `yield a .. b;` range (inclusive endpoints).
const MAX_RANGE_WIDTH: i64 = 10_000;

/// Interns a DSL method name, reusing the checker's well-known method
/// names so `Method` comparisons against built-in vocab are pointer- and
/// content-identical.
fn intern_method(name: &str) -> Method {
    const KNOWN: &[&str] = &[
        "exchange", "push", "pop", "put", "take", "read", "write", "inc", "noop",
    ];
    for k in KNOWN {
        if *k == name {
            return Method(k);
        }
    }
    Method(Box::leak(name.to_owned().into_boxed_str()))
}

fn err(code: DiagCode, message: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(code, message, span.line, span.col)
}

pub(crate) fn validate(file: FileAst) -> Result<Vec<SpecDef>, Diagnostic> {
    if file.specs.is_empty() {
        return Err(Diagnostic::new(
            DiagCode::E212,
            "file defines no specifications; expected at least one `spec name { ... }` block",
            1,
            1,
        ));
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for spec in &file.specs {
        if !seen.insert(spec.name.clone()) {
            return Err(err(
                DiagCode::E201,
                format!("duplicate spec name `{}`", spec.name),
                spec.name_span,
            ));
        }
        out.push(validate_spec(spec)?);
    }
    Ok(out)
}

/// Static type of an expression. `Dyn` is the type of `arg`/`ret`
/// accesses — compatible with everything, checked at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Unit,
    Bool,
    Int,
    Pair,
    List,
    Dyn,
}

impl Ty {
    fn describe(self) -> &'static str {
        match self {
            Ty::Unit => "unit",
            Ty::Bool => "bool",
            Ty::Int => "int",
            Ty::Pair => "pair",
            Ty::List => "list",
            Ty::Dyn => "a dynamic value",
        }
    }
}

fn of_ast(ty: TyAst) -> Ty {
    match ty {
        TyAst::Int => Ty::Int,
        TyAst::Bool => Ty::Bool,
        TyAst::List => Ty::List,
    }
}

fn compat(a: Ty, b: Ty) -> bool {
    a == Ty::Dyn || b == Ty::Dyn || a == b
}

/// Name-resolution scope for expression compilation.
enum Scope<'a> {
    /// `var` initializer: literals only.
    Const,
    /// Rule body: bindings plus state variables.
    Rule { bindings: &'a [(String, Method)] },
    /// Completion body: `arg`, plus `peer` when inside `for peer`.
    Complete { in_peer: bool },
}

struct SpecCx<'a> {
    vars: &'a [(String, TyAst)],
}

impl SpecCx<'_> {
    fn var_slot(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|(n, _)| n == name)
    }
}

/// Compiles an expression, returning its static type alongside.
fn compile_expr(
    cx: &SpecCx<'_>,
    scope: &Scope<'_>,
    e: &ExprAst,
) -> Result<(Expr, Ty), Diagnostic> {
    match &e.kind {
        ExprKind::Unit => Ok((Expr::Unit, Ty::Unit)),
        ExprKind::Bool(b) => Ok((Expr::Bool(*b), Ty::Bool)),
        ExprKind::Int(n) => Ok((Expr::Int(*n), Ty::Int)),
        ExprKind::Pair(a, b) => {
            let (ca, ta) = compile_expr(cx, scope, a)?;
            if !compat(ta, Ty::Bool) {
                return Err(err(
                    DiagCode::E206,
                    format!("pair literals are `(bool, int)`; first component is {}", ta.describe()),
                    a.span,
                ));
            }
            let (cb, tb) = compile_expr(cx, scope, b)?;
            if !compat(tb, Ty::Int) {
                return Err(err(
                    DiagCode::E206,
                    format!("pair literals are `(bool, int)`; second component is {}", tb.describe()),
                    b.span,
                ));
            }
            Ok((Expr::Pair(Box::new(ca), Box::new(cb)), Ty::Pair))
        }
        ExprKind::List(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for el in elems {
                let (ce, te) = compile_expr(cx, scope, el)?;
                if !compat(te, Ty::Int) {
                    return Err(err(
                        DiagCode::E206,
                        format!("list elements are integers; found {}", te.describe()),
                        el.span,
                    ));
                }
                out.push(ce);
            }
            Ok((Expr::List(out), Ty::List))
        }
        ExprKind::Name(name) => match scope {
            Scope::Const => Err(err(
                DiagCode::E204,
                format!("`{name}` is not a constant; variable initializers must be literal values"),
                e.span,
            )),
            Scope::Rule { bindings } => {
                if bindings.iter().any(|(b, _)| b == name) {
                    return Err(err(
                        DiagCode::E204,
                        format!("operation binding `{name}` must be accessed as `{name}.arg` or `{name}.ret`"),
                        e.span,
                    ));
                }
                match cx.var_slot(name) {
                    Some(slot) => Ok((Expr::Var(slot), of_ast(cx.vars[slot].1))),
                    None => Err(err(
                        DiagCode::E204,
                        format!("unknown name `{name}`"),
                        e.span,
                    )),
                }
            }
            Scope::Complete { .. } => {
                if name == "arg" {
                    return Ok((Expr::CompleteArg, Ty::Dyn));
                }
                if name == "peer" {
                    return Err(err(
                        DiagCode::E204,
                        "`peer` must be accessed as `peer.arg`",
                        e.span,
                    ));
                }
                if cx.var_slot(name).is_some() {
                    return Err(err(
                        DiagCode::E204,
                        format!(
                            "completions are state-independent; state variable `{name}` is not available here"
                        ),
                        e.span,
                    ));
                }
                Err(err(DiagCode::E204, format!("unknown name `{name}`"), e.span))
            }
        },
        ExprKind::Field(name, field) => match scope {
            Scope::Const => Err(err(
                DiagCode::E204,
                format!("`{name}` is not available in a variable initializer"),
                e.span,
            )),
            Scope::Rule { bindings } => {
                match bindings.iter().position(|(b, _)| b == name) {
                    Some(i) => Ok((
                        match field {
                            OpField::Arg => Expr::OpArg(i),
                            OpField::Ret => Expr::OpRet(i),
                        },
                        Ty::Dyn,
                    )),
                    None => Err(err(
                        DiagCode::E204,
                        format!("unknown operation binding `{name}`"),
                        e.span,
                    )),
                }
            }
            Scope::Complete { in_peer } => {
                if name != "peer" {
                    return Err(err(
                        DiagCode::E204,
                        format!("unknown operation binding `{name}` (completions see only `arg` and `peer.arg`)"),
                        e.span,
                    ));
                }
                if !in_peer {
                    return Err(err(
                        DiagCode::E204,
                        "`peer` is only available inside a `for peer` block",
                        e.span,
                    ));
                }
                match field {
                    OpField::Arg => Ok((Expr::PeerArg, Ty::Dyn)),
                    OpField::Ret => Err(err(
                        DiagCode::E205,
                        "peers are pending invocations and have no `ret`",
                        e.span,
                    )),
                }
            }
        },
        ExprKind::Call { name, name_span, args } => {
            let (builtin, params, ret): (Builtin, &[Ty], Ty) = match name.as_str() {
                "top" => (Builtin::Top, &[Ty::List], Ty::Int),
                "len" => (Builtin::Len, &[Ty::List], Ty::Int),
                "empty" => (Builtin::Empty, &[Ty::List], Ty::Bool),
                "push" => (Builtin::Push, &[Ty::List, Ty::Int], Ty::List),
                "drop" => (Builtin::Drop, &[Ty::List], Ty::List),
                other => {
                    return Err(err(
                        DiagCode::E204,
                        format!(
                            "unknown function `{other}`; the builtins are `top`, `len`, `empty`, `push` and `drop`"
                        ),
                        *name_span,
                    ));
                }
            };
            if args.len() != params.len() {
                return Err(err(
                    DiagCode::E206,
                    format!(
                        "wrong number of arguments to `{name}`: expected {}, found {}",
                        params.len(),
                        args.len()
                    ),
                    *name_span,
                ));
            }
            let mut compiled = Vec::with_capacity(args.len());
            for (arg, want) in args.iter().zip(params) {
                let (ce, te) = compile_expr(cx, scope, arg)?;
                if !compat(te, *want) {
                    return Err(err(
                        DiagCode::E206,
                        format!(
                            "`{name}` expects {}, found {}",
                            want.describe(),
                            te.describe()
                        ),
                        arg.span,
                    ));
                }
                compiled.push(ce);
            }
            Ok((Expr::Call(builtin, compiled), ret))
        }
        ExprKind::Unary(op, inner) => {
            let (ce, te) = compile_expr(cx, scope, inner)?;
            let (want, out) = match op {
                UnOp::Not => (Ty::Bool, Ty::Bool),
                UnOp::Neg => (Ty::Int, Ty::Int),
            };
            if !compat(te, want) {
                return Err(err(
                    DiagCode::E206,
                    format!(
                        "unary {} expects {}, found {}",
                        if *op == UnOp::Not { "`!`" } else { "`-`" },
                        want.describe(),
                        te.describe()
                    ),
                    inner.span,
                ));
            }
            Ok((Expr::Unary(*op, Box::new(ce)), out))
        }
        ExprKind::Binary(op, a, b) => {
            let (ca, ta) = compile_expr(cx, scope, a)?;
            let (cb, tb) = compile_expr(cx, scope, b)?;
            let sym = |o: &BinOp| match o {
                BinOp::Mul => "*",
                BinOp::Rem => "%",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
            };
            let out = match op {
                BinOp::Eq | BinOp::Ne => {
                    // Structural equality: statically incompatible shapes
                    // would always be `false`, which is a bug, not intent.
                    if !compat(ta, tb) {
                        return Err(err(
                            DiagCode::E206,
                            format!(
                                "`{}` compares {} with {}; this can never be equal",
                                sym(op),
                                ta.describe(),
                                tb.describe()
                            ),
                            e.span,
                        ));
                    }
                    Ty::Bool
                }
                BinOp::Mul | BinOp::Rem | BinOp::Add | BinOp::Sub => {
                    for (t, side) in [(ta, a.span), (tb, b.span)] {
                        if !compat(t, Ty::Int) {
                            return Err(err(
                                DiagCode::E206,
                                format!("`{}` expects int operands, found {}", sym(op), t.describe()),
                                side,
                            ));
                        }
                    }
                    Ty::Int
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    for (t, side) in [(ta, a.span), (tb, b.span)] {
                        if !compat(t, Ty::Int) {
                            return Err(err(
                                DiagCode::E206,
                                format!("`{}` expects int operands, found {}", sym(op), t.describe()),
                                side,
                            ));
                        }
                    }
                    Ty::Bool
                }
                BinOp::And | BinOp::Or => {
                    for (t, side) in [(ta, a.span), (tb, b.span)] {
                        if !compat(t, Ty::Bool) {
                            return Err(err(
                                DiagCode::E206,
                                format!("`{}` expects bool operands, found {}", sym(op), t.describe()),
                                side,
                            ));
                        }
                    }
                    Ty::Bool
                }
            };
            Ok((Expr::Binary(*op, Box::new(ca), Box::new(cb)), out))
        }
    }
}

/// Const-evaluates a variable initializer (literals only; `compile_expr`
/// with [`Scope::Const`] has already rejected everything else).
fn const_eval(e: &Expr) -> Option<RtVal> {
    let ctx = super::eval::Ctx { vars: &[], ops: &[], complete_arg: None, peer_arg: None };
    super::eval::eval(e, &ctx)
}

fn validate_spec(spec: &SpecAst) -> Result<SpecDef, Diagnostic> {
    let mut kind: Option<(SpecKind, Span)> = None;
    let mut element: Option<(usize, Span)> = None;
    let mut vars: Vec<(String, TyAst)> = Vec::new();
    let mut init: Vec<RtVal> = Vec::new();
    let mut rule_names: HashSet<String> = HashSet::new();
    // Rules and completions are compiled in a second pass, once the full
    // variable table is known (declaration order within the body is free).
    let mut rule_items: Vec<&ItemAst> = Vec::new();
    let mut complete_items: Vec<&ItemAst> = Vec::new();
    let mut complete_methods: HashSet<String> = HashSet::new();

    for item in &spec.items {
        match item {
            ItemAst::Kind { seq, span } => {
                if kind.is_some() {
                    return Err(err(DiagCode::E202, "duplicate `kind` declaration", *span));
                }
                kind = Some((if *seq { SpecKind::Seq } else { SpecKind::Ca }, *span));
            }
            ItemAst::Element { cap, span } => {
                if element.is_some() {
                    return Err(err(DiagCode::E202, "duplicate `element` declaration", *span));
                }
                if *cap < 1 || *cap > MAX_ELEMENT_CAP {
                    return Err(err(
                        DiagCode::E213,
                        format!("invalid element cap {cap}; must be between 1 and {MAX_ELEMENT_CAP}"),
                        *span,
                    ));
                }
                element = Some((*cap as usize, *span));
            }
            ItemAst::Var { name, ty, init: init_expr, span } => {
                if vars.iter().any(|(n, _)| n == name) {
                    return Err(err(
                        DiagCode::E202,
                        format!("duplicate declaration of variable `{name}`"),
                        *span,
                    ));
                }
                let cx = SpecCx { vars: &[] };
                let value = match init_expr {
                    Some(e) => {
                        let (compiled, t) = compile_expr(&cx, &Scope::Const, e)?;
                        if !compat(t, of_ast(*ty)) {
                            return Err(err(
                                DiagCode::E206,
                                format!(
                                    "initializer of `{name}` is {}, but the variable is {}",
                                    t.describe(),
                                    of_ast(*ty).describe()
                                ),
                                e.span,
                            ));
                        }
                        const_eval(&compiled).ok_or_else(|| {
                            err(
                                DiagCode::E206,
                                format!("initializer of `{name}` does not evaluate to a value"),
                                e.span,
                            )
                        })?
                    }
                    None => match ty {
                        TyAst::Int => RtVal::Int(0),
                        TyAst::Bool => RtVal::Bool(false),
                        TyAst::List => RtVal::List(Vec::new()),
                    },
                };
                vars.push((name.clone(), *ty));
                init.push(value);
            }
            ItemAst::Rule { name, span, .. } => {
                if !rule_names.insert(name.clone()) {
                    return Err(err(
                        DiagCode::E202,
                        format!("duplicate declaration of rule `{name}`"),
                        *span,
                    ));
                }
                rule_items.push(item);
            }
            ItemAst::Complete { method, span, .. } => {
                if !complete_methods.insert(method.clone()) {
                    return Err(err(
                        DiagCode::E202,
                        format!("duplicate `complete` block for method `{method}`"),
                        *span,
                    ));
                }
                complete_items.push(item);
            }
        }
    }

    let Some((kind, _)) = kind else {
        return Err(err(
            DiagCode::E203,
            format!("spec `{}` is missing a `kind seq;` or `kind ca;` declaration", spec.name),
            spec.name_span,
        ));
    };
    if kind == SpecKind::Seq {
        if let Some((cap, span)) = element {
            if cap > 1 {
                return Err(err(
                    DiagCode::E208,
                    format!(
                        "`element {cap}` in a `kind seq` spec; sequential elements are singletons \
                         (use `kind ca` for concurrency-aware elements)"
                    ),
                    span,
                ));
            }
        }
    }
    let element_cap = element.map(|(c, _)| c).unwrap_or(1);

    let cx = SpecCx { vars: &vars };
    let mut rules = Vec::new();
    for item in rule_items {
        let ItemAst::Rule { name, bindings, whens, effects, span } = item else { unreachable!() };
        if kind == SpecKind::Seq && bindings.len() > 1 {
            return Err(err(
                DiagCode::E208,
                format!(
                    "rule `{name}` binds {} simultaneous operations, but this is a `kind seq` spec",
                    bindings.len()
                ),
                *span,
            ));
        }
        if bindings.len() > element_cap {
            return Err(err(
                DiagCode::E207,
                format!(
                    "rule `{name}` binds {} operations but the element cap is {element_cap} \
                     (declare a larger `element N;`)",
                    bindings.len()
                ),
                *span,
            ));
        }
        let mut resolved: Vec<(String, Method)> = Vec::new();
        for b in bindings {
            if resolved.iter().any(|(n, _)| *n == b.name) {
                return Err(err(
                    DiagCode::E202,
                    format!("duplicate binding `{}` in rule `{name}`", b.name),
                    b.span,
                ));
            }
            let method = intern_method(b.method.as_deref().unwrap_or(name));
            resolved.push((b.name.clone(), method));
        }
        let scope = Scope::Rule { bindings: &resolved };
        let mut guards = Vec::new();
        for w in whens {
            let (compiled, t) = compile_expr(&cx, &scope, w)?;
            if !compat(t, Ty::Bool) {
                return Err(err(
                    DiagCode::E206,
                    format!("`when` guard must be bool, found {}", t.describe()),
                    w.span,
                ));
            }
            guards.push(compiled);
        }
        let mut compiled_effects: Vec<(usize, Expr)> = Vec::new();
        for eff in effects {
            let Some(slot) = cx.var_slot(&eff.var) else {
                return Err(err(
                    DiagCode::E209,
                    format!("assignment to unknown state variable `{}`", eff.var),
                    eff.span,
                ));
            };
            if compiled_effects.iter().any(|(s, _)| *s == slot) {
                return Err(err(
                    DiagCode::E202,
                    format!("duplicate effect on `{}` in rule `{name}`", eff.var),
                    eff.span,
                ));
            }
            let (compiled, t) = compile_expr(&cx, &scope, &eff.value)?;
            let want = of_ast(vars[slot].1);
            if !compat(t, want) {
                return Err(err(
                    DiagCode::E206,
                    format!(
                        "effect assigns {} to `{}`, which is {}",
                        t.describe(),
                        eff.var,
                        want.describe()
                    ),
                    eff.value.span,
                ));
            }
            compiled_effects.push((slot, compiled));
        }
        rules.push(RuleDef {
            name: name.clone(),
            methods: resolved.into_iter().map(|(_, m)| m).collect(),
            guards,
            effects: compiled_effects,
        });
    }

    let mut completes = Vec::new();
    for item in complete_items {
        let ItemAst::Complete { method, items, .. } = item else { unreachable!() };
        let compiled = compile_completions(&cx, kind, items)?;
        completes.push(CompleteDef { method: intern_method(method), items: compiled });
    }

    Ok(SpecDef {
        name: spec.name.clone(),
        kind,
        element_cap,
        vars,
        init,
        rules,
        completes,
    })
}

fn compile_completions(
    cx: &SpecCx<'_>,
    kind: SpecKind,
    items: &[CompletionAst],
) -> Result<Vec<CItem>, Diagnostic> {
    let mut out = Vec::new();
    for item in items {
        match item {
            CompletionAst::Yield { value } => {
                out.push(compile_yield(cx, value, false)?);
            }
            CompletionAst::YieldRange { lo, hi, span } => {
                out.push(compile_range(lo, hi, *span)?);
            }
            CompletionAst::ForPeer { method, items, span } => {
                if kind == SpecKind::Seq {
                    return Err(err(
                        DiagCode::E208,
                        "`for peer` in a `kind seq` spec; sequential completions have no peers",
                        *span,
                    ));
                }
                let mut inner = Vec::new();
                for it in items {
                    match it {
                        CompletionAst::Yield { value, .. } => {
                            inner.push(compile_yield(cx, value, true)?)
                        }
                        CompletionAst::YieldRange { lo, hi, span } => {
                            inner.push(compile_range(lo, hi, *span)?)
                        }
                        // Parser rejects nested `for peer` (E103).
                        CompletionAst::ForPeer { .. } => unreachable!(),
                    }
                }
                out.push(CItem::ForPeer(intern_method(method), inner));
            }
        }
    }
    Ok(out)
}

fn compile_yield(cx: &SpecCx<'_>, value: &ExprAst, in_peer: bool) -> Result<CItem, Diagnostic> {
    let (compiled, t) = compile_expr(cx, &Scope::Complete { in_peer }, value)?;
    if t == Ty::List {
        return Err(err(
            DiagCode::E211,
            "a completion cannot yield a list; return values are unit, bool, int or a pair",
            value.span,
        ));
    }
    Ok(CItem::Yield(compiled))
}

/// Range bounds must be (possibly negated) integer literals so the
/// candidate set is known at compile time.
fn compile_range(lo: &ExprAst, hi: &ExprAst, span: Span) -> Result<CItem, Diagnostic> {
    fn lit(e: &ExprAst) -> Option<i64> {
        match &e.kind {
            ExprKind::Int(n) => Some(*n),
            ExprKind::Unary(UnOp::Neg, inner) => match &inner.kind {
                ExprKind::Int(n) => n.checked_neg(),
                _ => None,
            },
            _ => None,
        }
    }
    let (Some(a), Some(b)) = (lit(lo), lit(hi)) else {
        return Err(err(
            DiagCode::E210,
            "range bounds must be integer literals",
            span,
        ));
    };
    if a > b {
        return Err(err(
            DiagCode::E210,
            format!("invalid range {a} .. {b}: lower bound exceeds upper bound"),
            span,
        ));
    }
    if b - a >= MAX_RANGE_WIDTH {
        return Err(err(
            DiagCode::E210,
            format!("range {a} .. {b} spans more than {MAX_RANGE_WIDTH} candidate values"),
            span,
        ));
    }
    Ok(CItem::YieldRange(a, b))
}

#[cfg(test)]
mod tests {
    use super::super::{parse_str, DiagCode};

    fn code_of(src: &str) -> DiagCode {
        parse_str(src).unwrap_err().code
    }

    #[test]
    fn e201_duplicate_spec() {
        assert_eq!(code_of("spec a { kind seq; } spec a { kind seq; }"), DiagCode::E201);
    }

    #[test]
    fn e202_duplicates() {
        assert_eq!(code_of("spec s { kind seq; kind seq; }"), DiagCode::E202);
        assert_eq!(
            code_of("spec s { kind seq; var x: int; var x: int; }"),
            DiagCode::E202
        );
        assert_eq!(
            code_of("spec s { kind seq; rule r(a) { when true; } rule r(a) { when true; } }"),
            DiagCode::E202
        );
        assert_eq!(
            code_of("spec s { kind ca; element 2; rule r(a, a) { when true; } }"),
            DiagCode::E202
        );
        assert_eq!(
            code_of(
                "spec s { kind seq; var n: int; \
                 rule r(a) { effect n = 1; effect n = 2; } }"
            ),
            DiagCode::E202
        );
        assert_eq!(
            code_of("spec s { kind seq; complete f { yield 0; } complete f { yield 1; } }"),
            DiagCode::E202
        );
    }

    #[test]
    fn e203_missing_kind() {
        assert_eq!(code_of("spec s { var x: int; }"), DiagCode::E203);
    }

    #[test]
    fn e204_unknown_names() {
        assert_eq!(code_of("spec s { kind seq; rule r(a) { when nope == 1; } }"), DiagCode::E204);
        assert_eq!(
            code_of("spec s { kind seq; rule r(a) { when b.ret == 1; } }"),
            DiagCode::E204
        );
        assert_eq!(code_of("spec s { kind seq; complete f { yield nope; } }"), DiagCode::E204);
        // State variables are not visible to completions:
        assert_eq!(
            code_of("spec s { kind seq; var n: int; complete f { yield n; } }"),
            DiagCode::E204
        );
        // `peer` outside `for peer`:
        assert_eq!(
            code_of("spec s { kind ca; complete f { yield peer.arg; } }"),
            DiagCode::E204
        );
        // Unknown builtin:
        assert_eq!(
            code_of("spec s { kind seq; var l: list; rule r(a) { when pop(l) == 1; } }"),
            DiagCode::E204
        );
    }

    #[test]
    fn e205_peer_has_no_ret() {
        assert_eq!(
            code_of("spec s { kind ca; element 2; complete f { for peer f { yield peer.ret; } } }"),
            DiagCode::E205
        );
    }

    #[test]
    fn e206_type_mismatches() {
        assert_eq!(
            code_of("spec s { kind seq; var n: int = true; }"),
            DiagCode::E206
        );
        assert_eq!(
            code_of("spec s { kind seq; var n: int; rule r(a) { when n + true == 1; } }"),
            DiagCode::E206
        );
        assert_eq!(
            code_of("spec s { kind seq; var n: int; rule r(a) { when n; } }"),
            DiagCode::E206
        );
        assert_eq!(
            code_of("spec s { kind seq; var n: int; rule r(a) { effect n = true; } }"),
            DiagCode::E206
        );
        // Statically impossible equality:
        assert_eq!(
            code_of("spec s { kind seq; rule r(a) { when 3 == true; } }"),
            DiagCode::E206
        );
        // Builtin arity:
        assert_eq!(
            code_of("spec s { kind seq; var l: list; rule r(a) { when top(l, 1) == 1; } }"),
            DiagCode::E206
        );
    }

    #[test]
    fn e207_arity_exceeds_cap() {
        assert_eq!(
            code_of("spec s { kind ca; element 2; rule r(a, b, c) { when true; } }"),
            DiagCode::E207
        );
    }

    #[test]
    fn e208_concurrency_in_seq() {
        assert_eq!(code_of("spec s { kind seq; element 2; }"), DiagCode::E208);
        assert_eq!(
            code_of("spec s { kind seq; rule r(a, b) { when true; } }"),
            DiagCode::E208
        );
        assert_eq!(
            code_of("spec s { kind seq; complete f { for peer f { yield 0; } } }"),
            DiagCode::E208
        );
    }

    #[test]
    fn e209_unknown_effect_target() {
        assert_eq!(
            code_of("spec s { kind seq; rule r(a) { effect ghost = 1; } }"),
            DiagCode::E209
        );
    }

    #[test]
    fn e210_bad_ranges() {
        assert_eq!(
            code_of("spec s { kind seq; complete f { yield 5 .. 1; } }"),
            DiagCode::E210
        );
        assert_eq!(
            code_of("spec s { kind seq; complete f { yield 0 .. 99999; } }"),
            DiagCode::E210
        );
        assert_eq!(
            code_of("spec s { kind seq; complete f { yield arg .. 4; } }"),
            DiagCode::E210
        );
    }

    #[test]
    fn e211_list_yield() {
        assert_eq!(
            code_of("spec s { kind seq; complete f { yield [1, 2]; } }"),
            DiagCode::E211
        );
    }

    #[test]
    fn e212_empty_file() {
        assert_eq!(code_of(""), DiagCode::E212);
        assert_eq!(code_of("// only comments\n"), DiagCode::E212);
    }

    #[test]
    fn e213_bad_cap() {
        assert_eq!(code_of("spec s { kind ca; element 0; }"), DiagCode::E213);
        assert_eq!(code_of("spec s { kind ca; element 9; }"), DiagCode::E213);
    }

    #[test]
    fn negative_range_bounds_are_literals() {
        assert!(parse_str("spec s { kind seq; complete f { yield -3 .. 3; } }").is_ok());
    }

    #[test]
    fn defaulted_initializers() {
        let f = parse_str(
            "spec s { kind seq; var a: int; var b: bool; var c: list; \
             rule r(x) { when a == 0 && !b && empty(c); } }",
        )
        .unwrap();
        assert_eq!(f.specs().len(), 1);
    }

    #[test]
    fn spans_point_at_the_offender() {
        let d = parse_str("spec s {\n  kind seq;\n  var n: int = true;\n}").unwrap_err();
        assert_eq!(d.code, DiagCode::E206);
        assert_eq!(d.line, 3);
        assert_eq!(d.col, 16);
    }
}
