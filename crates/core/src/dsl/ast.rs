//! Untyped syntax tree produced by the parser. Names are still strings
//! here; validation resolves them into the compiled, index-based form in
//! [`super::validate`]/[`super::eval`].

use super::lex::Span;

#[derive(Debug)]
pub(crate) struct FileAst {
    pub specs: Vec<SpecAst>,
}

#[derive(Debug)]
pub(crate) struct SpecAst {
    pub name: String,
    pub name_span: Span,
    pub items: Vec<ItemAst>,
}

#[derive(Debug)]
pub(crate) enum ItemAst {
    /// `kind seq;` / `kind ca;`
    Kind { seq: bool, span: Span },
    /// `element N;`
    Element { cap: i64, span: Span },
    /// `var name: ty = init;`
    Var { name: String, ty: TyAst, init: Option<ExprAst>, span: Span },
    /// `rule name(bindings) { when ...; effect ...; }`
    Rule { name: String, bindings: Vec<BindingAst>, whens: Vec<ExprAst>, effects: Vec<EffectAst>, span: Span },
    /// `complete method { ... }`
    Complete { method: String, items: Vec<CompletionAst>, span: Span },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TyAst {
    Int,
    Bool,
    List,
}

#[derive(Debug)]
pub(crate) struct BindingAst {
    /// Binding name, e.g. `a` in `rule swap(a: exchange, ...)`.
    pub name: String,
    /// Method the bound operation must invoke; defaults to the rule name.
    pub method: Option<String>,
    pub span: Span,
}

#[derive(Debug)]
pub(crate) struct EffectAst {
    pub var: String,
    pub value: ExprAst,
    pub span: Span,
}

#[derive(Debug)]
pub(crate) enum CompletionAst {
    /// `yield expr;`
    Yield { value: ExprAst },
    /// `yield a .. b;` (inclusive integer range)
    YieldRange { lo: ExprAst, hi: ExprAst, span: Span },
    /// `for peer method { ... }`
    ForPeer { method: String, items: Vec<CompletionAst>, span: Span },
}

#[derive(Debug)]
pub(crate) struct ExprAst {
    pub kind: ExprKind,
    pub span: Span,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpField {
    Arg,
    Ret,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Mul,
    Rem,
    Add,
    Sub,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Debug)]
pub(crate) enum ExprKind {
    Unit,
    Bool(bool),
    Int(i64),
    /// `(b, i)` pair literal.
    Pair(Box<ExprAst>, Box<ExprAst>),
    /// `[1, 2, 3]` list literal.
    List(Vec<ExprAst>),
    /// Bare name: state variable, `arg`, or a misused binding.
    Name(String),
    /// `name.arg` / `name.ret` (including `peer.arg`).
    Field(String, OpField),
    /// Builtin call, e.g. `top(items)`.
    Call { name: String, name_span: Span, args: Vec<ExprAst> },
    Unary(UnOp, Box<ExprAst>),
    Binary(BinOp, Box<ExprAst>, Box<ExprAst>),
}
