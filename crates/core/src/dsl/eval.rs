//! The interpreter: compiled expressions, runtime values, and the
//! [`DslCaSpec`]/[`DslSeqSpec`] adapters that make a compiled
//! [`SpecDef`] behave exactly like a hand-written [`CaSpec`]/[`SeqSpec`].
//!
//! Runtime evaluation is total and panic-free: every partial operation
//! (ill-typed operand, `top` of an empty list, arithmetic overflow)
//! evaluates to "no value", which makes the enclosing rule fail to match
//! or the enclosing `yield` produce nothing — mirroring the `?`-based
//! style of the hand-written Rust specs.

use std::sync::Arc;

use super::ast::{BinOp, UnOp};
use super::validate::{CItem, RuleDef, SpecDef, SpecKind};
use crate::ids::{ObjectId, Value};
use crate::op::Operation;
use crate::spec::{CaSpec, Invocation, SeqSpec};
use crate::trace::CaElement;

/// A runtime value of an interpreted spec: the [`Value`] domain plus
/// integer lists for abstract state (stack/queue contents). This is the
/// state-vector element of [`DslCaSpec`]; it is public only because
/// `CaSpec::State` must be nameable by generic engine code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RtVal {
    /// The unit value `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A `(bool, int)` pair, e.g. an exchange result.
    Pair(bool, i64),
    /// An integer list (abstract stack/queue contents). Not expressible
    /// as a [`Value`]; lists live only in spec state.
    List(Vec<i64>),
}

impl RtVal {
    fn from_value(v: &Value) -> RtVal {
        match *v {
            Value::Unit => RtVal::Unit,
            Value::Bool(b) => RtVal::Bool(b),
            Value::Int(n) => RtVal::Int(n),
            Value::Pair(b, n) => RtVal::Pair(b, n),
        }
    }

    fn to_value(&self) -> Option<Value> {
        match self {
            RtVal::Unit => Some(Value::Unit),
            RtVal::Bool(b) => Some(Value::Bool(*b)),
            RtVal::Int(n) => Some(Value::Int(*n)),
            RtVal::Pair(b, n) => Some(Value::Pair(*b, *n)),
            RtVal::List(_) => None,
        }
    }
}

/// List/query builtins. Arity and argument types are checked at
/// validation time ([`super::DiagCode::E206`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    /// `top(list) -> int`: last (most recently pushed) element; fails on
    /// an empty list.
    Top,
    /// `len(list) -> int`.
    Len,
    /// `empty(list) -> bool`.
    Empty,
    /// `push(list, int) -> list`: appends.
    Push,
    /// `drop(list) -> list`: removes the last element; fails on empty.
    Drop,
}

/// A validated expression with every name resolved to an index.
#[derive(Debug, Clone)]
pub(crate) enum Expr {
    Unit,
    Bool(bool),
    Int(i64),
    Pair(Box<Expr>, Box<Expr>),
    List(Vec<Expr>),
    /// State variable, by slot.
    Var(usize),
    /// `b.arg` of the rule binding at this index.
    OpArg(usize),
    /// `b.ret` of the rule binding at this index.
    OpRet(usize),
    /// `arg` inside a `complete` block.
    CompleteArg,
    /// `peer.arg` inside a `for peer` block.
    PeerArg,
    Call(Builtin, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Evaluation context: what the resolved indices point at.
pub(crate) struct Ctx<'a> {
    pub vars: &'a [RtVal],
    /// One operation per rule binding, in binding order.
    pub ops: &'a [&'a Operation],
    pub complete_arg: Option<&'a Value>,
    pub peer_arg: Option<&'a Value>,
}

impl Ctx<'_> {
    #[cfg(test)]
    fn empty() -> Ctx<'static> {
        Ctx { vars: &[], ops: &[], complete_arg: None, peer_arg: None }
    }
}

/// Evaluates `expr`; `None` means "no value" (runtime type mismatch,
/// overflow, or a partial builtin applied outside its domain).
pub(crate) fn eval(expr: &Expr, ctx: &Ctx<'_>) -> Option<RtVal> {
    match expr {
        Expr::Unit => Some(RtVal::Unit),
        Expr::Bool(b) => Some(RtVal::Bool(*b)),
        Expr::Int(n) => Some(RtVal::Int(*n)),
        Expr::Pair(a, b) => {
            let RtVal::Bool(ok) = eval(a, ctx)? else { return None };
            let RtVal::Int(v) = eval(b, ctx)? else { return None };
            Some(RtVal::Pair(ok, v))
        }
        Expr::List(elems) => {
            let mut out = Vec::with_capacity(elems.len());
            for e in elems {
                let RtVal::Int(v) = eval(e, ctx)? else { return None };
                out.push(v);
            }
            Some(RtVal::List(out))
        }
        Expr::Var(i) => ctx.vars.get(*i).cloned(),
        Expr::OpArg(i) => ctx.ops.get(*i).map(|op| RtVal::from_value(&op.arg)),
        Expr::OpRet(i) => ctx.ops.get(*i).map(|op| RtVal::from_value(&op.ret)),
        Expr::CompleteArg => ctx.complete_arg.map(RtVal::from_value),
        Expr::PeerArg => ctx.peer_arg.map(RtVal::from_value),
        Expr::Call(builtin, args) => match builtin {
            Builtin::Top => {
                let RtVal::List(xs) = eval(&args[0], ctx)? else { return None };
                xs.last().map(|&v| RtVal::Int(v))
            }
            Builtin::Len => {
                let RtVal::List(xs) = eval(&args[0], ctx)? else { return None };
                Some(RtVal::Int(xs.len() as i64))
            }
            Builtin::Empty => {
                let RtVal::List(xs) = eval(&args[0], ctx)? else { return None };
                Some(RtVal::Bool(xs.is_empty()))
            }
            Builtin::Push => {
                let RtVal::List(mut xs) = eval(&args[0], ctx)? else { return None };
                let RtVal::Int(v) = eval(&args[1], ctx)? else { return None };
                xs.push(v);
                Some(RtVal::List(xs))
            }
            Builtin::Drop => {
                let RtVal::List(mut xs) = eval(&args[0], ctx)? else { return None };
                xs.pop()?;
                Some(RtVal::List(xs))
            }
        },
        Expr::Unary(op, e) => match (op, eval(e, ctx)?) {
            (UnOp::Not, RtVal::Bool(b)) => Some(RtVal::Bool(!b)),
            (UnOp::Neg, RtVal::Int(n)) => n.checked_neg().map(RtVal::Int),
            _ => None,
        },
        Expr::Binary(op, a, b) => {
            // `&&` and `||` short-circuit so guards like
            // `!empty(items) && top(items) == x` are safe on empty lists.
            match op {
                BinOp::And => {
                    let RtVal::Bool(l) = eval(a, ctx)? else { return None };
                    if !l {
                        return Some(RtVal::Bool(false));
                    }
                    let RtVal::Bool(r) = eval(b, ctx)? else { return None };
                    return Some(RtVal::Bool(r));
                }
                BinOp::Or => {
                    let RtVal::Bool(l) = eval(a, ctx)? else { return None };
                    if l {
                        return Some(RtVal::Bool(true));
                    }
                    let RtVal::Bool(r) = eval(b, ctx)? else { return None };
                    return Some(RtVal::Bool(r));
                }
                _ => {}
            }
            let l = eval(a, ctx)?;
            let r = eval(b, ctx)?;
            match op {
                // Equality is structural across the whole value domain:
                // comparing different shapes yields `false`, not an error
                // (mirrors `op.ret == Value::Int(n)` in hand-written specs).
                BinOp::Eq => Some(RtVal::Bool(l == r)),
                BinOp::Ne => Some(RtVal::Bool(l != r)),
                _ => {
                    let (RtVal::Int(x), RtVal::Int(y)) = (l, r) else { return None };
                    match op {
                        BinOp::Mul => x.checked_mul(y).map(RtVal::Int),
                        BinOp::Rem => x.checked_rem(y).map(RtVal::Int),
                        BinOp::Add => x.checked_add(y).map(RtVal::Int),
                        BinOp::Sub => x.checked_sub(y).map(RtVal::Int),
                        BinOp::Lt => Some(RtVal::Bool(x < y)),
                        BinOp::Le => Some(RtVal::Bool(x <= y)),
                        BinOp::Gt => Some(RtVal::Bool(x > y)),
                        BinOp::Ge => Some(RtVal::Bool(x >= y)),
                        BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne => unreachable!(),
                    }
                }
            }
        }
    }
}

// ---- rule matching -------------------------------------------------------

/// Tries `rule` against `ops` (one candidate assignment of bindings to
/// operations per permutation; methods must line up). On the first
/// assignment whose guards all hold, evaluates the effects against the
/// pre-state and returns the successor state.
fn try_rule(def: &SpecDef, rule: &RuleDef, vars: &[RtVal], ops: &[&Operation]) -> Option<Vec<RtVal>> {
    let n = rule.methods.len();
    debug_assert_eq!(n, ops.len());
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        let assigned: Vec<&Operation> = perm.iter().map(|&i| ops[i]).collect();
        if assigned.iter().zip(&rule.methods).all(|(op, m)| op.method == *m) {
            let ctx = Ctx { vars, ops: &assigned, complete_arg: None, peer_arg: None };
            let holds = rule.guards.iter().all(|g| eval(g, &ctx) == Some(RtVal::Bool(true)));
            if holds {
                let mut next = vars.to_vec();
                let mut news = Vec::with_capacity(rule.effects.len());
                let mut ok = true;
                for (slot, value) in &rule.effects {
                    match eval(value, &ctx) {
                        Some(v) if matches!(
                            (&v, &def.vars[*slot].1),
                            (RtVal::Int(_), super::ast::TyAst::Int)
                                | (RtVal::Bool(_), super::ast::TyAst::Bool)
                                | (RtVal::List(_), super::ast::TyAst::List)
                        ) =>
                        {
                            news.push((*slot, v));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    for (slot, v) in news {
                        next[slot] = v;
                    }
                    return Some(next);
                }
            }
        }
        if !next_permutation(&mut perm) {
            return None;
        }
    }
}

/// Advances `perm` to the next lexicographic permutation; `false` when
/// exhausted. Element caps are ≤ 8, so this is at most 8! candidates and
/// in practice (arity ≤ 2) one or two.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

fn step_ops(def: &SpecDef, vars: &[RtVal], ops: &[&Operation]) -> Option<Vec<RtVal>> {
    if ops.len() > def.element_cap {
        return None;
    }
    def.rules
        .iter()
        .filter(|r| r.methods.len() == ops.len())
        .find_map(|r| try_rule(def, r, vars, ops))
}

fn completions(def: &SpecDef, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
    let Some(complete) = def.completes.iter().find(|c| c.method == inv.method) else {
        return Vec::new();
    };
    let mut out: Vec<Value> = Vec::new();
    let mut push = |v: Value, out: &mut Vec<Value>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    fn emit(
        items: &[CItem],
        inv: &Invocation,
        peers: &[Invocation],
        push: &mut dyn FnMut(Value, &mut Vec<Value>),
        out: &mut Vec<Value>,
    ) {
        for item in items {
            match item {
                CItem::Yield(e) => {
                    let ctx = Ctx {
                        vars: &[],
                        ops: &[],
                        complete_arg: Some(&inv.arg),
                        peer_arg: None,
                    };
                    if let Some(v) = eval(e, &ctx).and_then(|v| v.to_value()) {
                        push(v, out);
                    }
                }
                CItem::YieldRange(lo, hi) => {
                    for v in *lo..=*hi {
                        push(Value::Int(v), out);
                    }
                }
                CItem::ForPeer(method, inner) => {
                    for peer in peers.iter().filter(|p| p.method == *method) {
                        for e in inner {
                            let ctx = Ctx {
                                vars: &[],
                                ops: &[],
                                complete_arg: Some(&inv.arg),
                                peer_arg: Some(&peer.arg),
                            };
                            match e {
                                CItem::Yield(expr) => {
                                    if let Some(v) =
                                        eval(expr, &ctx).and_then(|v| v.to_value())
                                    {
                                        push(v, out);
                                    }
                                }
                                CItem::YieldRange(lo, hi) => {
                                    for v in *lo..=*hi {
                                        push(Value::Int(v), out);
                                    }
                                }
                                // Parser rejects nested `for peer`.
                                CItem::ForPeer(..) => {}
                            }
                        }
                    }
                }
            }
        }
    }
    emit(&complete.items, inv, peers, &mut push, &mut out);
    out
}

// ---- spec adapters -------------------------------------------------------

impl SpecDef {
    /// Instantiates the spec as a [`CaSpec`] over `object`. Works for
    /// both kinds: a `kind seq` spec becomes the singleton-element
    /// fragment, exactly like wrapping the Rust spec in
    /// [`crate::spec::SeqAsCa`].
    pub fn to_ca(self: &Arc<Self>, object: ObjectId) -> DslCaSpec {
        DslCaSpec { def: Arc::clone(self), object }
    }

    /// Instantiates the spec as a [`SeqSpec`] over `object`; `None` for
    /// `kind ca` specs, which have no sequential reading.
    pub fn to_seq(self: &Arc<Self>, object: ObjectId) -> Option<DslSeqSpec> {
        (self.kind == SpecKind::Seq).then(|| DslSeqSpec { def: Arc::clone(self), object })
    }
}

/// An interpreted `.cal` spec instantiated for one object, as a
/// [`CaSpec`]. Obtained from [`SpecDef::to_ca`]; cheap to clone (the
/// compiled definition is shared behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use cal_core::dsl::parse_str;
/// use cal_core::spec::CaSpec;
/// use cal_core::{ObjectId, Method, ThreadId, Value, Operation};
/// use cal_core::trace::CaElement;
///
/// let file = parse_str(
///     "spec counter { kind seq; var n: int = 0; \
///      rule inc(a) { when a.ret == n; effect n = n + 1; } \
///      complete inc { yield 0 .. 16; } }",
/// )
/// .unwrap();
/// let spec = file.get("counter").unwrap().to_ca(ObjectId(0));
/// let op = |t: u32, n: i64| {
///     Operation::new(ThreadId(t), ObjectId(0), Method("inc"), Value::Unit, Value::Int(n))
/// };
/// let s0 = spec.initial();
/// let s1 = spec.step(&s0, &CaElement::singleton(op(1, 0))).expect("first inc returns 0");
/// assert!(spec.step(&s1, &CaElement::singleton(op(2, 1))).is_some());
/// assert!(spec.step(&s1, &CaElement::singleton(op(2, 0))).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct DslCaSpec {
    def: Arc<SpecDef>,
    object: ObjectId,
}

impl DslCaSpec {
    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The compiled definition this instance interprets.
    pub fn def(&self) -> &Arc<SpecDef> {
        &self.def
    }
}

impl CaSpec for DslCaSpec {
    type State = Vec<RtVal>;

    fn initial(&self) -> Vec<RtVal> {
        self.def.initial_state()
    }

    fn step(&self, state: &Vec<RtVal>, element: &CaElement) -> Option<Vec<RtVal>> {
        if element.object() != self.object {
            return None;
        }
        let ops: Vec<&Operation> = element.ops().iter().collect();
        step_ops(&self.def, state, &ops)
    }

    fn max_element_size(&self) -> usize {
        self.def.element_cap
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        if inv.object != self.object {
            return Vec::new();
        }
        completions(&self.def, inv, &[])
    }

    fn completions_among(&self, inv: &Invocation, peers: &[Invocation]) -> Vec<Value> {
        if inv.object != self.object {
            return Vec::new();
        }
        completions(&self.def, inv, peers)
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then(|| self.clone())
    }
}

/// An interpreted `kind seq` spec instantiated for one object, as a
/// [`SeqSpec`]. Obtained from [`SpecDef::to_seq`]; used by `--mode seq`
/// and `--mode interval`, which require a sequential specification.
///
/// # Examples
///
/// ```
/// use cal_core::dsl::parse_str;
/// use cal_core::spec::SeqSpec;
/// use cal_core::{ObjectId, Method, ThreadId, Value, Operation};
///
/// let file = parse_str(
///     "spec register { kind seq; var val: int = 0; \
///      rule write(a) { when a.ret == unit; effect val = a.arg; } \
///      rule read(a) { when a.ret == val; } \
///      complete write { yield unit; } complete read { yield 0; } }",
/// )
/// .unwrap();
/// let spec = file.get("register").unwrap().to_seq(ObjectId(0)).unwrap();
/// let w = Operation::new(ThreadId(1), ObjectId(0), Method("write"), Value::Int(7), Value::Unit);
/// let r = Operation::new(ThreadId(2), ObjectId(0), Method("read"), Value::Unit, Value::Int(7));
/// assert!(spec.accepts(&[w, r]));
/// ```
#[derive(Debug, Clone)]
pub struct DslSeqSpec {
    def: Arc<SpecDef>,
    object: ObjectId,
}

impl DslSeqSpec {
    /// The specified object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The compiled definition this instance interprets.
    pub fn def(&self) -> &Arc<SpecDef> {
        &self.def
    }
}

impl SeqSpec for DslSeqSpec {
    type State = Vec<RtVal>;

    fn initial(&self) -> Vec<RtVal> {
        self.def.initial_state()
    }

    fn apply(&self, state: &Vec<RtVal>, op: &Operation) -> Option<Vec<RtVal>> {
        if op.object != self.object {
            return None;
        }
        step_ops(&self.def, state, &[op])
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        if inv.object != self.object {
            return Vec::new();
        }
        completions(&self.def, inv, &[])
    }

    fn restrict(&self, object: ObjectId) -> Option<Self> {
        (object == self.object).then(|| self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse_str;
    use super::*;
    use crate::ids::{Method, ThreadId};

    const O: ObjectId = ObjectId(0);

    fn op(t: u32, m: &'static str, arg: Value, ret: Value) -> Operation {
        Operation::new(ThreadId(t), O, Method(m), arg, ret)
    }

    #[test]
    fn stack_rules_interpret_correctly() {
        let file = parse_str(
            "spec stack { kind seq; var items: list = []; \
             rule push(a) { when a.ret == true; effect items = push(items, a.arg); } \
             rule pop_top(a: pop) { when a.ret == (true, top(items)); effect items = drop(items); } \
             rule pop_empty(a: pop) { when empty(items) && a.ret == (false, 0); } \
             complete push { yield true; } complete pop { yield (false, 0); } }",
        )
        .unwrap();
        let spec = file.get("stack").unwrap().to_seq(O).unwrap();
        // LIFO discipline honoured:
        assert!(spec.accepts(&[
            op(1, "push", Value::Int(1), Value::Bool(true)),
            op(1, "push", Value::Int(2), Value::Bool(true)),
            op(2, "pop", Value::Unit, Value::Pair(true, 2)),
            op(2, "pop", Value::Unit, Value::Pair(true, 1)),
            op(2, "pop", Value::Unit, Value::Pair(false, 0)),
        ]));
        // FIFO order rejected:
        assert!(!spec.accepts(&[
            op(1, "push", Value::Int(1), Value::Bool(true)),
            op(1, "push", Value::Int(2), Value::Bool(true)),
            op(2, "pop", Value::Unit, Value::Pair(true, 1)),
        ]));
        // Empty-pop only when empty:
        assert!(!spec.accepts(&[
            op(1, "push", Value::Int(1), Value::Bool(true)),
            op(2, "pop", Value::Unit, Value::Pair(false, 0)),
        ]));
    }

    #[test]
    fn exchanger_pairs_swap() {
        let file = parse_str(
            "spec exchanger { kind ca; element 2; \
             rule fail(a: exchange) { when a.ret == (false, a.arg); } \
             rule swap(a: exchange, b: exchange) { \
               when a.ret == (true, b.arg) && b.ret == (true, a.arg); } \
             complete exchange { yield (false, arg); \
               for peer exchange { yield (true, peer.arg); } } }",
        )
        .unwrap();
        let spec = file.get("exchanger").unwrap().to_ca(O);
        let a = op(1, "exchange", Value::Int(3), Value::Pair(true, 4));
        let b = op(2, "exchange", Value::Int(4), Value::Pair(true, 3));
        let pair = CaElement::pair(a, b).unwrap();
        assert!(spec.step(&spec.initial(), &pair).is_some());
        // A mismatched swap is rejected:
        let c = op(2, "exchange", Value::Int(4), Value::Pair(true, 9));
        let bad = CaElement::pair(a, c).unwrap();
        assert!(spec.step(&spec.initial(), &bad).is_none());
        // Singleton failure accepted; singleton "success" rejected:
        let f = op(1, "exchange", Value::Int(3), Value::Pair(false, 3));
        assert!(spec.step(&spec.initial(), &CaElement::singleton(f)).is_some());
        let s = op(1, "exchange", Value::Int(3), Value::Pair(true, 3));
        assert!(spec.step(&spec.initial(), &CaElement::singleton(s)).is_none());
    }

    #[test]
    fn exchanger_completions_use_peers() {
        let file = parse_str(
            "spec exchanger { kind ca; element 2; \
             rule fail(a: exchange) { when a.ret == (false, a.arg); } \
             complete exchange { yield (false, arg); \
               for peer exchange { yield (true, peer.arg); } } }",
        )
        .unwrap();
        let spec = file.get("exchanger").unwrap().to_ca(O);
        let inv = Invocation::new(ThreadId(1), O, Method("exchange"), Value::Int(3));
        assert_eq!(spec.completions_of(&inv), vec![Value::Pair(false, 3)]);
        let peer = Invocation::new(ThreadId(2), O, Method("exchange"), Value::Int(4));
        assert_eq!(
            spec.completions_among(&inv, &[peer]),
            vec![Value::Pair(false, 3), Value::Pair(true, 4)]
        );
    }

    #[test]
    fn wrong_object_rejected_and_restrict_matches_builtins() {
        let file = parse_str(
            "spec register { kind seq; var val: int = 0; \
             rule write(a) { when a.ret == unit; effect val = a.arg; } \
             rule read(a) { when a.ret == val; } \
             complete write { yield unit; } complete read { yield 0; } }",
        )
        .unwrap();
        let spec = file.get("register").unwrap().to_ca(ObjectId(7));
        let w = Operation::new(
            ThreadId(1),
            ObjectId(0),
            Method("write"),
            Value::Int(1),
            Value::Unit,
        );
        assert!(spec.step(&spec.initial(), &CaElement::singleton(w)).is_none());
        assert!(spec.restrict(ObjectId(7)).is_some());
        assert!(spec.restrict(ObjectId(0)).is_none());
    }

    #[test]
    fn overflow_is_rejection_not_panic() {
        let file = parse_str(
            "spec c { kind seq; var n: int = 0; \
             rule inc(a) { when a.ret == n; effect n = n + 1; } \
             complete inc { yield 0 .. 4; } }",
        )
        .unwrap();
        let spec = file.get("c").unwrap().to_seq(O).unwrap();
        // Force the counter near i64::MAX via a state where n would
        // overflow: the effect fails, so the op must not match.
        let big = vec![RtVal::Int(i64::MAX)];
        let op = op(1, "inc", Value::Unit, Value::Int(i64::MAX));
        assert!(spec.apply(&big, &op).is_none());
    }

    #[test]
    fn range_yield_is_inclusive() {
        let file = parse_str(
            "spec c { kind seq; var n: int = 0; \
             rule inc(a) { when a.ret == n; effect n = n + 1; } \
             complete inc { yield 0 .. 16; } }",
        )
        .unwrap();
        let spec = file.get("c").unwrap().to_seq(O).unwrap();
        let inv = Invocation::new(ThreadId(1), O, Method("inc"), Value::Unit);
        assert_eq!(spec.completions_of(&inv).len(), 17);
    }

    #[test]
    fn seq_kind_as_ca_rejects_wide_elements() {
        let file = parse_str(
            "spec register { kind seq; var val: int = 0; \
             rule write(a) { when a.ret == unit; effect val = a.arg; } \
             rule read(a) { when a.ret == val; } \
             complete write { yield unit; } complete read { yield 0; } }",
        )
        .unwrap();
        let spec = file.get("register").unwrap().to_ca(O);
        let a = op(1, "write", Value::Int(1), Value::Unit);
        let b = op(2, "write", Value::Int(2), Value::Unit);
        let wide = CaElement::pair(a, b).unwrap();
        assert!(spec.step(&spec.initial(), &wide).is_none());
        assert_eq!(spec.max_element_size(), 1);
    }

    #[test]
    fn ca_kind_has_no_seq_reading() {
        let file = parse_str(
            "spec e { kind ca; element 2; \
             rule fail(a: exchange) { when a.ret == (false, a.arg); } \
             complete exchange { yield (false, arg); } }",
        )
        .unwrap();
        assert!(file.get("e").unwrap().to_seq(O).is_none());
    }

    #[test]
    fn eval_never_panics_on_partial_builtins() {
        let ctx = Ctx::empty();
        let top_of_empty = Expr::Call(Builtin::Top, vec![Expr::List(vec![])]);
        assert_eq!(eval(&top_of_empty, &ctx), None);
        let drop_of_empty = Expr::Call(Builtin::Drop, vec![Expr::List(vec![])]);
        assert_eq!(eval(&drop_of_empty, &ctx), None);
        let rem_zero =
            Expr::Binary(BinOp::Rem, Box::new(Expr::Int(5)), Box::new(Expr::Int(0)));
        assert_eq!(eval(&rem_zero, &ctx), None);
    }
}
