//! Recursive-descent parser over the token stream. Emits the `E1xx`
//! family (`E101` unexpected token, `E102` unexpected end of file, `E103`
//! unknown item, `E104` unknown spec kind, `E105` unknown type) plus the
//! structurally-detected `E205` (a field other than `.arg`/`.ret`).

use super::ast::*;
use super::lex::{Span, Spanned, Tok};
use super::{DiagCode, Diagnostic};

pub(crate) fn parse(tokens: &[Spanned]) -> Result<FileAst, Diagnostic> {
    let mut p = Parser { tokens, pos: 0 };
    let mut specs = Vec::new();
    while !p.at_eof() {
        specs.push(p.spec()?);
    }
    Ok(FileAst { specs })
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &'a Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> &'a Spanned {
        let t = &self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, code: DiagCode, message: impl Into<String>) -> Diagnostic {
        let span = self.span();
        Diagnostic::new(code, message, span.line, span.col)
    }

    /// `E101`, or `E102` when the surprise is the end of the file.
    fn unexpected(&self, wanted: &str) -> Diagnostic {
        if self.at_eof() {
            self.err(DiagCode::E102, format!("expected {wanted}, found end of file"))
        } else {
            self.err(
                DiagCode::E101,
                format!("expected {wanted}, found {}", self.peek().describe()),
            )
        }
    }

    fn expect(&mut self, tok: &Tok, wanted: &str) -> Result<Span, Diagnostic> {
        if self.peek() == tok {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(wanted))
        }
    }

    fn ident(&mut self, wanted: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek() {
            Tok::Ident(s) => {
                let span = self.span();
                let s = s.clone();
                self.bump();
                Ok((s, span))
            }
            _ => Err(self.unexpected(wanted)),
        }
    }

    /// Consumes a specific keyword (which lexes as an identifier).
    fn keyword(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        match self.peek() {
            Tok::Ident(s) if s == kw => Ok(self.bump().span),
            _ => Err(self.unexpected(&format!("`{kw}`"))),
        }
    }

    fn spec(&mut self) -> Result<SpecAst, Diagnostic> {
        self.keyword("spec")?;
        let (name, name_span) = self.ident("a specification name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut items = Vec::new();
        loop {
            if matches!(self.peek(), Tok::RBrace) {
                self.bump();
                break;
            }
            if self.at_eof() {
                return Err(self.unexpected("`}` closing the spec body"));
            }
            items.push(self.item()?);
        }
        Ok(SpecAst { name, name_span, items })
    }

    fn item(&mut self) -> Result<ItemAst, Diagnostic> {
        let span = self.span();
        let head = match self.peek() {
            Tok::Ident(s) => s.clone(),
            _ => return Err(self.unexpected("an item (`kind`, `element`, `var`, `rule` or `complete`)")),
        };
        match head.as_str() {
            "kind" => {
                self.bump();
                let (k, kspan) = self.ident("`seq` or `ca`")?;
                let seq = match k.as_str() {
                    "seq" => true,
                    "ca" => false,
                    other => {
                        return Err(Diagnostic::new(
                            DiagCode::E104,
                            format!("unknown spec kind `{other}`; expected `seq` or `ca`"),
                            kspan.line,
                            kspan.col,
                        ));
                    }
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(ItemAst::Kind { seq, span })
            }
            "element" => {
                self.bump();
                let cap = match self.peek() {
                    Tok::Int(n) => {
                        let n = *n;
                        self.bump();
                        n
                    }
                    _ => return Err(self.unexpected("an element size")),
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(ItemAst::Element { cap, span })
            }
            "var" => {
                self.bump();
                let (name, _) = self.ident("a variable name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let (tyname, tyspan) = self.ident("a type (`int`, `bool` or `list`)")?;
                let ty = match tyname.as_str() {
                    "int" => TyAst::Int,
                    "bool" => TyAst::Bool,
                    "list" => TyAst::List,
                    other => {
                        return Err(Diagnostic::new(
                            DiagCode::E105,
                            format!("unknown type `{other}`; expected `int`, `bool` or `list`"),
                            tyspan.line,
                            tyspan.col,
                        ));
                    }
                };
                let init = if matches!(self.peek(), Tok::Assign) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(ItemAst::Var { name, ty, init, span })
            }
            "rule" => {
                self.bump();
                let (name, _) = self.ident("a rule name")?;
                self.expect(&Tok::LParen, "`(`")?;
                let mut bindings = Vec::new();
                loop {
                    let bspan = self.span();
                    let (bname, _) = self.ident("a binding name")?;
                    let method = if matches!(self.peek(), Tok::Colon) {
                        self.bump();
                        Some(self.ident("a method name")?.0)
                    } else {
                        None
                    };
                    bindings.push(BindingAst { name: bname, method, span: bspan });
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                self.expect(&Tok::LBrace, "`{`")?;
                let mut whens = Vec::new();
                let mut effects = Vec::new();
                loop {
                    match self.peek() {
                        Tok::RBrace => {
                            self.bump();
                            break;
                        }
                        Tok::Ident(s) if s == "when" => {
                            self.bump();
                            whens.push(self.expr()?);
                            self.expect(&Tok::Semi, "`;`")?;
                        }
                        Tok::Ident(s) if s == "effect" => {
                            let espan = self.span();
                            self.bump();
                            let (var, _) = self.ident("a state variable name")?;
                            self.expect(&Tok::Assign, "`=`")?;
                            let value = self.expr()?;
                            self.expect(&Tok::Semi, "`;`")?;
                            effects.push(EffectAst { var, value, span: espan });
                        }
                        Tok::Ident(other) => {
                            let other = other.clone();
                            return Err(self.err(
                                DiagCode::E103,
                                format!("unknown item `{other}` in rule body; expected `when` or `effect`"),
                            ));
                        }
                        _ => return Err(self.unexpected("`when`, `effect` or `}`")),
                    }
                }
                Ok(ItemAst::Rule { name, bindings, whens, effects, span })
            }
            "complete" => {
                self.bump();
                let (method, _) = self.ident("a method name")?;
                self.expect(&Tok::LBrace, "`{`")?;
                let items = self.completion_items(false)?;
                Ok(ItemAst::Complete { method, items, span })
            }
            other => Err(self.err(
                DiagCode::E103,
                format!(
                    "unknown item `{other}` in spec body; expected `kind`, `element`, `var`, `rule` or `complete`"
                ),
            )),
        }
    }

    /// Parses completion items up to and including the closing `}`.
    fn completion_items(&mut self, in_peer: bool) -> Result<Vec<CompletionAst>, Diagnostic> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    return Ok(items);
                }
                Tok::Ident(s) if s == "yield" => {
                    let span = self.span();
                    self.bump();
                    let value = self.expr()?;
                    if matches!(self.peek(), Tok::DotDot) {
                        self.bump();
                        let hi = self.expr()?;
                        self.expect(&Tok::Semi, "`;`")?;
                        items.push(CompletionAst::YieldRange { lo: value, hi, span });
                    } else {
                        self.expect(&Tok::Semi, "`;`")?;
                        items.push(CompletionAst::Yield { value });
                    }
                }
                Tok::Ident(s) if s == "for" && !in_peer => {
                    let span = self.span();
                    self.bump();
                    self.keyword("peer")?;
                    let (method, _) = self.ident("a method name")?;
                    self.expect(&Tok::LBrace, "`{`")?;
                    let inner = self.completion_items(true)?;
                    items.push(CompletionAst::ForPeer { method, items: inner, span });
                }
                Tok::Ident(other) => {
                    let other = other.clone();
                    let wanted =
                        if in_peer { "`yield` (peer blocks do not nest)" } else { "`yield` or `for peer`" };
                    return Err(self.err(
                        DiagCode::E103,
                        format!("unknown item `{other}` in completion body; expected {wanted}"),
                    ));
                }
                _ => return Err(self.unexpected("`yield`, `for peer` or `}`")),
            }
        }
    }

    // ---- expressions: precedence climbing --------------------------------

    fn expr(&mut self) -> Result<ExprAst, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::OrOr) {
            let span = lhs.span;
            self.bump();
            let rhs = self.and_expr()?;
            lhs = ExprAst { kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Tok::AndAnd) {
            let span = lhs.span;
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = ExprAst { kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let span = lhs.span;
        self.bump();
        let rhs = self.add_expr()?;
        // Comparisons do not chain (`a < b < c` is a syntax error), same
        // as Rust.
        Ok(ExprAst { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span })
    }

    fn add_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let span = lhs.span;
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = ExprAst { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            let span = lhs.span;
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = ExprAst { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let span = self.span();
        match self.peek() {
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(ExprAst { kind: ExprKind::Unary(UnOp::Not, Box::new(e)), span })
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(ExprAst { kind: ExprKind::Unary(UnOp::Neg, Box::new(e)), span })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<ExprAst, Diagnostic> {
        let span = self.span();
        match self.peek() {
            Tok::Int(n) => {
                let n = *n;
                self.bump();
                Ok(ExprAst { kind: ExprKind::Int(n), span })
            }
            Tok::LParen => {
                self.bump();
                if matches!(self.peek(), Tok::RParen) {
                    self.bump();
                    return Ok(ExprAst { kind: ExprKind::Unit, span });
                }
                let first = self.expr()?;
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                    let second = self.expr()?;
                    self.expect(&Tok::RParen, "`)`")?;
                    Ok(ExprAst { kind: ExprKind::Pair(Box::new(first), Box::new(second)), span })
                } else {
                    self.expect(&Tok::RParen, "`)` or `,`")?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if !matches!(self.peek(), Tok::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if matches!(self.peek(), Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "`]`")?;
                Ok(ExprAst { kind: ExprKind::List(elems), span })
            }
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump();
                match name.as_str() {
                    "true" => return Ok(ExprAst { kind: ExprKind::Bool(true), span }),
                    "false" => return Ok(ExprAst { kind: ExprKind::Bool(false), span }),
                    "unit" => return Ok(ExprAst { kind: ExprKind::Unit, span }),
                    _ => {}
                }
                match self.peek() {
                    Tok::Dot => {
                        self.bump();
                        let (field, fspan) = self.ident("`arg` or `ret`")?;
                        let field = match field.as_str() {
                            "arg" => OpField::Arg,
                            "ret" => OpField::Ret,
                            other => {
                                return Err(Diagnostic::new(
                                    DiagCode::E205,
                                    format!(
                                        "unknown operation field `{other}`; operations have `arg` and `ret`"
                                    ),
                                    fspan.line,
                                    fspan.col,
                                ));
                            }
                        };
                        Ok(ExprAst { kind: ExprKind::Field(name, field), span })
                    }
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if matches!(self.peek(), Tok::Comma) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(ExprAst { kind: ExprKind::Call { name, name_span: span, args }, span })
                    }
                    _ => Ok(ExprAst { kind: ExprKind::Name(name), span }),
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lex::lex;
    use super::*;

    fn parse_src(src: &str) -> Result<FileAst, Diagnostic> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn minimal_spec_parses() {
        let f = parse_src("spec s { kind seq; }").unwrap();
        assert_eq!(f.specs.len(), 1);
        assert_eq!(f.specs[0].name, "s");
    }

    #[test]
    fn e101_top_level_garbage() {
        let d = parse_src("species s {}").unwrap_err();
        assert_eq!(d.code, DiagCode::E101);
        assert!(d.message.contains("`spec`"));
    }

    #[test]
    fn e102_unclosed_body() {
        let d = parse_src("spec s { kind seq;").unwrap_err();
        assert_eq!(d.code, DiagCode::E102);
    }

    #[test]
    fn e103_unknown_item() {
        let d = parse_src("spec s { banana 3; }").unwrap_err();
        assert_eq!(d.code, DiagCode::E103);
        assert!(d.message.contains("banana"));
    }

    #[test]
    fn e104_unknown_kind() {
        let d = parse_src("spec s { kind quantum; }").unwrap_err();
        assert_eq!(d.code, DiagCode::E104);
    }

    #[test]
    fn e105_unknown_type() {
        let d = parse_src("spec s { kind seq; var x: set; }").unwrap_err();
        assert_eq!(d.code, DiagCode::E105);
    }

    #[test]
    fn e205_unknown_field() {
        let d = parse_src("spec s { kind seq; rule r(a) { when a.val == 3; } }").unwrap_err();
        assert_eq!(d.code, DiagCode::E205);
    }

    #[test]
    fn precedence_reads_naturally() {
        // a.ret == n && b.ret == n + 1  parses as  (a.ret == n) && (b.ret == (n + 1))
        let f = parse_src("spec s { kind seq; rule r(a, b) { when a.ret == n && b.ret == n + 1; } }")
            .unwrap();
        let ItemAst::Rule { whens, .. } = &f.specs[0].items[1] else { panic!() };
        let ExprKind::Binary(BinOp::And, _, _) = &whens[0].kind else { panic!("expected && at top") };
    }

    #[test]
    fn range_yield_parses() {
        let f = parse_src("spec s { kind seq; complete inc { yield 0 .. 16; } }").unwrap();
        let ItemAst::Complete { items, .. } = &f.specs[0].items[1] else { panic!() };
        assert!(matches!(items[0], CompletionAst::YieldRange { .. }));
    }

    #[test]
    fn empty_file_is_parseable() {
        // "no specs" is E212, a validation error, not a parse error.
        assert!(parse_src("").unwrap().specs.is_empty());
    }
}
