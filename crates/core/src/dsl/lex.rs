//! Lexer for `.cal` source: a flat token stream with 1-based line/column
//! spans. Emits `E001` (unexpected character) and `E002` (integer literal
//! out of range); everything else is the parser's problem.

use super::{DiagCode, Diagnostic};

/// A source position, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    DotDot,
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Percent,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl Tok {
    /// How the token renders inside diagnostic messages.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Dot => "`.`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Assign => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::NotEq => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Percent => "`%`".into(),
            Tok::AndAnd => "`&&`".into(),
            Tok::OrOr => "`||`".into(),
            Tok::Bang => "`!`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenizes `src`. The result always ends with a `Tok::Eof` carrying the
/// position one past the final character, so the parser can anchor
/// end-of-file diagnostics.
pub(crate) fn lex(src: &str) -> Result<Vec<Spanned>, Diagnostic> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(ch) = c {
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let span = Span { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                // Line comment (also lets golden-corpus fixtures carry
                // `# expect-code:` headers without tripping the lexer).
                while let Some(&ch) = chars.peek() {
                    if ch == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&ch) = chars.peek() {
                        if ch == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(Diagnostic::new(
                        DiagCode::E001,
                        "unexpected character `/` (comments are `//` or `#`)",
                        span.line,
                        span.col,
                    ));
                }
            }
            '0'..='9' => {
                let mut digits = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_digit() {
                        digits.push(ch);
                        bump!();
                    } else {
                        break;
                    }
                }
                match digits.parse::<i64>() {
                    Ok(n) => out.push(Spanned { tok: Tok::Int(n), span }),
                    Err(_) => {
                        return Err(Diagnostic::new(
                            DiagCode::E002,
                            format!("integer literal `{digits}` does not fit in 64 bits"),
                            span.line,
                            span.col,
                        ));
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut name = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        name.push(ch);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned { tok: Tok::Ident(name), span });
            }
            _ => {
                bump!();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '%' => Tok::Percent,
                    '.' => {
                        if two(&mut chars, '.') {
                            col += 1;
                            Tok::DotDot
                        } else {
                            Tok::Dot
                        }
                    }
                    '=' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::EqEq
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::NotEq
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            col += 1;
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            col += 1;
                            Tok::AndAnd
                        } else {
                            return Err(Diagnostic::new(
                                DiagCode::E001,
                                "unexpected character `&` (did you mean `&&`?)",
                                span.line,
                                span.col,
                            ));
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            col += 1;
                            Tok::OrOr
                        } else {
                            return Err(Diagnostic::new(
                                DiagCode::E001,
                                "unexpected character `|` (did you mean `||`?)",
                                span.line,
                                span.col,
                            ));
                        }
                    }
                    other => {
                        return Err(Diagnostic::new(
                            DiagCode::E001,
                            format!("unexpected character `{other}`"),
                            span.line,
                            span.col,
                        ));
                    }
                };
                out.push(Spanned { tok, span });
            }
        }
    }

    out.push(Spanned { tok: Tok::Eof, span: Span { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            toks("spec s { a.ret == (true, 3); }"),
            vec![
                Tok::Ident("spec".into()),
                Tok::Ident("s".into()),
                Tok::LBrace,
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("ret".into()),
                Tok::EqEq,
                Tok::LParen,
                Tok::Ident("true".into()),
                Tok::Comma,
                Tok::Int(3),
                Tok::RParen,
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn dotdot_vs_dot() {
        assert_eq!(toks("0 .. 16"), vec![Tok::Int(0), Tok::DotDot, Tok::Int(16), Tok::Eof]);
        assert_eq!(toks("0..16"), vec![Tok::Int(0), Tok::DotDot, Tok::Int(16), Tok::Eof]);
    }

    #[test]
    fn comments_both_styles() {
        assert_eq!(toks("// x\n# y\nfoo"), vec![Tok::Ident("foo".into()), Tok::Eof]);
    }

    #[test]
    fn spans_are_one_based() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn e001_unexpected_char() {
        let d = lex("spec s @").unwrap_err();
        assert_eq!(d.code, DiagCode::E001);
        assert_eq!((d.line, d.col), (1, 8));
    }

    #[test]
    fn e001_lone_ampersand() {
        let d = lex("a & b").unwrap_err();
        assert_eq!(d.code, DiagCode::E001);
        assert!(d.message.contains("&&"));
    }

    #[test]
    fn e002_overflow() {
        let d = lex("99999999999999999999").unwrap_err();
        assert_eq!(d.code, DiagCode::E002);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= != ! && ||"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::NotEq,
                Tok::Bang,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Eof,
            ]
        );
    }
}
