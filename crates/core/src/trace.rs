//! Concurrency-aware traces (Def. 4 of the paper).
//!
//! A [`CaTrace`] is a sequence of [`CaElement`]s; each CA-element is a pair
//! `o.S` of an object `o` and a non-empty set `S` of operations of `o` that
//! "seem to take effect simultaneously".

use std::error::Error;
use std::fmt;

use crate::ids::{ObjectId, ThreadId};
use crate::op::Operation;

/// Why a set of operations does not form a CA-element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaElementError {
    /// The operation set is empty; Def. 4 requires non-emptiness.
    Empty,
    /// An operation's object differs from the element's object.
    ForeignOperation {
        /// The element's object.
        expected: ObjectId,
        /// The offending operation's object.
        found: ObjectId,
    },
    /// Two operations of the same thread appear in the element; a thread is
    /// sequential, so its operations can never be simultaneous.
    DuplicateThread(ThreadId),
}

impl fmt::Display for CaElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaElementError::Empty => f.write_str("CA-element must contain at least one operation"),
            CaElementError::ForeignOperation { expected, found } => {
                write!(f, "operation on {found} cannot join a CA-element of {expected}")
            }
            CaElementError::DuplicateThread(t) => {
                write!(f, "thread {t} appears twice in one CA-element")
            }
        }
    }
}

impl Error for CaElementError {}

/// A CA-element `o.S`: a non-empty set of operations on one object that
/// appear to take effect simultaneously (Def. 4).
///
/// Operations are stored sorted so equality is set equality. Since every
/// thread is sequential, an element never contains two operations of the
/// same thread, so the set is duplicate-free.
///
/// # Examples
///
/// ```
/// use cal_core::{CaElement, Method, ObjectId, Operation, ThreadId, Value};
/// let e = ObjectId(0);
/// let ex = Method("exchange");
/// let swap = CaElement::new(e, vec![
///     Operation::new(ThreadId(1), e, ex, Value::Int(3), Value::Pair(true, 4)),
///     Operation::new(ThreadId(2), e, ex, Value::Int(4), Value::Pair(true, 3)),
/// ]).unwrap();
/// assert_eq!(swap.len(), 2);
/// assert_eq!(swap.object(), e);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CaElement {
    object: ObjectId,
    /// Sorted, duplicate-thread-free.
    ops: Vec<Operation>,
}

impl CaElement {
    /// Creates a CA-element of `object` from the given operations.
    ///
    /// # Errors
    ///
    /// Returns an error if `ops` is empty, contains an operation on a
    /// different object, or contains two operations of the same thread.
    pub fn new(object: ObjectId, mut ops: Vec<Operation>) -> Result<Self, CaElementError> {
        if ops.is_empty() {
            return Err(CaElementError::Empty);
        }
        for op in &ops {
            if op.object != object {
                return Err(CaElementError::ForeignOperation {
                    expected: object,
                    found: op.object,
                });
            }
        }
        ops.sort_unstable();
        for w in ops.windows(2) {
            if w[0].thread == w[1].thread {
                return Err(CaElementError::DuplicateThread(w[0].thread));
            }
        }
        Ok(CaElement { object, ops })
    }

    /// Creates a singleton CA-element holding exactly `op`.
    pub fn singleton(op: Operation) -> Self {
        CaElement { object: op.object, ops: vec![op] }
    }

    /// Creates a two-operation CA-element.
    ///
    /// # Errors
    ///
    /// Returns an error if the operations act on different objects or share
    /// a thread.
    pub fn pair(a: Operation, b: Operation) -> Result<Self, CaElementError> {
        CaElement::new(a.object, vec![a, b])
    }

    /// The object `o` of the element.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The operations of the element, sorted.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations in the element.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `false`; kept for API completeness — a CA-element is never
    /// empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if the element contains an operation of thread `t`.
    pub fn mentions_thread(&self, t: ThreadId) -> bool {
        self.ops.iter().any(|op| op.thread == t)
    }

    /// Returns `true` if the element equals the given operation set
    /// (compared as sets).
    pub fn matches_ops(&self, mut ops: Vec<Operation>) -> bool {
        ops.sort_unstable();
        self.ops == ops
    }
}

impl fmt::Display for CaElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{{", self.object)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{op}")?;
        }
        f.write_str("}")
    }
}

/// A concurrency-aware trace: a sequence of CA-elements (Def. 4).
///
/// # Examples
///
/// ```
/// use cal_core::{CaElement, CaTrace, Method, ObjectId, Operation, ThreadId, Value};
/// let e = ObjectId(0);
/// let ex = Method("exchange");
/// let fail = Operation::new(ThreadId(3), e, ex, Value::Int(7), Value::Pair(false, 7));
/// let trace: CaTrace = [CaElement::singleton(fail)].into_iter().collect();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CaTrace {
    elements: Vec<CaElement>,
}

impl CaTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CaTrace { elements: Vec::new() }
    }

    /// Creates a trace from a sequence of elements.
    pub fn from_elements(elements: Vec<CaElement>) -> Self {
        CaTrace { elements }
    }

    /// Appends an element.
    pub fn push(&mut self, element: CaElement) {
        self.elements.push(element);
    }

    /// The elements in order.
    pub fn elements(&self) -> &[CaElement] {
        &self.elements
    }

    /// Number of elements (`|T|`).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the trace has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The projection `T|t`: the subsequence of CA-elements mentioning
    /// thread `t`. Note (per the paper) this keeps *whole elements*, so it
    /// returns not only `t`'s operations but also the operations concurrent
    /// with them.
    pub fn project_thread(&self, t: ThreadId) -> CaTrace {
        CaTrace {
            elements: self
                .elements
                .iter()
                .filter(|e| e.mentions_thread(t))
                .cloned()
                .collect(),
        }
    }

    /// The projection `T|o`: the subsequence of CA-elements of object `o`.
    pub fn project_object(&self, o: ObjectId) -> CaTrace {
        CaTrace {
            elements: self.elements.iter().filter(|e| e.object() == o).cloned().collect(),
        }
    }

    /// Total number of operations across all elements.
    pub fn total_ops(&self) -> usize {
        self.elements.iter().map(CaElement::len).sum()
    }

    /// All operations in element order (then operation order within each
    /// element).
    pub fn all_ops(&self) -> Vec<Operation> {
        self.elements.iter().flat_map(|e| e.ops().iter().copied()).collect()
    }

    /// Concatenates another trace onto this one.
    pub fn concat(mut self, other: CaTrace) -> CaTrace {
        self.elements.extend(other.elements);
        self
    }
}

impl FromIterator<CaElement> for CaTrace {
    fn from_iter<I: IntoIterator<Item = CaElement>>(iter: I) -> Self {
        CaTrace { elements: iter.into_iter().collect() }
    }
}

impl Extend<CaElement> for CaTrace {
    fn extend<I: IntoIterator<Item = CaElement>>(&mut self, iter: I) {
        self.elements.extend(iter);
    }
}

impl fmt::Display for CaTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                f.write_str(" · ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Method, Value};

    const E: ObjectId = ObjectId(0);
    const EX: Method = Method("exchange");

    fn op(t: u32, arg: i64, ok: bool, ret: i64) -> Operation {
        Operation::new(ThreadId(t), E, EX, Value::Int(arg), Value::Pair(ok, ret))
    }

    #[test]
    fn empty_element_rejected() {
        assert_eq!(CaElement::new(E, vec![]), Err(CaElementError::Empty));
    }

    #[test]
    fn foreign_operation_rejected() {
        let foreign = Operation::new(ThreadId(1), ObjectId(9), EX, Value::Unit, Value::Unit);
        assert_eq!(
            CaElement::new(E, vec![foreign]),
            Err(CaElementError::ForeignOperation { expected: E, found: ObjectId(9) })
        );
    }

    #[test]
    fn duplicate_thread_rejected() {
        let r = CaElement::new(E, vec![op(1, 3, true, 4), op(1, 4, true, 3)]);
        assert_eq!(r, Err(CaElementError::DuplicateThread(ThreadId(1))));
    }

    #[test]
    fn element_is_a_set() {
        let a = CaElement::new(E, vec![op(1, 3, true, 4), op(2, 4, true, 3)]).unwrap();
        let b = CaElement::new(E, vec![op(2, 4, true, 3), op(1, 3, true, 4)]).unwrap();
        assert_eq!(a, b);
        assert!(a.matches_ops(vec![op(2, 4, true, 3), op(1, 3, true, 4)]));
        assert!(!a.matches_ops(vec![op(1, 3, true, 4)]));
    }

    #[test]
    fn singleton_and_pair_constructors() {
        let s = CaElement::singleton(op(1, 7, false, 7));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let p = CaElement::pair(op(1, 3, true, 4), op(2, 4, true, 3)).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.mentions_thread(ThreadId(1)));
        assert!(p.mentions_thread(ThreadId(2)));
        assert!(!p.mentions_thread(ThreadId(3)));
    }

    #[test]
    fn trace_projections() {
        let swap = CaElement::pair(op(1, 3, true, 4), op(2, 4, true, 3)).unwrap();
        let fail = CaElement::singleton(op(3, 7, false, 7));
        let t = CaTrace::from_elements(vec![swap.clone(), fail.clone()]);
        // T|t1 keeps the whole swap element including t2's operation.
        let t1 = t.project_thread(ThreadId(1));
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.elements()[0], swap);
        let t3 = t.project_thread(ThreadId(3));
        assert_eq!(t3.elements(), std::slice::from_ref(&fail));
        assert_eq!(t.project_object(E).len(), 2);
        assert!(t.project_object(ObjectId(5)).is_empty());
    }

    #[test]
    fn trace_ops_and_concat() {
        let swap = CaElement::pair(op(1, 3, true, 4), op(2, 4, true, 3)).unwrap();
        let fail = CaElement::singleton(op(3, 7, false, 7));
        let a = CaTrace::from_elements(vec![swap]);
        let b = CaTrace::from_elements(vec![fail]);
        let c = a.concat(b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_ops(), 3);
        assert_eq!(c.all_ops().len(), 3);
    }

    #[test]
    fn display() {
        let fail = CaElement::singleton(op(3, 7, false, 7));
        let t = CaTrace::from_elements(vec![fail.clone(), fail]);
        let s = t.to_string();
        assert!(s.contains(" · "));
        assert!(s.starts_with("o0.{"));
    }

    #[test]
    fn error_display() {
        assert!(CaElementError::Empty.to_string().contains("at least one"));
        assert!(CaElementError::DuplicateThread(ThreadId(2)).to_string().contains("t2"));
    }
}
