//! Object actions: invocations and responses (Def. 1 of the paper).

use std::fmt;

use crate::ids::{Method, ObjectId, ThreadId, Value};

/// The direction of an [`Action`]: a method invocation carrying the argument,
/// or a response carrying the return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// `(t, inv o.f(n))` — thread `t` started executing `f` on `o` with
    /// argument `n`.
    Invoke(Value),
    /// `(t, res o.f ▷ n)` — the execution of `f` terminated returning `n`.
    Response(Value),
}

/// An object action (Def. 1): either an invocation `(t, inv o.f(n))` or a
/// response `(t, res o.f ▷ n')`.
///
/// # Examples
///
/// ```
/// use cal_core::{Action, Method, ObjectId, ThreadId, Value};
/// let inv = Action::invoke(ThreadId(1), ObjectId(0), Method("exchange"), Value::Int(3));
/// let res = Action::response(ThreadId(1), ObjectId(0), Method("exchange"), Value::Pair(true, 4));
/// assert!(inv.is_invoke());
/// assert!(res.is_response());
/// assert_eq!(inv.thread(), res.thread());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    thread: ThreadId,
    object: ObjectId,
    method: Method,
    kind: ActionKind,
}

impl Action {
    /// Creates an invocation action `(t, inv o.f(arg))`.
    pub fn invoke(thread: ThreadId, object: ObjectId, method: Method, arg: Value) -> Self {
        Action { thread, object, method, kind: ActionKind::Invoke(arg) }
    }

    /// Creates a response action `(t, res o.f ▷ ret)`.
    pub fn response(thread: ThreadId, object: ObjectId, method: Method, ret: Value) -> Self {
        Action { thread, object, method, kind: ActionKind::Response(ret) }
    }

    /// The thread of the action, `tid(ψ)` in the paper.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The object of the action, `oid(ψ)` in the paper.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The method of the action, `fid(ψ)` in the paper.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The direction (invoke or response) together with its payload.
    pub fn kind(&self) -> ActionKind {
        self.kind
    }

    /// Returns `true` if this is an invocation.
    pub fn is_invoke(&self) -> bool {
        matches!(self.kind, ActionKind::Invoke(_))
    }

    /// Returns `true` if this is a response.
    pub fn is_response(&self) -> bool {
        matches!(self.kind, ActionKind::Response(_))
    }

    /// The argument if this is an invocation.
    pub fn arg(&self) -> Option<Value> {
        match self.kind {
            ActionKind::Invoke(v) => Some(v),
            ActionKind::Response(_) => None,
        }
    }

    /// The return value if this is a response.
    pub fn ret(&self) -> Option<Value> {
        match self.kind {
            ActionKind::Invoke(_) => None,
            ActionKind::Response(v) => Some(v),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ActionKind::Invoke(arg) => {
                write!(f, "({}, inv {}.{}({}))", self.thread, self.object, self.method, arg)
            }
            ActionKind::Response(ret) => {
                write!(f, "({}, res {}.{} ▷ {})", self.thread, self.object, self.method, ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Action {
        Action::invoke(ThreadId(2), ObjectId(1), Method("push"), Value::Int(9))
    }

    fn res() -> Action {
        Action::response(ThreadId(2), ObjectId(1), Method("push"), Value::Bool(true))
    }

    #[test]
    fn accessors() {
        let a = inv();
        assert_eq!(a.thread(), ThreadId(2));
        assert_eq!(a.object(), ObjectId(1));
        assert_eq!(a.method(), Method("push"));
        assert!(a.is_invoke());
        assert!(!a.is_response());
        assert_eq!(a.arg(), Some(Value::Int(9)));
        assert_eq!(a.ret(), None);
    }

    #[test]
    fn response_accessors() {
        let a = res();
        assert!(a.is_response());
        assert_eq!(a.ret(), Some(Value::Bool(true)));
        assert_eq!(a.arg(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(inv().to_string(), "(t2, inv o1.push(9))");
        assert_eq!(res().to_string(), "(t2, res o1.push ▷ true)");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(inv(), inv());
        assert_ne!(inv(), res());
        let other = Action::invoke(ThreadId(2), ObjectId(1), Method("push"), Value::Int(8));
        assert_ne!(inv(), other);
    }
}
