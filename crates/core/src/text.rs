//! A line-oriented text format for histories and CA-traces, so recorded
//! histories can be stored, diffed, and checked from the command line.
//!
//! ## History format
//!
//! One action per line: `<thread> inv <object>.<method> <value>` or
//! `<thread> res <object>.<method> <value>`. Threads are `t<N>`, objects
//! `o<N>`; values are `()`, `true`, `false`, integers, or `(bool,int)`
//! pairs. Blank lines and `#` comments are ignored.
//!
//! ```text
//! # two overlapping exchanges that swapped 3 and 4
//! t1 inv o0.exchange 3
//! t2 inv o0.exchange 4
//! t1 res o0.exchange (true,4)
//! t2 res o0.exchange (true,3)
//! ```
//!
//! ## Trace format
//!
//! One CA-element per line: `<object> { <op> ; <op> ; … }` where each op is
//! `<thread> <method> <arg> -> <ret>`.
//!
//! ```text
//! o0 { t1 exchange 3 -> (true,4) ; t2 exchange 4 -> (true,3) }
//! o0 { t3 exchange 7 -> (false,7) }
//! ```

use std::error::Error;
use std::fmt;

use crate::action::Action;
use crate::history::History;
use crate::ids::{Method, ObjectId, ThreadId, Value};
use crate::op::Operation;
use crate::trace::{CaElement, CaTrace};

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_thread(line: usize, s: &str) -> Result<ThreadId, ParseError> {
    match s.strip_prefix('t').and_then(|r| r.parse::<u32>().ok()) {
        Some(n) => Ok(ThreadId(n)),
        None => err(line, format!("expected thread id like t0, found {s:?}")),
    }
}

fn parse_object(line: usize, s: &str) -> Result<ObjectId, ParseError> {
    match s.strip_prefix('o').and_then(|r| r.parse::<u32>().ok()) {
        Some(n) => Ok(ObjectId(n)),
        None => err(line, format!("expected object id like o0, found {s:?}")),
    }
}

/// Interns the method name. Method names are `&'static str`; parsing leaks
/// each *distinct* name once, which is bounded by the client's vocabulary.
/// Shared with the foreign-format decoders in [`crate::format`], so every
/// parser agrees on one interned vocabulary.
pub(crate) fn parse_method(line: usize, s: &str) -> Result<Method, ParseError> {
    // Well-known names avoid leaking in the common case.
    const KNOWN: &[&str] =
        &["exchange", "push", "pop", "put", "take", "read", "write", "inc", "noop"];
    if s.is_empty() || !s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return err(line, format!("invalid method name {s:?}"));
    }
    for k in KNOWN {
        if *k == s {
            return Ok(Method(k));
        }
    }
    Ok(Method(Box::leak(s.to_owned().into_boxed_str())))
}

fn parse_value(line: usize, s: &str) -> Result<Value, ParseError> {
    let s = s.trim();
    if s == "()" {
        return Ok(Value::Unit);
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Some(body) = s.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        if let Some((b, n)) = body.split_once(',') {
            let b = match b.trim() {
                "true" => true,
                "false" => false,
                other => return err(line, format!("expected bool, found {other:?}")),
            };
            let n = n
                .trim()
                .parse::<i64>()
                .map_err(|_| ParseError { line, message: format!("bad int in pair: {s:?}") })?;
            return Ok(Value::Pair(b, n));
        }
    }
    err(line, format!("cannot parse value {s:?}"))
}

/// Parses a history from the line format.
///
/// # Errors
///
/// Returns the first malformed line. Well-formedness of the resulting
/// history is *not* checked here; use [`History::validate`].
///
/// # Examples
///
/// ```
/// use cal_core::text::parse_history;
/// let h = parse_history("t0 inv o0.push 5\nt0 res o0.push true\n")?;
/// assert!(h.is_complete());
/// # Ok::<(), cal_core::text::ParseError>(())
/// ```
pub fn parse_history(input: &str) -> Result<History, ParseError> {
    let mut actions = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        if let Some(action) = parse_action_line(i + 1, raw)? {
            actions.push(action);
        }
    }
    Ok(History::from_actions(actions))
}

/// Parses one line of the history format into an action, or `None` for a
/// blank or comment-only line. `line` is the 1-based line number embedded
/// in errors.
///
/// This is the unit of the `cal-serve` wire protocol: the streaming
/// daemon feeds each received line through it, so a file checked by
/// `cal-check` and a live event stream speak exactly the same format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming `line` when the line is malformed.
///
/// # Examples
///
/// ```
/// use cal_core::text::parse_action_line;
/// assert!(parse_action_line(1, "# comment")?.is_none());
/// assert!(parse_action_line(2, "t0 inv o0.push 5")?.is_some());
/// # Ok::<(), cal_core::text::ParseError>(())
/// ```
pub fn parse_action_line(line: usize, raw: &str) -> Result<Option<Action>, ParseError> {
    let text = raw.split('#').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    let mut parts = text.split_whitespace();
    let (Some(t), Some(kind), Some(target), Some(value)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return err(line, "expected: <thread> inv|res <object>.<method> <value>");
    };
    if parts.next().is_some() {
        return err(line, "trailing tokens");
    }
    let thread = parse_thread(line, t)?;
    let Some((obj, meth)) = target.split_once('.') else {
        return err(line, format!("expected <object>.<method>, found {target:?}"));
    };
    let object = parse_object(line, obj)?;
    let method = parse_method(line, meth)?;
    let value = parse_value(line, value)?;
    let action = match kind {
        "inv" => Action::invoke(thread, object, method, value),
        "res" => Action::response(thread, object, method, value),
        other => return err(line, format!("expected inv or res, found {other:?}")),
    };
    Ok(Some(action))
}

/// Formats a history in the line format (round-trips through
/// [`parse_history`]).
pub fn format_history(history: &History) -> String {
    let mut out = String::new();
    for a in history.actions() {
        let kind = if a.is_invoke() { "inv" } else { "res" };
        let value = a.arg().or_else(|| a.ret()).expect("every action carries a value");
        out.push_str(&format!(
            "{} {} {}.{} {}\n",
            a.thread(),
            kind,
            a.object(),
            a.method(),
            value
        ));
    }
    out
}

/// Parses a CA-trace from the element-per-line format.
///
/// # Errors
///
/// Returns the first malformed line.
///
/// # Examples
///
/// ```
/// use cal_core::text::parse_trace;
/// let t = parse_trace("o0 { t1 exchange 3 -> (true,4) ; t2 exchange 4 -> (true,3) }\n")?;
/// assert_eq!(t.len(), 1);
/// # Ok::<(), cal_core::text::ParseError>(())
/// ```
pub fn parse_trace(input: &str) -> Result<CaTrace, ParseError> {
    let mut elements = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let Some((obj, rest)) = text.split_once('{') else {
            return err(line, "expected: <object> { <op> ; … }");
        };
        let object = parse_object(line, obj.trim())?;
        let Some(body) = rest.trim().strip_suffix('}') else {
            return err(line, "missing closing brace");
        };
        let mut ops = Vec::new();
        for op_text in body.split(';') {
            let op_text = op_text.trim();
            if op_text.is_empty() {
                continue;
            }
            let Some((lhs, ret)) = op_text.split_once("->") else {
                return err(line, format!("expected <op> -> <ret> in {op_text:?}"));
            };
            let mut parts = lhs.split_whitespace();
            let (Some(t), Some(meth), Some(arg)) = (parts.next(), parts.next(), parts.next())
            else {
                return err(line, format!("expected <thread> <method> <arg> in {lhs:?}"));
            };
            if parts.next().is_some() {
                return err(line, "trailing tokens in operation");
            }
            ops.push(Operation::new(
                parse_thread(line, t)?,
                object,
                parse_method(line, meth)?,
                parse_value(line, arg)?,
                parse_value(line, ret)?,
            ));
        }
        match CaElement::new(object, ops) {
            Ok(e) => elements.push(e),
            Err(e) => return err(line, format!("invalid CA-element: {e}")),
        }
    }
    Ok(CaTrace::from_elements(elements))
}

/// Formats a CA-trace in the element-per-line format (round-trips through
/// [`parse_trace`]).
pub fn format_trace(trace: &CaTrace) -> String {
    let mut out = String::new();
    for e in trace.elements() {
        out.push_str(&format!("{} {{ ", e.object()));
        for (i, op) in e.ops().iter().enumerate() {
            if i > 0 {
                out.push_str(" ; ");
            }
            out.push_str(&format!("{} {} {} -> {}", op.thread, op.method, op.arg, op.ret));
        }
        out.push_str(" }\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_HISTORY: &str = "\
# two overlapping exchanges
t1 inv o0.exchange 3
t2 inv o0.exchange 4
t1 res o0.exchange (true,4)
t2 res o0.exchange (true,3)

t3 inv o0.exchange 7   # a failure
t3 res o0.exchange (false,7)
";

    #[test]
    fn parse_sample_history() {
        let h = parse_history(SAMPLE_HISTORY).unwrap();
        assert_eq!(h.len(), 6);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
    }

    #[test]
    fn history_round_trip() {
        let h = parse_history(SAMPLE_HISTORY).unwrap();
        let text = format_history(&h);
        let h2 = parse_history(&text).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn parse_all_value_shapes() {
        let h = parse_history(
            "t0 inv o0.write -42\nt0 res o0.write ()\nt0 inv o0.push 1\nt0 res o0.push true\n",
        )
        .unwrap();
        assert_eq!(h.actions()[0].arg(), Some(Value::Int(-42)));
        assert_eq!(h.actions()[1].ret(), Some(Value::Unit));
        assert_eq!(h.actions()[3].ret(), Some(Value::Bool(true)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_history("t0 inv o0.push 1\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_history("x0 inv o0.push 1\n").unwrap_err();
        assert!(e.message.contains("thread"));
        let e = parse_history("t0 frob o0.push 1\n").unwrap_err();
        assert!(e.message.contains("inv or res"));
        let e = parse_history("t0 inv o0push 1\n").unwrap_err();
        assert!(e.message.contains("object"));
        let e = parse_history("t0 inv o0.push (maybe,1)\n").unwrap_err();
        assert!(e.message.contains("bool"));
    }

    const SAMPLE_TRACE: &str = "\
o0 { t1 exchange 3 -> (true,4) ; t2 exchange 4 -> (true,3) }
o0 { t3 exchange 7 -> (false,7) }
";

    #[test]
    fn parse_sample_trace() {
        let t = parse_trace(SAMPLE_TRACE).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.elements()[0].len(), 2);
        assert_eq!(t.elements()[1].len(), 1);
    }

    #[test]
    fn trace_round_trip() {
        let t = parse_trace(SAMPLE_TRACE).unwrap();
        let text = format_trace(&t);
        assert_eq!(parse_trace(&text).unwrap(), t);
    }

    #[test]
    fn trace_rejects_malformed_elements() {
        assert!(parse_trace("o0 { }\n").is_err()); // empty element
        assert!(parse_trace("o0 { t1 exchange 3 (true,4) }\n").is_err()); // no ->
        assert!(parse_trace("o0 t1 exchange 3 -> 4\n").is_err()); // no braces
        // duplicate thread in one element:
        assert!(parse_trace("o0 { t1 exchange 3 -> (false,3) ; t1 exchange 4 -> (false,4) }\n")
            .is_err());
    }

    #[test]
    fn parsed_history_agrees_with_parsed_trace() {
        let h = parse_history(SAMPLE_HISTORY).unwrap();
        let t = parse_trace(SAMPLE_TRACE).unwrap();
        assert!(crate::agree::agrees_bool(&h, &t));
    }
}
