//! Interval-linearizability (Castañeda, Rajsbaum & Raynal, DISC 2015),
//! the generalization of CAL discussed in the paper's related work (§6).
//!
//! CAL (equivalently, Neiger's set-linearizability) explains a history by
//! mapping each operation to exactly **one** element of a trace. Some
//! objects need more: in the *write-snapshot* task an operation may have
//! to appear concurrent with two operations that are themselves ordered —
//! its effect spans an **interval** of elements. Interval-linearizability
//! maps every operation to a non-empty contiguous interval of trace
//! points; at each point the specification sees which operations *open*,
//! which are *active*, and which *close*.
//!
//! Formally, a complete history `H` is interval-linearizable w.r.t. an
//! [`IntervalSpec`] if there is a sequence of points and a map
//! `i ↦ [l_i, r_i]` such that (i) the spec accepts every point given its
//! opening/active/closing sets, (ii) `i ≺H j ⟹ r_i < l_j`, and (iii)
//! operations in one point are pairwise concurrent in `H`. CAL is the
//! special case where every interval has length one.
//!
//! Like the other two checkers, this module is a thin domain over the
//! shared search kernel ([`crate::engine`]): `IntervalDomain` enumerates
//! candidate points, and budgets, deadlines, cancellation, memoization,
//! [`crate::obs::StatsSink`] observability and the parallel driver
//! ([`check_interval_par_with`]) come from the engine. The verdict is the
//! common [`Verdict`] taxonomy with an [`IntervalWitness`] payload; the
//! bespoke [`IntervalVerdict`] remains as a deprecated conversion target
//! for one release.

use std::fmt::{self, Debug};
use std::hash::Hash;

use crate::bitset::BitSet;
use crate::engine::{self, ExpandObs, SearchDomain, SpecRef};
use crate::history::{HbRelation, History, HistoryError, PartialHistory, Span};
use crate::ids::Value;
use crate::op::Operation;
use crate::spec::{Invocation, SeqSpec};

pub use crate::engine::{CheckError, CheckOptions, CheckOutcome, InterruptReason, Verdict};

use std::borrow::Cow;

/// An interval-sequential specification: a stateful acceptor over interval
/// points.
pub trait IntervalSpec {
    /// Acceptor state.
    type State: Clone + Eq + Hash + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Accepts one interval point, or rejects it.
    ///
    /// `active` lists every operation whose interval contains this point
    /// (with its final return value); `opening` and `closing` are the
    /// subsets of `active` whose intervals start / end here (an operation
    /// may do both, for a singleton interval).
    fn step(
        &self,
        state: &Self::State,
        active: &[Operation],
        opening: &[Operation],
        closing: &[Operation],
    ) -> Option<Self::State>;

    /// Bound on the number of simultaneously active operations the
    /// specification admits; limits the checker's branching.
    fn max_active(&self) -> usize {
        4
    }

    /// Candidate return values for completing a pending invocation.
    fn completions_of(&self, inv: &Invocation) -> Vec<Value>;
}

/// One point of an interval witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalPoint {
    /// Operations whose interval contains this point.
    pub active: Vec<Operation>,
    /// The subset of `active` opening here.
    pub opening: Vec<Operation>,
    /// The subset of `active` closing here.
    pub closing: Vec<Operation>,
}

fn join_ops(f: &mut fmt::Formatter<'_>, ops: &[Operation]) -> fmt::Result {
    for (k, op) in ops.iter().enumerate() {
        if k > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{op}")?;
    }
    Ok(())
}

impl fmt::Display for IntervalPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{active: ")?;
        join_ops(f, &self.active)?;
        f.write_str("; opening: ")?;
        join_ops(f, &self.opening)?;
        f.write_str("; closing: ")?;
        join_ops(f, &self.closing)?;
        f.write_str("}")
    }
}

/// An interval-linearization witness: the accepted point sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalWitness {
    points: Vec<IntervalPoint>,
}

impl IntervalWitness {
    /// Wraps a point sequence as a witness.
    pub fn new(points: Vec<IntervalPoint>) -> Self {
        IntervalWitness { points }
    }

    /// The witness points, in order.
    pub fn points(&self) -> &[IntervalPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the witness has no points (empty or pending-only history).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consumes the witness, yielding its points.
    pub fn into_points(self) -> Vec<IntervalPoint> {
        self.points
    }
}

impl fmt::Display for IntervalWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.points.is_empty() {
            return f.write_str("(empty)");
        }
        for (k, point) in self.points.iter().enumerate() {
            if k > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{point}")?;
        }
        Ok(())
    }
}

/// The bespoke outcome type of the pre-kernel interval checker.
#[deprecated(
    note = "use the common `Verdict<IntervalWitness>` returned by `check_interval`; \
            convert with `IntervalVerdict::from` during migration"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalVerdict {
    /// Interval-linearizable, with the witness point sequence.
    Linearizable(Vec<IntervalPoint>),
    /// No witness exists.
    NotLinearizable,
    /// The node budget ran out first.
    ResourcesExhausted,
    /// A deadline or cancellation stopped the search first.
    Interrupted {
        /// What stopped the search.
        reason: InterruptReason,
    },
}

#[allow(deprecated)]
impl IntervalVerdict {
    /// Returns `true` for [`IntervalVerdict::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, IntervalVerdict::Linearizable(_))
    }
}

#[allow(deprecated)]
impl From<Verdict<IntervalWitness>> for IntervalVerdict {
    fn from(v: Verdict<IntervalWitness>) -> Self {
        match v {
            Verdict::Cal(w) => IntervalVerdict::Linearizable(w.into_points()),
            Verdict::NotCal => IntervalVerdict::NotLinearizable,
            Verdict::ResourcesExhausted => IntervalVerdict::ResourcesExhausted,
            Verdict::Interrupted { reason } => IntervalVerdict::Interrupted { reason },
        }
    }
}

/// Decides interval-linearizability of `history` w.r.t. `spec`.
///
/// The outcome uses the common [`Verdict`] taxonomy with an
/// [`IntervalWitness`] payload ([`Verdict::Cal`] meaning
/// *interval-linearizable*), plus the engine's [`crate::check::CheckStats`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_interval<S: IntervalSpec>(
    history: &History,
    spec: &S,
) -> Result<CheckOutcome<IntervalWitness>, CheckError> {
    check_interval_with(history, spec, &CheckOptions::default())
}

/// Like [`check_interval`], with explicit options.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_interval_with<S: IntervalSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome<IntervalWitness>, CheckError> {
    let domain = IntervalDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search(&domain, options)?.map_witness(IntervalWitness::new))
}

/// Parallel interval-linearizability check with [`CheckOptions::parallel`];
/// see [`check_interval_par_with`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_interval_par<S>(
    history: &History,
    spec: &S,
) -> Result<CheckOutcome<IntervalWitness>, CheckError>
where
    S: IntervalSpec + Sync,
    S::State: Send + Sync,
{
    check_interval_par_with(history, spec, &CheckOptions::parallel())
}

/// Like [`check_interval_with`], run on the engine's parallel driver
/// ([`engine::search_par`]): the candidate first points are enumerated
/// once and split across workers sharing one sharded memo table and a
/// global node budget — inherited from the shared kernel, with the same
/// verdict and interrupt semantics as the CAL checker.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_interval_par_with<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome<IntervalWitness>, CheckError>
where
    S: IntervalSpec + Sync,
    S::State: Send + Sync,
{
    let domain = IntervalDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search_par(&domain, options)?.map_witness(IntervalWitness::new))
}

/// Convenience predicate for [`check_interval`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the budget runs out before the search
/// decides.
pub fn is_interval_linearizable<S: IntervalSpec>(
    history: &History,
    spec: &S,
) -> Result<bool, CheckError> {
    match check_interval(history, spec)?.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        Verdict::ResourcesExhausted => Err(CheckError::Undecided(Verdict::ResourcesExhausted)),
        Verdict::Interrupted { reason } => {
            Err(CheckError::Undecided(Verdict::Interrupted { reason }))
        }
    }
}

/// A sequential specification viewed as an interval one: every operation's
/// interval is a single point at which it both opens and closes, alone.
/// A history is interval-linearizable w.r.t. `SeqAsInterval(spec)` iff it
/// is linearizable w.r.t. `spec` — the cross-checker differential suite
/// relies on this equivalence.
#[derive(Debug, Clone)]
pub struct SeqAsInterval<S> {
    inner: S,
}

impl<S: SeqSpec> SeqAsInterval<S> {
    /// Wraps a sequential specification.
    pub fn new(inner: S) -> Self {
        SeqAsInterval { inner }
    }

    /// The wrapped specification.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SeqSpec> IntervalSpec for SeqAsInterval<S> {
    type State = S::State;

    fn initial(&self) -> S::State {
        self.inner.initial()
    }

    fn step(
        &self,
        state: &S::State,
        active: &[Operation],
        opening: &[Operation],
        closing: &[Operation],
    ) -> Option<S::State> {
        // Singleton intervals only: one operation, opening and closing at
        // the same point.
        match (active, opening, closing) {
            ([op], [o], [c]) if o == op && c == op => self.inner.apply(state, op),
            _ => None,
        }
    }

    fn max_active(&self) -> usize {
        1
    }

    fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
        self.inner.completions_of(inv)
    }
}

/// A search node: closed operations, currently open intervals (span index
/// plus the chosen operation, sorted by index) and the spec state. Also
/// the memo key — the open set is part of the residual state, which is why
/// interval memo keys cannot collapse onto the CAL checker's
/// `(matched-set, state)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IntervalNode<St> {
    done: BitSet,
    open: Vec<(usize, Operation)>,
    state: St,
}

/// The interval checker as a [`SearchDomain`]: steps are interval points,
/// and expansion enumerates opening subsets (pairwise concurrent, bounded
/// by [`IntervalSpec::max_active`]), completion choices for pending
/// openers, and closing subsets, keeping every point the spec accepts.
struct IntervalDomain<'a, S: IntervalSpec> {
    spec: SpecRef<'a, S>,
    spans: Vec<Span>,
    /// The order the search runs over: always the real-time instance of
    /// [`PartialHistory`] here — interval-linearizability is defined
    /// against `≺H`.
    hb: HbRelation,
}

impl<'a, S: IntervalSpec> IntervalDomain<'a, S> {
    fn new(history: Cow<'a, History>, spec: SpecRef<'a, S>) -> Result<Self, HistoryError> {
        let spans = history.try_spans()?;
        let hb = HbRelation::real_time(&spans);
        Ok(IntervalDomain { spec, spans, hb })
    }

    /// Grows the opening subset over `openable[from..]` and collects every
    /// candidate point. Returns `false` when a cooperative stop was
    /// requested mid-enumeration.
    #[allow(clippy::too_many_arguments)]
    fn enumerate_openings(
        &self,
        openable: &[usize],
        from: usize,
        max_new: usize,
        opening: &mut Vec<usize>,
        node: &IntervalNode<S::State>,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(IntervalPoint, IntervalNode<S::State>)>,
    ) -> bool {
        // A candidate point needs something active: either already-open
        // intervals or at least one opener.
        if (!node.open.is_empty() || !opening.is_empty())
            && !self.collect_points(opening, node, obs, out)
        {
            return false;
        }
        if opening.len() == max_new {
            return true;
        }
        for (k, &i) in openable.iter().enumerate().skip(from) {
            // New ops must be pairwise concurrent with the already-chosen
            // openings and with everything currently open.
            let concurrent = opening.iter().all(|&j| self.hb.concurrent(i, j))
                && node.open.iter().all(|&(j, _)| self.hb.concurrent(i, j));
            if !concurrent {
                continue;
            }
            opening.push(i);
            let keep = self.enumerate_openings(openable, k + 1, max_new, opening, node, obs, out);
            opening.pop();
            if !keep {
                return false;
            }
        }
        true
    }

    /// Enumerates completion choices for the opening set and closing
    /// subsets of the active set, collecting every point the spec accepts.
    /// Returns `false` when a cooperative stop was requested.
    fn collect_points(
        &self,
        opening: &[usize],
        node: &IntervalNode<S::State>,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(IntervalPoint, IntervalNode<S::State>)>,
    ) -> bool {
        // Resolve the operations of the opening set (pending invocations
        // get spec-proposed completions).
        let mut opening_choices: Vec<Vec<Operation>> = Vec::with_capacity(opening.len());
        for &i in opening {
            let s = &self.spans[i];
            let choices = match s.operation() {
                Some(op) => vec![op],
                None => {
                    let inv = Invocation::new(s.thread, s.object, s.method, s.arg);
                    self.spec
                        .get()
                        .completions_of(&inv)
                        .into_iter()
                        .map(|ret| s.operation_with_ret(ret))
                        .collect()
                }
            };
            if choices.is_empty() {
                return true;
            }
            opening_choices.push(choices);
        }
        let mut pick = vec![0usize; opening.len()];
        loop {
            if obs.should_stop() {
                return false;
            }
            let opening_ops: Vec<(usize, Operation)> = opening
                .iter()
                .enumerate()
                .map(|(k, &i)| (i, opening_choices[k][pick[k]]))
                .collect();
            // Active set = open ∪ opening.
            let mut active: Vec<(usize, Operation)> = node.open.clone();
            active.extend(opening_ops.iter().copied());
            // Enumerate closing subsets of the active set (2^|active|,
            // bounded by max_active).
            let m = active.len();
            for mask in 0..(1u32 << m) {
                let closing: Vec<(usize, Operation)> =
                    (0..m).filter(|&b| mask & (1 << b) != 0).map(|b| active[b]).collect();
                // A point must make progress: open or close something.
                if opening.is_empty() && closing.is_empty() {
                    continue;
                }
                let active_ops: Vec<Operation> = active.iter().map(|&(_, o)| o).collect();
                let opening_only: Vec<Operation> = opening_ops.iter().map(|&(_, o)| o).collect();
                let closing_ops: Vec<Operation> = closing.iter().map(|&(_, o)| o).collect();
                obs.on_element_tried();
                if let Some(next) =
                    self.spec.get().step(&node.state, &active_ops, &opening_only, &closing_ops)
                {
                    // Commit: move closings to done, keep the rest open.
                    let mut next_open: Vec<(usize, Operation)> = active
                        .iter()
                        .filter(|&&(i, _)| !closing.iter().any(|&(j, _)| j == i))
                        .copied()
                        .collect();
                    next_open.sort_unstable_by_key(|&(i, _)| i);
                    let mut next_done = node.done.clone();
                    for &(i, _) in &closing {
                        next_done.insert(i);
                    }
                    out.push((
                        IntervalPoint {
                            active: active_ops,
                            opening: opening_only,
                            closing: closing_ops,
                        },
                        IntervalNode { done: next_done, open: next_open, state: next },
                    ));
                }
            }
            // Advance completion choices.
            let mut d = 0;
            loop {
                if d == pick.len() {
                    return true;
                }
                pick[d] += 1;
                if pick[d] < opening_choices[d].len() {
                    break;
                }
                pick[d] = 0;
                d += 1;
            }
        }
    }
}

impl<S: IntervalSpec> SearchDomain for IntervalDomain<'_, S> {
    type Node = IntervalNode<S::State>;
    type Step = IntervalPoint;

    fn initial(&self) -> Self::Node {
        IntervalNode {
            done: BitSet::new(self.spans.len().max(1)),
            open: Vec::new(),
            state: self.spec.get().initial(),
        }
    }

    fn is_goal(&self, node: &Self::Node) -> bool {
        node.open.is_empty()
            && (0..self.spans.len())
                .all(|i| node.done.contains(i) || !self.spans[i].is_complete())
    }

    fn expand(
        &self,
        node: &Self::Node,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(Self::Step, Self::Node)>,
    ) {
        // Operations that may open here: neither done nor open, and every
        // ≺H-predecessor is already done (its interval closed earlier).
        let openable: Vec<usize> = (0..self.spans.len())
            .filter(|&i| !node.done.contains(i) && node.open.iter().all(|&(j, _)| j != i))
            .filter(|&i| self.hb.preds(i).iter().all(|&j| node.done.contains(j)))
            .collect();
        obs.on_frontier(openable.len());
        let max_new = self.spec.get().max_active().saturating_sub(node.open.len());
        // Enumerate opening subsets (including empty when something is
        // already open), then closing subsets (non-trivial points only).
        let mut opening: Vec<usize> = Vec::new();
        self.enumerate_openings(&openable, 0, max_new, &mut opening, node, obs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId};

    const O: ObjectId = ObjectId(0);
    const WS: Method = Method("write_snapshot");

    /// Write-snapshot over values 0..63: `write_snapshot(v)` returns the
    /// bitmask of all values written by operations whose interval started
    /// no later than this one's end. State = bitmask written so far;
    /// opening adds values; closing ops must return the current mask.
    #[derive(Debug)]
    struct WriteSnapshot;

    impl IntervalSpec for WriteSnapshot {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn step(
            &self,
            state: &i64,
            _active: &[Operation],
            opening: &[Operation],
            closing: &[Operation],
        ) -> Option<i64> {
            let mut mask = *state;
            for op in opening {
                let v = op.arg.as_int()?;
                if !(0..63).contains(&v) {
                    return None;
                }
                mask |= 1 << v;
            }
            for op in closing {
                if op.ret != Value::Int(mask) {
                    return None;
                }
            }
            Some(mask)
        }

        fn completions_of(&self, _inv: &Invocation) -> Vec<Value> {
            Vec::new()
        }
    }

    fn ws(t: u32, v: i64, snapshot: i64) -> Operation {
        Operation::new(ThreadId(t), O, WS, Value::Int(v), Value::Int(snapshot))
    }

    fn mask(vals: &[i64]) -> i64 {
        vals.iter().fold(0, |m, v| m | (1 << v))
    }

    #[test]
    fn sequential_snapshots_are_interval_linearizable() {
        let a = ws(1, 1, mask(&[1]));
        let b = ws(2, 2, mask(&[1, 2]));
        let h = History::from_actions(vec![
            a.invocation(),
            a.response(),
            b.invocation(),
            b.response(),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn wrong_snapshot_rejected() {
        let a = ws(1, 1, mask(&[1, 5])); // claims to have seen 5
        let h = History::from_actions(vec![a.invocation(), a.response()]);
        assert!(!is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn concurrent_ops_may_share_a_point() {
        let a = ws(1, 1, mask(&[1, 2]));
        let b = ws(2, 2, mask(&[1, 2]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            a.response(),
            b.response(),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    /// The Castañeda–Rajsbaum–Raynal separation scenario (§6 of the
    /// paper): A overlaps B and C, B precedes C, B's snapshot excludes C
    /// but includes A, and A's snapshot includes C. A's effect must span
    /// an *interval* covering both B's and C's points — expressible here,
    /// not with single-point (CAL / set-linearizable) assignments.
    #[test]
    fn spanning_operation_is_interval_linearizable() {
        let a = ws(1, 1, mask(&[1, 2, 3])); // sees everyone
        let b = ws(2, 2, mask(&[1, 2])); // sees A but not C
        let c = ws(3, 3, mask(&[1, 2, 3])); // sees everyone
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(), // B closes; C has not started: B ≺H C
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        let outcome = check_interval(&h, &WriteSnapshot).unwrap();
        assert!(outcome.stats.nodes > 0, "engine stats populated");
        let witness = outcome.verdict.witness().expect("expected interval-linearizable");
        // A must be active at (at least) two points.
        let a_points = witness
            .points()
            .iter()
            .filter(|p| p.active.iter().any(|op| op.thread == ThreadId(1)))
            .count();
        assert!(a_points >= 2, "A's interval must span, witness: {witness}");
    }

    /// The same history is *not* CAL w.r.t. the natural one-point
    /// write-snapshot specification: with every operation confined to a
    /// single element, B's and A's returns cannot both be explained.
    #[test]
    fn spanning_operation_is_not_cal() {
        use crate::spec::CaSpec;
        use crate::trace::CaElement;

        /// One-point (set-linearizable) write-snapshot: each element's ops
        /// all return the mask including every value up to this element.
        #[derive(Debug)]
        struct OnePointWs;
        impl CaSpec for OnePointWs {
            type State = i64;
            fn initial(&self) -> i64 {
                0
            }
            fn step(&self, state: &i64, e: &CaElement) -> Option<i64> {
                let mut mask = *state;
                for op in e.ops() {
                    mask |= 1 << op.arg.as_int()?;
                }
                for op in e.ops() {
                    if op.ret != Value::Int(mask) {
                        return None;
                    }
                }
                Some(mask)
            }
            fn max_element_size(&self) -> usize {
                4
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                Vec::new()
            }
        }

        let a = ws(1, 1, mask(&[1, 2, 3]));
        let b = ws(2, 2, mask(&[1, 2]));
        let c = ws(3, 3, mask(&[1, 2, 3]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        assert!(!crate::check::is_cal(&h, &OnePointWs).unwrap());
        // …while the interval spec accepts it (previous test).
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn real_time_order_respected() {
        // B ≺H C: C's snapshot must include B, and B's must exclude C.
        let b = ws(2, 2, mask(&[2, 3])); // claims to see C — impossible
        let c = ws(3, 3, mask(&[2, 3]));
        let h = History::from_actions(vec![
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
        ]);
        assert!(!is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn pending_ops_are_droppable() {
        let a = ws(1, 1, mask(&[1]));
        let h = History::from_actions(vec![
            a.invocation(),
            a.response(),
            Action::invoke(ThreadId(2), O, WS, Value::Int(2)),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn empty_history_is_interval_linearizable() {
        assert!(is_interval_linearizable(&History::new(), &WriteSnapshot).unwrap());
    }

    #[test]
    fn parallel_interval_matches_sequential() {
        let a = ws(1, 1, mask(&[1, 2, 3]));
        let b = ws(2, 2, mask(&[1, 2]));
        let c = ws(3, 3, mask(&[1, 2, 3]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        for threads in [1, 2, 8] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = check_interval_par_with(&h, &WriteSnapshot, &options).unwrap();
            assert!(outcome.verdict.is_cal(), "threads={threads}: {:?}", outcome.verdict);
        }
        // And a refutation, across thread counts.
        let bad = ws(1, 1, mask(&[1, 5]));
        let h = History::from_actions(vec![bad.invocation(), bad.response()]);
        for threads in [1, 4] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = check_interval_par_with(&h, &WriteSnapshot, &options).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
        }
    }

    #[test]
    fn seq_as_interval_matches_linearizability() {
        use crate::spec::SeqSpec;

        /// A write-once flag: `set` then `get` returning 1.
        #[derive(Debug)]
        struct Flag;
        impl SeqSpec for Flag {
            type State = i64;
            fn initial(&self) -> i64 {
                0
            }
            fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
                match op.method.0 {
                    "set" => (op.ret == Value::Unit).then_some(1),
                    "get" => (op.ret == Value::Int(*state)).then_some(*state),
                    _ => None,
                }
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                vec![Value::Unit]
            }
        }

        let set = Operation::new(ThreadId(1), O, Method("set"), Value::Unit, Value::Unit);
        let get_new = Operation::new(ThreadId(2), O, Method("get"), Value::Unit, Value::Int(1));
        let get_stale = Operation::new(ThreadId(2), O, Method("get"), Value::Unit, Value::Int(0));
        let good = History::from_actions(vec![
            set.invocation(),
            set.response(),
            get_new.invocation(),
            get_new.response(),
        ]);
        let bad = History::from_actions(vec![
            set.invocation(),
            set.response(),
            get_stale.invocation(),
            get_stale.response(),
        ]);
        let spec = SeqAsInterval::new(Flag);
        assert!(is_interval_linearizable(&good, &spec).unwrap());
        assert!(!is_interval_linearizable(&bad, &spec).unwrap());
        assert!(crate::seqlin::is_linearizable(&good, &Flag).unwrap());
        assert!(!crate::seqlin::is_linearizable(&bad, &Flag).unwrap());
    }
}
