//! Interval-linearizability (Castañeda, Rajsbaum & Raynal, DISC 2015),
//! the generalization of CAL discussed in the paper's related work (§6).
//!
//! CAL (equivalently, Neiger's set-linearizability) explains a history by
//! mapping each operation to exactly **one** element of a trace. Some
//! objects need more: in the *write-snapshot* task an operation may have
//! to appear concurrent with two operations that are themselves ordered —
//! its effect spans an **interval** of elements. Interval-linearizability
//! maps every operation to a non-empty contiguous interval of trace
//! points; at each point the specification sees which operations *open*,
//! which are *active*, and which *close*.
//!
//! Formally, a complete history `H` is interval-linearizable w.r.t. an
//! [`IntervalSpec`] if there is a sequence of points and a map
//! `i ↦ [l_i, r_i]` such that (i) the spec accepts every point given its
//! opening/active/closing sets, (ii) `i ≺H j ⟹ r_i < l_j`, and (iii)
//! operations in one point are pairwise concurrent in `H`. CAL is the
//! special case where every interval has length one.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::bitset::BitSet;
use crate::check::{panic_message, CheckError, CheckOptions, InterruptReason};
use crate::history::{History, Span};
use crate::op::Operation;
use crate::spec::Invocation;
use crate::ids::Value;

/// An interval-sequential specification: a stateful acceptor over interval
/// points.
pub trait IntervalSpec {
    /// Acceptor state.
    type State: Clone + Eq + Hash + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Accepts one interval point, or rejects it.
    ///
    /// `active` lists every operation whose interval contains this point
    /// (with its final return value); `opening` and `closing` are the
    /// subsets of `active` whose intervals start / end here (an operation
    /// may do both, for a singleton interval).
    fn step(
        &self,
        state: &Self::State,
        active: &[Operation],
        opening: &[Operation],
        closing: &[Operation],
    ) -> Option<Self::State>;

    /// Bound on the number of simultaneously active operations the
    /// specification admits; limits the checker's branching.
    fn max_active(&self) -> usize {
        4
    }

    /// Candidate return values for completing a pending invocation.
    fn completions_of(&self, inv: &Invocation) -> Vec<Value>;
}

/// One point of an interval witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalPoint {
    /// Operations whose interval contains this point.
    pub active: Vec<Operation>,
    /// The subset of `active` opening here.
    pub opening: Vec<Operation>,
    /// The subset of `active` closing here.
    pub closing: Vec<Operation>,
}

/// The outcome of an interval-linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalVerdict {
    /// Interval-linearizable, with the witness point sequence.
    Linearizable(Vec<IntervalPoint>),
    /// No witness exists.
    NotLinearizable,
    /// The node budget ran out first.
    ResourcesExhausted,
    /// A deadline or cancellation stopped the search first.
    Interrupted {
        /// What stopped the search.
        reason: InterruptReason,
    },
}

impl IntervalVerdict {
    /// Returns `true` for [`IntervalVerdict::Linearizable`].
    pub fn is_linearizable(&self) -> bool {
        matches!(self, IntervalVerdict::Linearizable(_))
    }
}

/// Decides interval-linearizability of `history` w.r.t. `spec`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_interval<S: IntervalSpec>(
    history: &History,
    spec: &S,
) -> Result<IntervalVerdict, CheckError> {
    check_interval_with(history, spec, &CheckOptions::default())
}

/// Like [`check_interval`], with explicit options.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_interval_with<S: IntervalSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<IntervalVerdict, CheckError> {
    let spans = history.try_spans()?;
    let n = spans.len();
    let mut search = IntervalSearch {
        spans: &spans,
        spec,
        options,
        nodes: 0,
        exhausted: false,
        failed: HashSet::new(),
        witness: Vec::new(),
        start: Instant::now(),
        ticks: 0,
        interrupted: None,
        panicked: None,
    };
    let mut done = BitSet::new(n.max(1));
    let open: Vec<(usize, Operation)> = Vec::new();
    let initial = catch_unwind(AssertUnwindSafe(|| spec.initial()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    let found = search.dfs(&mut done, &open, &initial);
    if let Some(msg) = search.panicked {
        return Err(CheckError::SpecPanicked(msg));
    }
    if found {
        Ok(IntervalVerdict::Linearizable(search.witness))
    } else if let Some(reason) = search.interrupted {
        Ok(IntervalVerdict::Interrupted { reason })
    } else if search.exhausted {
        Ok(IntervalVerdict::ResourcesExhausted)
    } else {
        Ok(IntervalVerdict::NotLinearizable)
    }
}

/// Convenience predicate for [`check_interval`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the budget runs out before the search
/// decides.
pub fn is_interval_linearizable<S: IntervalSpec>(
    history: &History,
    spec: &S,
) -> Result<bool, CheckError> {
    use crate::check::Verdict;
    match check_interval(history, spec)? {
        IntervalVerdict::Linearizable(_) => Ok(true),
        IntervalVerdict::NotLinearizable => Ok(false),
        IntervalVerdict::ResourcesExhausted => {
            Err(CheckError::Undecided(Verdict::ResourcesExhausted))
        }
        IntervalVerdict::Interrupted { reason } => {
            Err(CheckError::Undecided(Verdict::Interrupted { reason }))
        }
    }
}

/// Poll cadence for deadline/cancellation checks; see the CAL checker.
const POLL_INTERVAL_MASK: u64 = 255;

type MemoKey<St> = (BitSet, Vec<(usize, Operation)>, St);

struct IntervalSearch<'a, S: IntervalSpec> {
    spans: &'a [Span],
    spec: &'a S,
    options: &'a CheckOptions,
    nodes: u64,
    exhausted: bool,
    failed: HashSet<MemoKey<S::State>>,
    witness: Vec<IntervalPoint>,
    start: Instant,
    ticks: u64,
    interrupted: Option<InterruptReason>,
    panicked: Option<String>,
}

impl<S: IntervalSpec> IntervalSearch<'_, S> {
    fn should_stop(&mut self) -> bool {
        if self.interrupted.is_some() || self.panicked.is_some() {
            return true;
        }
        self.ticks += 1;
        if self.ticks & POLL_INTERVAL_MASK == 0 {
            if let Some(deadline) = self.options.deadline {
                if self.start.elapsed() >= deadline {
                    self.interrupted = Some(InterruptReason::DeadlineExceeded);
                    return true;
                }
            }
            if let Some(cancel) = &self.options.cancel {
                if cancel.is_cancelled() {
                    self.interrupted = Some(InterruptReason::Cancelled);
                    return true;
                }
            }
        }
        false
    }

    fn step_guarded(
        &mut self,
        state: &S::State,
        active: &[Operation],
        opening: &[Operation],
        closing: &[Operation],
    ) -> Option<S::State> {
        match catch_unwind(AssertUnwindSafe(|| self.spec.step(state, active, opening, closing))) {
            Ok(next) => next,
            Err(payload) => {
                self.panicked = Some(panic_message(payload));
                None
            }
        }
    }

    /// `open` holds (span index, chosen operation) pairs, sorted by index.
    fn dfs(
        &mut self,
        done: &mut BitSet,
        open: &[(usize, Operation)],
        state: &S::State,
    ) -> bool {
        if open.is_empty()
            && (0..self.spans.len())
                .all(|i| done.contains(i) || !self.spans[i].is_complete())
        {
            return true;
        }
        if self.should_stop() {
            return false;
        }
        if self.nodes >= self.options.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.nodes += 1;
        let key = (done.clone(), open.to_vec(), state.clone());
        if self.options.memoize && self.failed.contains(&key) {
            return false;
        }

        // Operations that may open here: neither done nor open, and every
        // ≺H-predecessor is already done (its interval closed earlier).
        let openable: Vec<usize> = (0..self.spans.len())
            .filter(|&i| !done.contains(i) && open.iter().all(|&(j, _)| j != i))
            .filter(|&i| {
                (0..self.spans.len()).all(|j| {
                    done.contains(j) || !History::spans_precede(&self.spans[j], &self.spans[i])
                })
            })
            .collect();

        let max_new = self.spec.max_active().saturating_sub(open.len());
        // Enumerate opening subsets (including empty when something is
        // already open), then closing subsets (non-trivial points only).
        let mut opening: Vec<usize> = Vec::new();
        if self.enumerate_openings(&openable, 0, max_new, &mut opening, done, open, state) {
            return true;
        }
        if self.options.memoize
            && self.interrupted.is_none()
            && self.panicked.is_none()
            && !self.exhausted
        {
            self.failed.insert(key);
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_openings(
        &mut self,
        openable: &[usize],
        from: usize,
        max_new: usize,
        opening: &mut Vec<usize>,
        done: &mut BitSet,
        open: &[(usize, Operation)],
        state: &S::State,
    ) -> bool {
        if !open.is_empty() || !opening.is_empty() {
            // Candidate point with these openings; try closings.
            if self.try_closings(opening, done, open, state) {
                return true;
            }
        }
        if opening.len() == max_new {
            return false;
        }
        for (k, &i) in openable.iter().enumerate().skip(from) {
            // New ops must be pairwise concurrent with the already-chosen
            // openings and with everything currently open.
            let concurrent = opening
                .iter()
                .all(|&j| History::spans_concurrent(&self.spans[i], &self.spans[j]))
                && open
                    .iter()
                    .all(|&(j, _)| History::spans_concurrent(&self.spans[i], &self.spans[j]));
            if !concurrent {
                continue;
            }
            opening.push(i);
            if self.enumerate_openings(openable, k + 1, max_new, opening, done, open, state) {
                return true;
            }
            opening.pop();
        }
        false
    }

    fn try_closings(
        &mut self,
        opening: &[usize],
        done: &mut BitSet,
        open: &[(usize, Operation)],
        state: &S::State,
    ) -> bool {
        // Resolve the operations of the opening set (pending invocations
        // get spec-proposed completions).
        let mut opening_choices: Vec<Vec<Operation>> = Vec::with_capacity(opening.len());
        for &i in opening {
            let s = &self.spans[i];
            let choices = match s.operation() {
                Some(op) => vec![op],
                None => {
                    let inv = Invocation::new(s.thread, s.object, s.method, s.arg);
                    self.spec
                        .completions_of(&inv)
                        .into_iter()
                        .map(|ret| s.operation_with_ret(ret))
                        .collect()
                }
            };
            if choices.is_empty() {
                return false;
            }
            opening_choices.push(choices);
        }
        let mut pick = vec![0usize; opening.len()];
        loop {
            if self.should_stop() {
                return false;
            }
            let opening_ops: Vec<(usize, Operation)> = opening
                .iter()
                .zip(&pick)
                .map(|(&i, &c)| (i, opening_choices[opening.iter().position(|&x| x == i).unwrap()][c]))
                .collect();
            // Active set = open ∪ opening.
            let mut active: Vec<(usize, Operation)> = open.to_vec();
            active.extend(opening_ops.iter().copied());
            // Enumerate closing subsets of the active set (2^|active|,
            // bounded by max_active).
            let m = active.len();
            for mask in 0..(1u32 << m) {
                let closing: Vec<(usize, Operation)> = (0..m)
                    .filter(|&b| mask & (1 << b) != 0)
                    .map(|b| active[b])
                    .collect();
                // A point must make progress: open or close something.
                if opening.is_empty() && closing.is_empty() {
                    continue;
                }
                let active_ops: Vec<Operation> = active.iter().map(|&(_, o)| o).collect();
                let opening_only: Vec<Operation> =
                    opening_ops.iter().map(|&(_, o)| o).collect();
                let closing_ops: Vec<Operation> = closing.iter().map(|&(_, o)| o).collect();
                if let Some(next) =
                    self.step_guarded(state, &active_ops, &opening_only, &closing_ops)
                {
                    // Commit: move closings to done, keep the rest open.
                    let mut next_open: Vec<(usize, Operation)> = active
                        .iter()
                        .filter(|&&(i, _)| !closing.iter().any(|&(j, _)| j == i))
                        .copied()
                        .collect();
                    next_open.sort_unstable_by_key(|&(i, _)| i);
                    for &(i, _) in &closing {
                        done.insert(i);
                    }
                    self.witness.push(IntervalPoint {
                        active: active_ops,
                        opening: opening_only,
                        closing: closing_ops,
                    });
                    if self.dfs(done, &next_open, &next) {
                        return true;
                    }
                    self.witness.pop();
                    for &(i, _) in &closing {
                        done.remove(i);
                    }
                }
            }
            // Advance completion choices.
            let mut d = 0;
            loop {
                if d == pick.len() {
                    return false;
                }
                pick[d] += 1;
                if pick[d] < opening_choices[d].len() {
                    break;
                }
                pick[d] = 0;
                d += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId};

    const O: ObjectId = ObjectId(0);
    const WS: Method = Method("write_snapshot");

    /// Write-snapshot over values 0..63: `write_snapshot(v)` returns the
    /// bitmask of all values written by operations whose interval started
    /// no later than this one's end. State = bitmask written so far;
    /// opening adds values; closing ops must return the current mask.
    #[derive(Debug)]
    struct WriteSnapshot;

    impl IntervalSpec for WriteSnapshot {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn step(
            &self,
            state: &i64,
            _active: &[Operation],
            opening: &[Operation],
            closing: &[Operation],
        ) -> Option<i64> {
            let mut mask = *state;
            for op in opening {
                let v = op.arg.as_int()?;
                if !(0..63).contains(&v) {
                    return None;
                }
                mask |= 1 << v;
            }
            for op in closing {
                if op.ret != Value::Int(mask) {
                    return None;
                }
            }
            Some(mask)
        }

        fn completions_of(&self, _inv: &Invocation) -> Vec<Value> {
            Vec::new()
        }
    }

    fn ws(t: u32, v: i64, snapshot: i64) -> Operation {
        Operation::new(ThreadId(t), O, WS, Value::Int(v), Value::Int(snapshot))
    }

    fn mask(vals: &[i64]) -> i64 {
        vals.iter().fold(0, |m, v| m | (1 << v))
    }

    #[test]
    fn sequential_snapshots_are_interval_linearizable() {
        let a = ws(1, 1, mask(&[1]));
        let b = ws(2, 2, mask(&[1, 2]));
        let h = History::from_actions(vec![
            a.invocation(),
            a.response(),
            b.invocation(),
            b.response(),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn wrong_snapshot_rejected() {
        let a = ws(1, 1, mask(&[1, 5])); // claims to have seen 5
        let h = History::from_actions(vec![a.invocation(), a.response()]);
        assert!(!is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn concurrent_ops_may_share_a_point() {
        let a = ws(1, 1, mask(&[1, 2]));
        let b = ws(2, 2, mask(&[1, 2]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            a.response(),
            b.response(),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    /// The Castañeda–Rajsbaum–Raynal separation scenario (§6 of the
    /// paper): A overlaps B and C, B precedes C, B's snapshot excludes C
    /// but includes A, and A's snapshot includes C. A's effect must span
    /// an *interval* covering both B's and C's points — expressible here,
    /// not with single-point (CAL / set-linearizable) assignments.
    #[test]
    fn spanning_operation_is_interval_linearizable() {
        let a = ws(1, 1, mask(&[1, 2, 3])); // sees everyone
        let b = ws(2, 2, mask(&[1, 2])); // sees A but not C
        let c = ws(3, 3, mask(&[1, 2, 3])); // sees everyone
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(), // B closes; C has not started: B ≺H C
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        let verdict = check_interval(&h, &WriteSnapshot).unwrap();
        let IntervalVerdict::Linearizable(points) = verdict else {
            panic!("expected interval-linearizable");
        };
        // A must be active at (at least) two points.
        let a_points = points
            .iter()
            .filter(|p| p.active.iter().any(|op| op.thread == ThreadId(1)))
            .count();
        assert!(a_points >= 2, "A's interval must span, witness: {points:?}");
    }

    /// The same history is *not* CAL w.r.t. the natural one-point
    /// write-snapshot specification: with every operation confined to a
    /// single element, B's and A's returns cannot both be explained.
    #[test]
    fn spanning_operation_is_not_cal() {
        use crate::spec::CaSpec;
        use crate::trace::CaElement;

        /// One-point (set-linearizable) write-snapshot: each element's ops
        /// all return the mask including every value up to this element.
        #[derive(Debug)]
        struct OnePointWs;
        impl CaSpec for OnePointWs {
            type State = i64;
            fn initial(&self) -> i64 {
                0
            }
            fn step(&self, state: &i64, e: &CaElement) -> Option<i64> {
                let mut mask = *state;
                for op in e.ops() {
                    mask |= 1 << op.arg.as_int()?;
                }
                for op in e.ops() {
                    if op.ret != Value::Int(mask) {
                        return None;
                    }
                }
                Some(mask)
            }
            fn max_element_size(&self) -> usize {
                4
            }
            fn completions_of(&self, _: &Invocation) -> Vec<Value> {
                Vec::new()
            }
        }

        let a = ws(1, 1, mask(&[1, 2, 3]));
        let b = ws(2, 2, mask(&[1, 2]));
        let c = ws(3, 3, mask(&[1, 2, 3]));
        let h = History::from_actions(vec![
            a.invocation(),
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
            a.response(),
        ]);
        assert!(!crate::check::is_cal(&h, &OnePointWs).unwrap());
        // …while the interval spec accepts it (previous test).
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn real_time_order_respected() {
        // B ≺H C: C's snapshot must include B, and B's must exclude C.
        let b = ws(2, 2, mask(&[2, 3])); // claims to see C — impossible
        let c = ws(3, 3, mask(&[2, 3]));
        let h = History::from_actions(vec![
            b.invocation(),
            b.response(),
            c.invocation(),
            c.response(),
        ]);
        assert!(!is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn pending_ops_are_droppable() {
        let a = ws(1, 1, mask(&[1]));
        let h = History::from_actions(vec![
            a.invocation(),
            a.response(),
            Action::invoke(ThreadId(2), O, WS, Value::Int(2)),
        ]);
        assert!(is_interval_linearizable(&h, &WriteSnapshot).unwrap());
    }

    #[test]
    fn empty_history_is_interval_linearizable() {
        assert!(is_interval_linearizable(&History::new(), &WriteSnapshot).unwrap());
    }
}
