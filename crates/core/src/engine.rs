//! The generic membership-search kernel shared by every checker.
//!
//! The CAL checker ([`crate::check`]), the classical linearizability
//! checker ([`crate::seqlin`]) and the interval-linearizability checker
//! ([`crate::interval`]) are all instances of one problem: an ordered
//! backtracking search for a *witness* — a sequence of steps accepted by a
//! stateful specification that explains every complete operation of a
//! history. They differ only in how candidate steps are enumerated and
//! what a step is (a CA-element, a single operation, an interval point).
//!
//! This module owns everything that used to be triplicated across them:
//!
//! - the node budget ([`CheckOptions::max_nodes`]) with a private or
//!   shared (cross-worker) counter;
//! - deadline / cancellation polling at one tick cadence
//!   ([`CheckOptions::deadline`], [`CancelToken`]);
//! - failed-state memoization, thread-private (`MemoTable`) or shared
//!   and lock-free ([`crate::fpmemo::FpMemo`]), optionally canonicalized
//!   under operation symmetry ([`crate::symmetry`],
//!   [`CheckOptions::symmetry`]);
//! - [`crate::obs::StatsSink`] event emission;
//! - the [`Verdict`] / [`InterruptReason`] outcome taxonomy;
//! - the parallel driver: per-object decomposition and work-stealing
//!   root-frontier splitting ([`search_par`], [`CheckOptions::stealing`]).
//!
//! The search itself is an *iterative* DFS over an arena of successor
//! entries: one `Vec` per worker holds every `(step, node)` on the
//! current path's frontiers, frames address it by index, and the witness
//! is reconstructed from frame indices only on success — no per-node
//! boxing, no per-descent step clones, and backtracking is a truncate.
//!
//! A checker plugs in by implementing [`SearchDomain`]: it names its
//! search-node type (which doubles as the memo key — memo keys stay
//! domain-local because what "same residual state" means differs per
//! checker), enumerates successor steps, and optionally supports
//! per-object decomposition with witness merging. In exchange it inherits
//! sequential search, parallel search, the shared memo table, stats sinks
//! and uniform interrupt semantics from one audited implementation.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

use crate::fpmemo::FpMemo;
use crate::history::HistoryError;
use crate::ids::ObjectId;
use crate::obs::StatsSink;
use crate::trace::CaTrace;

/// A cooperative cancellation token shared between a checker run and the
/// code supervising it.
///
/// Cloning yields a handle to the same token. The search polls it
/// periodically; after [`CancelToken::cancel`] the run winds down and
/// reports [`Verdict::Interrupted`] with partial [`CheckStats`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; safe to call from any thread, idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tuning knobs for a membership search, shared by every checker.
///
/// # Examples
///
/// Options compose via struct update syntax from [`CheckOptions::default`]:
///
/// ```
/// use std::time::Duration;
/// use cal_core::check::CheckOptions;
///
/// let options = CheckOptions {
///     max_nodes: 100_000,
///     threads: 4,
///     ..CheckOptions::with_deadline(Duration::from_secs(5))
/// };
/// assert_eq!(options.max_nodes, 100_000);
/// assert!(options.memoize); // on by default
/// ```
#[derive(Clone)]
pub struct CheckOptions {
    /// Maximum number of search nodes to expand before giving up with
    /// [`Verdict::ResourcesExhausted`].
    pub max_nodes: u64,
    /// Memoize failed search nodes (Lowe's optimization of the Wing–Gong
    /// search, generalized to every domain's node type). On by default;
    /// the ablation benchmark turns it off to quantify its effect.
    pub memoize: bool,
    /// Wall-clock budget for the search. When it elapses the search winds
    /// down and reports [`Verdict::Interrupted`] with the stats gathered
    /// so far. `None` (the default) means unbounded.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: when the token fires, the search winds
    /// down and reports [`Verdict::Interrupted`]. `None` by default.
    pub cancel: Option<CancelToken>,
    /// Worker threads for the parallel drivers ([`search_par`], used by
    /// [`crate::par::check_cal_par_with`] and the other `_par` entry
    /// points). The sequential entry points ignore it. Defaults to 1.
    pub threads: usize,
    /// Work-stealing for the parallel frontier search: workers donate
    /// untried subtrees from their shallowest frame to idle thieves, so
    /// a skewed root frontier no longer leaves workers dying with their
    /// branch. On by default; off reverts to static root-branch claiming
    /// (the ablation benchmark measures the difference). The sequential
    /// entry points ignore it.
    pub stealing: bool,
    /// Symmetry reduction ([`crate::symmetry`]): memo keys are
    /// canonicalized under permutation of interchangeable operations
    /// (same object/method/argument/return, identical real-time
    /// constraints), collapsing the `C(n, k)` ways of matching `k` of
    /// `n` clones onto one memo entry. On by default. Sound for
    /// specifications that consume thread ids only through equality
    /// tests *within* a candidate element (all in-tree specs); a spec
    /// that discriminates on absolute thread ids must turn this off.
    pub symmetry: bool,
    /// Observability sink the search reports events to
    /// ([`crate::obs::StatsSink`]). `None` (the default) disables
    /// observability entirely: each instrumentation point reduces to one
    /// never-taken branch, no allocation, no atomics.
    pub sink: Option<Arc<dyn StatsSink>>,
}

impl fmt::Debug for CheckOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckOptions")
            .field("max_nodes", &self.max_nodes)
            .field("memoize", &self.memoize)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel)
            .field("threads", &self.threads)
            .field("stealing", &self.stealing)
            .field("symmetry", &self.symmetry)
            .field("sink", &self.sink.as_ref().map(|_| "StatsSink"))
            .finish()
    }
}

impl CheckOptions {
    /// The default node budget.
    pub const DEFAULT_MAX_NODES: u64 = 4_000_000;

    /// Returns the default options with a wall-clock `deadline`.
    pub fn with_deadline(deadline: Duration) -> Self {
        CheckOptions { deadline: Some(deadline), ..CheckOptions::default() }
    }

    /// Returns the default options with [`CheckOptions::threads`] set to
    /// the machine's available parallelism.
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        CheckOptions { threads, ..CheckOptions::default() }
    }
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_nodes: Self::DEFAULT_MAX_NODES,
            memoize: true,
            deadline: None,
            cancel: None,
            threads: 1,
            stealing: true,
            symmetry: true,
            sink: None,
        }
    }
}

/// Why a search stopped before reaching a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The wall-clock deadline in [`CheckOptions::deadline`] elapsed.
    DeadlineExceeded,
    /// The [`CancelToken`] in [`CheckOptions::cancel`] fired.
    Cancelled,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::DeadlineExceeded => f.write_str("deadline exceeded"),
            InterruptReason::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// The outcome of a membership check, generic over the witness type `W`
/// (a [`CaTrace`] for the CAL and linearizability checkers, an
/// [`crate::interval::IntervalWitness`] for the interval checker).
///
/// # Examples
///
/// ```
/// use cal_core::check::{InterruptReason, Verdict};
/// use cal_core::trace::CaTrace;
///
/// let cal = Verdict::Cal(CaTrace::new());
/// assert!(cal.is_cal() && !cal.is_undecided());
/// assert!(cal.witness().is_some());
///
/// // Budget and interrupt outcomes are undecided, not refutations.
/// let timed_out: Verdict<CaTrace> =
///     Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded };
/// assert!(timed_out.is_undecided());
/// assert_eq!(Verdict::<CaTrace>::NotCal.witness(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<W = CaTrace> {
    /// The history is a member of the specification; the witness is
    /// attached.
    Cal(W),
    /// No completion/witness pair exists: the history violates the
    /// specification.
    NotCal,
    /// The node budget was exhausted before the search completed.
    ResourcesExhausted,
    /// The search was stopped early by a deadline or cancellation; the
    /// accompanying [`CheckStats`] cover the work done up to that point.
    Interrupted {
        /// What stopped the search.
        reason: InterruptReason,
    },
}

impl<W> Verdict<W> {
    /// Returns `true` for [`Verdict::Cal`].
    pub fn is_cal(&self) -> bool {
        matches!(self, Verdict::Cal(_))
    }

    /// Returns `true` when the search stopped without deciding —
    /// [`Verdict::ResourcesExhausted`] or [`Verdict::Interrupted`].
    pub fn is_undecided(&self) -> bool {
        matches!(self, Verdict::ResourcesExhausted | Verdict::Interrupted { .. })
    }

    /// The witness, if the verdict is [`Verdict::Cal`].
    pub fn witness(&self) -> Option<&W> {
        match self {
            Verdict::Cal(w) => Some(w),
            _ => None,
        }
    }

    /// Maps the witness type, leaving the other variants untouched.
    pub fn map<U>(self, f: impl FnOnce(W) -> U) -> Verdict<U> {
        match self {
            Verdict::Cal(w) => Verdict::Cal(f(w)),
            Verdict::NotCal => Verdict::NotCal,
            Verdict::ResourcesExhausted => Verdict::ResourcesExhausted,
            Verdict::Interrupted { reason } => Verdict::Interrupted { reason },
        }
    }
}

impl<W: fmt::Display> fmt::Display for Verdict<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Cal(w) => write!(f, "CAL (witness: {w})"),
            Verdict::NotCal => f.write_str("not CAL"),
            Verdict::ResourcesExhausted => f.write_str("undecided: node budget exhausted"),
            Verdict::Interrupted { reason } => write!(f, "undecided: interrupted ({reason})"),
        }
    }
}

/// Search statistics, for the checker-scalability experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Search nodes expanded.
    pub nodes: u64,
    /// Candidate steps tried (spec transition calls).
    pub elements_tried: u64,
    /// Failed states pruned via the memo table.
    pub memo_hits: u64,
    /// Subtrees stolen from another worker's deque (always 0 on the
    /// sequential path and with [`CheckOptions::stealing`] off).
    pub steals: u64,
}

impl std::ops::AddAssign for CheckStats {
    fn add_assign(&mut self, other: CheckStats) {
        self.nodes += other.nodes;
        self.elements_tried += other.elements_tried;
        self.memo_hits += other.memo_hits;
        self.steals += other.steals;
    }
}

/// A verdict together with search statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome<W = CaTrace> {
    /// The verdict.
    pub verdict: Verdict<W>,
    /// Search statistics.
    pub stats: CheckStats,
}

impl<W> CheckOutcome<W> {
    /// Maps the witness type, preserving the stats.
    pub fn map_witness<U>(self, f: impl FnOnce(W) -> U) -> CheckOutcome<U> {
        CheckOutcome { verdict: self.verdict.map(f), stats: self.stats }
    }
}

/// Errors reported by the checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The input history is not well-formed.
    IllFormed(HistoryError),
    /// The specification panicked during a transition; the payload is the
    /// panic message. The search state is discarded — a panicking spec
    /// cannot be trusted to have left its `State` values consistent.
    SpecPanicked(String),
    /// A boolean convenience query ([`crate::check::is_cal`]) could not be
    /// answered because the underlying check stopped without deciding.
    Undecided(Verdict),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::IllFormed(e) => write!(f, "ill-formed history: {e}"),
            CheckError::SpecPanicked(msg) => write!(f, "specification panicked: {msg}"),
            CheckError::Undecided(v) => write!(f, "check undecided: {v}"),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::IllFormed(e) => Some(e),
            CheckError::SpecPanicked(_) | CheckError::Undecided(_) => None,
        }
    }
}

impl From<HistoryError> for CheckError {
    fn from(e: HistoryError) -> Self {
        CheckError::IllFormed(e)
    }
}

/// Renders a `catch_unwind` payload as a message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How many search ticks (nodes or candidate steps) pass between
/// wall-clock and cancellation polls. A power of two; small enough that
/// even slow spec transitions keep deadline overshoot well under the
/// deadline itself.
const POLL_INTERVAL_MASK: u64 = 255;

/// A concurrent failed-state table striped over N mutex-guarded shards.
///
/// Keys are domain search nodes; a key is inserted once the subtree below
/// it has been exhaustively refuted, after which every worker prunes on
/// it. Striping keeps the common case (distinct shards) contention-free
/// without pulling in a lock-free map.
///
/// The parallel driver's hot path now uses the lock-free
/// [`crate::fpmemo::FpMemo`] instead; this table remains as the simple,
/// unbounded alternative (exact membership, no eviction) for callers
/// that build their own drivers on the engine.
pub struct ShardedMemo<K> {
    shards: Box<[Mutex<HashSet<K>>]>,
    mask: usize,
}

impl<K: Eq + Hash> ShardedMemo<K> {
    /// Creates a table striped for `threads` workers (shard count is a
    /// power of two, several shards per worker).
    pub fn for_threads(threads: usize) -> Self {
        Self::with_shards((threads.max(1) * 8).min(512))
    }

    /// Creates a table with `shards` stripes (rounded up to a power of
    /// two, at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let stripes: Vec<Mutex<HashSet<K>>> = (0..n).map(|_| Mutex::new(HashSet::new())).collect();
        ShardedMemo { shards: stripes.into_boxed_slice(), mask: n - 1 }
    }

    /// The stripe index `key` hashes to — stable for the table's lifetime,
    /// and what per-shard memo statistics ([`crate::obs::StatsSink`]) are
    /// keyed by.
    pub fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & self.mask
    }

    fn shard(&self, key: &K) -> &Mutex<HashSet<K>> {
        &self.shards[self.shard_index(key)]
    }

    /// Whether `key` has been recorded as a refuted state.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).lock().contains(key)
    }

    /// Records a refuted state; returns `true` if it was new.
    pub fn insert(&self, key: K) -> bool {
        self.shard(&key).lock().insert(key)
    }

    /// Total number of recorded states.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K> fmt::Debug for ShardedMemo<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMemo").field("shards", &self.shards.len()).finish()
    }
}

/// The failed-state table behind a search: thread-private for the
/// sequential driver, a reference to a shared lock-free fingerprint
/// table ([`FpMemo`]) for the parallel one (so cross-worker pruning
/// compounds without lock contention).
pub(crate) enum MemoTable<'m, K: Eq + Hash + Clone> {
    /// A plain private hash set.
    Local(HashSet<K>),
    /// A shared lock-free fingerprint table owned by the parallel driver.
    Shared(&'m FpMemo<K>),
}

impl<K: Eq + Hash + Clone> MemoTable<'_, K> {
    /// The shard bucket `key` lives in, for per-shard memo attribution:
    /// always 0 for the private table, the fingerprint bucket for the
    /// shared one.
    fn shard_of(&self, key: &K) -> usize {
        match self {
            MemoTable::Local(_) => 0,
            MemoTable::Shared(memo) => memo.bucket_of(key),
        }
    }

    fn contains(&self, key: &K) -> bool {
        match self {
            MemoTable::Local(set) => set.contains(key),
            MemoTable::Shared(memo) => memo.contains(key),
        }
    }

    fn insert(&mut self, key: K) {
        match self {
            MemoTable::Local(set) => {
                set.insert(key);
            }
            MemoTable::Shared(memo) => {
                memo.insert(&key);
            }
        }
    }
}

/// A checker's view of one search problem: how to enumerate candidate
/// steps and assemble witnesses. Everything else — budgets, deadlines,
/// memoization, parallelism, stats — is the engine's job.
///
/// The three in-tree domains are the CAL checker ([`crate::check`],
/// steps are CA-elements), the classical linearizability checker
/// ([`crate::seqlin`], steps are single operations) and the
/// interval-linearizability checker ([`crate::interval`], steps are
/// interval points).
pub trait SearchDomain {
    /// A search node. Doubles as the failed-state memo key, which is why
    /// it stays domain-local: the CAL and linearizability checkers key on
    /// `(matched-set, spec-state)`, the interval checker additionally
    /// carries its open-interval set — collapsing them onto one key type
    /// would either lose pruning or conflate distinct residual states.
    type Node: Clone + Eq + Hash + fmt::Debug;

    /// One step of a witness (a CA-element, an operation, an interval
    /// point).
    type Step: Clone;

    /// The root search node. May call specification code; the engine
    /// guards the call with `catch_unwind` and surfaces panics as
    /// [`CheckError::SpecPanicked`].
    fn initial(&self) -> Self::Node;

    /// Whether `node` explains every complete operation (unmatched
    /// pending invocations are dropped by the chosen completion). Must
    /// not call panicking specification code: the engine invokes it
    /// unguarded on its hot path.
    fn is_goal(&self, node: &Self::Node) -> bool;

    /// Enumerates the successor steps of `node`, in the order the search
    /// should try them, pushing each onto `out` (the engine's per-worker
    /// successor arena — domains append and never otherwise touch it, so
    /// one growing buffer serves the whole search with no per-expansion
    /// allocation). Domains call specification code *unguarded* here —
    /// the engine wraps the whole call in `catch_unwind`, converts a
    /// panic into [`CheckError::SpecPanicked`] and discards whatever the
    /// interrupted call pushed. Long enumeration loops should poll
    /// [`ExpandObs::should_stop`] and return early (with a partial
    /// successor list) when it fires, and report candidate transition
    /// attempts via [`ExpandObs::on_element_tried`].
    fn expand(
        &self,
        node: &Self::Node,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(Self::Step, Self::Node)>,
    );

    /// The symmetry-canonical memo key for `node`, or `None` when the
    /// node is its own canonical form (the common case, kept
    /// allocation-free). Only consulted when [`CheckOptions::symmetry`]
    /// is on. The default — no domain symmetry — never canonicalizes.
    ///
    /// Implementations must guarantee that two nodes with the same
    /// canonical key have equi-satisfiable residual search problems; see
    /// [`crate::symmetry`] for the soundness argument the CAL and
    /// linearizability domains rely on.
    fn canonical_key(&self, node: &Self::Node) -> Option<Self::Node> {
        let _ = node;
        None
    }

    /// Splits the problem into independent per-object subdomains, when
    /// the domain supports locality-based decomposition. `None` (the
    /// default) means the parallel driver falls back to root-frontier
    /// splitting. Implementations should return `None` rather than a
    /// single-element partition. May call specification code; the engine
    /// guards the call.
    fn decompose(&self) -> Option<Vec<(ObjectId, Self)>>
    where
        Self: Sized,
    {
        None
    }

    /// Merges per-object witnesses (as returned by the subdomains from
    /// [`SearchDomain::decompose`]) into one witness respecting the full
    /// history's real-time order. The default concatenation is only
    /// correct for domains that never decompose.
    fn merge_witnesses(&self, parts: Vec<(ObjectId, Vec<Self::Step>)>) -> Vec<Self::Step> {
        parts.into_iter().flat_map(|(_, steps)| steps).collect()
    }
}

/// Non-generic per-search control state: budget, tick polling, interrupt
/// latches and the stats sink.
struct Ctl<'a> {
    options: &'a CheckOptions,
    sink: Option<&'a dyn StatsSink>,
    start: Instant,
    ticks: u64,
    stats: CheckStats,
    exhausted: bool,
    interrupted: Option<InterruptReason>,
    panicked: Option<String>,
    /// Global node counter for parallel searches; when present it
    /// replaces the private `stats.nodes` in the budget check, so
    /// `max_nodes` bounds the *total* across workers.
    shared_nodes: Option<&'a AtomicU64>,
    /// Early-stop latch for parallel searches: fired by the driver when a
    /// sibling worker found a witness (or panicked), making every other
    /// worker wind down. Distinct from the user's [`CheckOptions::cancel`]
    /// so an internal stop is never mistaken for a user cancellation.
    stop: Option<&'a CancelToken>,
}

impl<'a> Ctl<'a> {
    fn new(
        options: &'a CheckOptions,
        shared_nodes: Option<&'a AtomicU64>,
        stop: Option<&'a CancelToken>,
        start: Instant,
    ) -> Self {
        Ctl {
            options,
            sink: options.sink.as_deref(),
            start,
            ticks: 0,
            stats: CheckStats::default(),
            exhausted: false,
            interrupted: None,
            panicked: None,
            shared_nodes,
            stop,
        }
    }

    /// `true` once the search must stop (interrupt already latched, spec
    /// panicked, or a periodic poll observes deadline/cancellation).
    fn should_stop(&mut self) -> bool {
        if self.interrupted.is_some() || self.panicked.is_some() {
            return true;
        }
        self.ticks += 1;
        if self.ticks & POLL_INTERVAL_MASK == 0 {
            if let Some(deadline) = self.options.deadline {
                if self.start.elapsed() >= deadline {
                    return self.latch_interrupt(InterruptReason::DeadlineExceeded);
                }
            }
            if let Some(cancel) = &self.options.cancel {
                if cancel.is_cancelled() {
                    return self.latch_interrupt(InterruptReason::Cancelled);
                }
            }
            if let Some(stop) = self.stop {
                if stop.is_cancelled() {
                    return self.latch_interrupt(InterruptReason::Cancelled);
                }
            }
        }
        false
    }

    /// Latches `reason`, reports it to the sink, and returns `true`.
    fn latch_interrupt(&mut self, reason: InterruptReason) -> bool {
        self.interrupted = Some(reason);
        if let Some(sink) = self.sink {
            sink.on_interrupt(reason);
        }
        true
    }

    /// Charges one node against the budget (the shared counter when
    /// present, the private one otherwise) and latches `exhausted` when
    /// the budget is spent.
    fn charge_node(&mut self) -> bool {
        let spent = match self.shared_nodes {
            Some(counter) => counter.fetch_add(1, Ordering::Relaxed),
            None => self.stats.nodes,
        };
        if spent >= self.options.max_nodes {
            if !self.exhausted {
                if let Some(sink) = self.sink {
                    sink.on_budget_exhausted(self.options.max_nodes);
                }
            }
            self.exhausted = true;
            return false;
        }
        self.stats.nodes += 1;
        if let Some(sink) = self.sink {
            sink.on_node();
        }
        true
    }
}

/// The engine-side observer a domain's [`SearchDomain::expand`] reports
/// to: frontier widths, candidate attempts and cooperative-stop polls,
/// all forwarded to the shared stats and the configured
/// [`crate::obs::StatsSink`].
pub struct ExpandObs<'e, 'a> {
    ctl: &'e mut Ctl<'a>,
}

impl ExpandObs<'_, '_> {
    /// Reports the width of the node's candidate frontier (called once
    /// per expansion).
    pub fn on_frontier(&mut self, width: usize) {
        if let Some(sink) = self.ctl.sink {
            sink.on_frontier(width);
        }
    }

    /// Reports one candidate transition attempt against the spec.
    pub fn on_element_tried(&mut self) {
        self.ctl.stats.elements_tried += 1;
        if let Some(sink) = self.ctl.sink {
            sink.on_element_tried();
        }
    }

    /// Polls the deadline / cancellation state at the shared tick
    /// cadence. Once it returns `true` the domain should stop enumerating
    /// and return the successors collected so far — the engine winds the
    /// whole search down.
    pub fn should_stop(&mut self) -> bool {
        self.ctl.should_stop()
    }
}

impl fmt::Debug for ExpandObs<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExpandObs").finish_non_exhaustive()
    }
}

/// The full mutable state of one worker's DFS.
struct Cx<'a, D: SearchDomain> {
    ctl: Ctl<'a>,
    failed: MemoTable<'a, D::Node>,
}

/// [`SearchDomain::expand`] behind `catch_unwind`: a panicking spec
/// latches `panicked` and reads as a dead end. Successors are pushed
/// onto `out`; a panic truncates `out` back to its pre-call length so
/// the arena never carries half-built entries.
fn expand_guarded<D: SearchDomain>(
    domain: &D,
    cx: &mut Cx<'_, D>,
    node: &D::Node,
    out: &mut Vec<(D::Step, D::Node)>,
) -> bool {
    let len = out.len();
    let mut obs = ExpandObs { ctl: &mut cx.ctl };
    match catch_unwind(AssertUnwindSafe(|| domain.expand(node, &mut obs, out))) {
        Ok(()) => true,
        Err(payload) => {
            out.truncate(len);
            cx.ctl.panicked = Some(panic_message(payload));
            false
        }
    }
}

/// Probes the memo table for `node` (under the symmetry-canonical key
/// when enabled), counting the hit or miss. `true` means the node is a
/// known refuted state and the search must prune.
fn probe_memo<D: SearchDomain>(domain: &D, cx: &mut Cx<'_, D>, node: &D::Node) -> bool {
    let canon;
    let key: &D::Node = if cx.ctl.options.symmetry {
        match domain.canonical_key(node) {
            Some(c) => {
                canon = c;
                &canon
            }
            None => node,
        }
    } else {
        node
    };
    if cx.failed.contains(key) {
        cx.ctl.stats.memo_hits += 1;
        if let Some(sink) = cx.ctl.sink {
            sink.on_memo_hit(cx.failed.shard_of(key));
        }
        true
    } else {
        if let Some(sink) = cx.ctl.sink {
            sink.on_memo_miss(cx.failed.shard_of(key));
        }
        false
    }
}

/// Records `node` as refuted (under the symmetry-canonical key when
/// enabled).
fn insert_memo<D: SearchDomain>(domain: &D, cx: &mut Cx<'_, D>, node: &D::Node) {
    let key: D::Node = if cx.ctl.options.symmetry {
        domain.canonical_key(node).unwrap_or_else(|| node.clone())
    } else {
        node.clone()
    };
    if let Some(sink) = cx.ctl.sink {
        sink.on_memo_insert(cx.failed.shard_of(&key));
    }
    cx.failed.insert(key);
}

/// One unit of work-stealing work: a subtree root plus the witness
/// prefix (steps from the search root down to — and including — the
/// step that produced `node`).
struct Task<D: SearchDomain> {
    node: D::Node,
    prefix: Vec<D::Step>,
}

/// The stealing hooks a frontier worker threads into its tree search.
struct StealSupport<'s, D: SearchDomain> {
    /// Number of workers currently idle and hunting for work; polled
    /// (relaxed) once per expansion, donation only happens when > 0.
    hungry: &'s AtomicUsize,
    /// Tasks created but not yet completed, for termination detection.
    /// Incremented *before* a donated task is published.
    outstanding: &'s AtomicUsize,
    /// The donating worker's own deque; thieves steal from its other end.
    worker: &'s Worker<Task<D>>,
    /// The running task's witness prefix, cloned into donations.
    prefix: &'s [D::Step],
}

/// One frame of the iterative DFS: a node being expanded and the arena
/// range of its successors.
struct Frame {
    /// Arena index of the `(step, node)` entry this frame expands;
    /// `None` for the root frame (whose node the caller owns).
    node_idx: Option<usize>,
    /// Start of this frame's successor range in the arena.
    succ_start: usize,
    /// One past the end of the range (shrinks when children are donated).
    succ_end: usize,
    /// Next successor to try (absolute arena index).
    cursor: usize,
    /// A child of this frame was donated to a thief: the subtree was not
    /// fully explored *here*, so the frame's node must not be memoized
    /// as refuted, and neither may any ancestor.
    donated: bool,
}

/// Donates the shallowest spare subtree to an idle thief: the *last*
/// untried child of the shallowest frame with at least two remaining
/// (so the owner keeps local work), pushed onto the owner's own deque
/// where thieves steal FIFO. Returns `false` when nothing is spare.
fn try_donate<D: SearchDomain>(
    frames: &mut [Frame],
    succs: &[(D::Step, D::Node)],
    sc: &StealSupport<'_, D>,
) -> bool {
    let Some(fi) = frames.iter().position(|f| f.succ_end - f.cursor >= 2) else {
        return false;
    };
    let donated_idx = frames[fi].succ_end - 1;
    // Witness prefix of the donated subtree: the running task's prefix,
    // the steps taken down to frame `fi`'s node, then the donated step.
    let mut prefix: Vec<D::Step> = Vec::with_capacity(sc.prefix.len() + fi + 2);
    prefix.extend(sc.prefix.iter().cloned());
    prefix.extend(frames[..=fi].iter().filter_map(|f| f.node_idx).map(|i| succs[i].0.clone()));
    prefix.push(succs[donated_idx].0.clone());
    let node = succs[donated_idx].1.clone();
    frames[fi].succ_end = donated_idx;
    frames[fi].donated = true;
    // Publish only after the accounting increment: a thief may complete
    // the task immediately, and its decrement must never race the count
    // to zero while the task is in flight.
    sc.outstanding.fetch_add(1, Ordering::SeqCst);
    sc.worker.push(Task { node, prefix });
    true
}

/// What one worker's search produced.
struct RunResult<T> {
    witness: Option<Vec<T>>,
    stats: CheckStats,
    interrupted: Option<InterruptReason>,
    exhausted: bool,
    panicked: Option<String>,
}

/// The one backtracking search every checker shares, as an iterative
/// DFS over a per-worker successor arena.
///
/// Check order per visited node faithfully mirrors the old recursive
/// search: parent stop-poll → goal test → stop-poll → budget charge →
/// memo probe → expansion. In particular a spent budget skips expansion
/// but *not* sibling goal tests, and a frame is memo-inserted on pop
/// only when its subtree genuinely completed (no interrupt, no panic,
/// no exhaustion, no donated child).
///
/// Returns the witness steps *below* `root` on success.
fn run_tree<D: SearchDomain>(
    domain: &D,
    cx: &mut Cx<'_, D>,
    root: &D::Node,
    steal: Option<&StealSupport<'_, D>>,
) -> Option<Vec<D::Step>> {
    if domain.is_goal(root) {
        return Some(Vec::new());
    }
    if cx.ctl.should_stop() || !cx.ctl.charge_node() {
        return None;
    }
    if cx.ctl.options.memoize && probe_memo(domain, cx, root) {
        return None;
    }
    // The arena: every (step, node) on the current path's frontiers,
    // contiguous per frame. Backtracking truncates; nothing is freed
    // node-by-node.
    let mut succs: Vec<(D::Step, D::Node)> = Vec::new();
    // Scratch for one expansion, reused so domains never allocate a
    // fresh successor Vec; `Vec::append` moves its contents into the
    // arena and keeps the capacity.
    let mut scratch: Vec<(D::Step, D::Node)> = Vec::new();
    if !expand_guarded(domain, cx, root, &mut succs) {
        return None;
    }
    let mut frames: Vec<Frame> = vec![Frame {
        node_idx: None,
        succ_start: 0,
        succ_end: succs.len(),
        cursor: 0,
        donated: false,
    }];
    while !frames.is_empty() {
        let fi = frames.len() - 1;
        if frames[fi].cursor >= frames[fi].succ_end {
            // Frame exhausted: memo-insert if proven, pop, reclaim the
            // arena range.
            let Frame { node_idx, succ_start, donated, .. } = frames[fi];
            frames.pop();
            if cx.ctl.options.memoize
                && !donated
                && cx.ctl.interrupted.is_none()
                && cx.ctl.panicked.is_none()
                && !cx.ctl.exhausted
            {
                match node_idx {
                    Some(i) => {
                        let (_, ref node) = succs[i];
                        insert_memo(domain, cx, node);
                    }
                    None => insert_memo(domain, cx, root),
                }
            }
            if donated {
                if let Some(parent) = frames.last_mut() {
                    parent.donated = true;
                }
            }
            succs.truncate(succ_start);
            continue;
        }
        // Feed idle thieves before descending further.
        if let Some(sc) = steal {
            if sc.hungry.load(Ordering::Relaxed) > 0 {
                try_donate(&mut frames, &succs, sc);
            }
        }
        // The parent loop's stop poll.
        if cx.ctl.should_stop() {
            return None;
        }
        let fi = frames.len() - 1;
        let child = frames[fi].cursor;
        frames[fi].cursor += 1;
        // Visit the child, in the recursive call's exact order.
        if domain.is_goal(&succs[child].1) {
            let mut witness: Vec<D::Step> =
                frames.iter().filter_map(|f| f.node_idx).map(|i| succs[i].0.clone()).collect();
            witness.push(succs[child].0.clone());
            return Some(witness);
        }
        if cx.ctl.should_stop() {
            continue; // latched; the next parent poll unwinds
        }
        if !cx.ctl.charge_node() {
            continue; // budget spent: no expansion, but siblings still get goal tests
        }
        if cx.ctl.options.memoize && probe_memo(domain, cx, &succs[child].1) {
            continue;
        }
        if !expand_guarded(domain, cx, &succs[child].1, &mut scratch) {
            continue; // panicked; the next parent poll unwinds
        }
        let succ_start = succs.len();
        succs.append(&mut scratch);
        frames.push(Frame {
            node_idx: Some(child),
            succ_start,
            succ_end: succs.len(),
            cursor: succ_start,
            donated: false,
        });
    }
    None
}

/// Runs one DFS from `root` to completion (or interruption).
#[allow(clippy::too_many_arguments)]
fn run_root<'m, D: SearchDomain>(
    domain: &D,
    options: &CheckOptions,
    root: &D::Node,
    failed: MemoTable<'m, D::Node>,
    shared_nodes: Option<&'m AtomicU64>,
    stop: Option<&'m CancelToken>,
    start: Instant,
    steal: Option<&StealSupport<'_, D>>,
) -> RunResult<D::Step> {
    let mut cx: Cx<'_, D> = Cx { ctl: Ctl::new(options, shared_nodes, stop, start), failed };
    let witness = run_tree(domain, &mut cx, root, steal);
    RunResult {
        witness,
        stats: cx.ctl.stats,
        interrupted: cx.ctl.interrupted,
        exhausted: cx.ctl.exhausted,
        panicked: cx.ctl.panicked,
    }
}

/// [`SearchDomain::initial`] behind `catch_unwind`.
fn initial_guarded<D: SearchDomain>(domain: &D) -> Result<D::Node, CheckError> {
    catch_unwind(AssertUnwindSafe(|| domain.initial()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))
}

/// Runs the sequential search over `domain`, returning the witness as the
/// domain's step sequence.
///
/// # Errors
///
/// Returns [`CheckError::SpecPanicked`] if the domain's specification
/// panics during the search.
pub fn search<D: SearchDomain>(
    domain: &D,
    options: &CheckOptions,
) -> Result<CheckOutcome<Vec<D::Step>>, CheckError> {
    let root = initial_guarded(domain)?;
    let r = run_root(
        domain,
        options,
        &root,
        MemoTable::Local(HashSet::new()),
        None,
        None,
        Instant::now(),
        None,
    );
    finish_run(r)
}

/// Every distinct end state of an exhaustive exploration: the result of
/// [`enumerate_goals`].
#[derive(Debug, Clone)]
pub struct Enumeration<N> {
    /// The distinct goal nodes reached, in discovery order.
    pub goals: Vec<N>,
    /// `true` when the exploration ran to exhaustion: every node
    /// reachable from the root was visited, so `goals` is the *complete*
    /// set. `false` when the node budget, the deadline or a cancellation
    /// stopped it early — the caller must not treat `goals` as closed.
    pub complete: bool,
    /// Work accounting, in the same units as a [`search`] run.
    pub stats: CheckStats,
}

/// Exhaustively enumerates the distinct *goal* nodes reachable from the
/// domain's initial node.
///
/// Where [`search`] stops at the first witness, this keeps exploring and
/// collects every distinct goal node. It is the window-retirement hook the
/// streaming checker ([`crate::stream`]) builds on: the goal nodes of a
/// decided window prefix carry every specification state the prefix can
/// end in, after which the prefix's actions — and every memoized search
/// node referring to them — can be garbage-collected. (Failed-node memo
/// entries must *not* survive a retirement boundary: a node refuted
/// against one window can become satisfiable once new events extend it,
/// which is why the streaming checker runs each per-checkpoint search with
/// a fresh memo and uses this enumeration, whose visited set lives and
/// dies with the call, at the boundary itself.)
///
/// The full visited set doubles as the memo table here (completeness
/// requires one), so [`CheckOptions::memoize`] is ignored; revisits are
/// counted as `memo_hits`. Budget, deadline and cancellation are honoured
/// exactly as in [`search`]; when any of them fires, the partial result is
/// returned with `complete = false`.
///
/// # Errors
///
/// Returns [`CheckError::SpecPanicked`] if the domain's specification
/// panics during the enumeration.
pub fn enumerate_goals<D: SearchDomain>(
    domain: &D,
    options: &CheckOptions,
) -> Result<Enumeration<D::Node>, CheckError> {
    let root = initial_guarded(domain)?;
    let mut ctl = Ctl::new(options, None, None, Instant::now());
    let mut visited: HashSet<D::Node> = HashSet::new();
    let mut goals: Vec<D::Node> = Vec::new();
    let mut stack: Vec<D::Node> = vec![root];
    while let Some(node) = stack.pop() {
        if !visited.insert(node.clone()) {
            ctl.stats.memo_hits += 1;
            continue;
        }
        if ctl.should_stop() {
            break;
        }
        if !ctl.charge_node() {
            break;
        }
        if domain.is_goal(&node) {
            goals.push(node.clone());
        }
        let mut succs = Vec::new();
        {
            let mut obs = ExpandObs { ctl: &mut ctl };
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| domain.expand(&node, &mut obs, &mut succs)))
            {
                ctl.panicked = Some(panic_message(payload));
                break;
            }
        }
        for (_, next) in succs {
            if !visited.contains(&next) {
                stack.push(next);
            }
        }
    }
    if let Some(msg) = ctl.panicked {
        return Err(CheckError::SpecPanicked(msg));
    }
    let complete = ctl.interrupted.is_none() && !ctl.exhausted && stack.is_empty();
    Ok(Enumeration { goals, complete, stats: ctl.stats })
}

/// Converts one completed [`RunResult`] into a [`CheckOutcome`].
fn finish_run<T>(r: RunResult<T>) -> Result<CheckOutcome<Vec<T>>, CheckError> {
    if let Some(msg) = r.panicked {
        return Err(CheckError::SpecPanicked(msg));
    }
    let verdict = if let Some(witness) = r.witness {
        Verdict::Cal(witness)
    } else if let Some(reason) = r.interrupted {
        Verdict::Interrupted { reason }
    } else if r.exhausted {
        Verdict::ResourcesExhausted
    } else {
        Verdict::NotCal
    };
    Ok(CheckOutcome { verdict, stats: r.stats })
}

/// Per-worker aggregation of a frontier or decomposed run.
#[derive(Default)]
struct Tally {
    stats: CheckStats,
    deadline: bool,
    user_cancelled: bool,
    exhausted: bool,
}

impl Tally {
    /// Folds one finished sub-search into the tally, classifying its
    /// interrupt (an internal stop is *not* a user cancellation).
    fn absorb<T>(&mut self, r: &RunResult<T>, options: &CheckOptions) {
        self.stats += r.stats;
        match r.interrupted {
            Some(InterruptReason::DeadlineExceeded) => self.deadline = true,
            Some(InterruptReason::Cancelled)
                if options.cancel.as_ref().is_some_and(CancelToken::is_cancelled) =>
            {
                self.user_cancelled = true;
            }
            _ => {}
        }
        self.exhausted |= r.exhausted;
    }
}

/// Runs the parallel search over `domain`: per-object decomposition when
/// [`SearchDomain::decompose`] offers at least two parts, root-frontier
/// splitting with a shared [`ShardedMemo`] otherwise.
/// [`CheckOptions::threads`] sets the worker count; `max_nodes` bounds
/// the *total* nodes across workers.
///
/// # Errors
///
/// Returns [`CheckError::SpecPanicked`] if the domain's specification
/// panics during the search.
pub fn search_par<D>(
    domain: &D,
    options: &CheckOptions,
) -> Result<CheckOutcome<Vec<D::Step>>, CheckError>
where
    D: SearchDomain + Sync,
    D::Node: Send + Sync,
    D::Step: Send + Sync,
{
    let parts = catch_unwind(AssertUnwindSafe(|| domain.decompose()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    match parts {
        Some(parts) if parts.len() >= 2 => search_decomposed(domain, parts, options),
        _ => frontier_search(domain, options),
    }
}

/// Whole-problem search with the root frontier split across workers.
///
/// Root branches seed a shared [`Injector`]; each worker owns a
/// work-stealing deque ([`Worker`]/[`Stealer`]) into which its running
/// search donates untried subtrees whenever another worker goes idle
/// (`hungry > 0`). Idle workers drain their own deque first (LIFO,
/// depth-first locality), then the injector, then steal FIFO — the
/// shallowest, largest subtrees — from peers. Termination is detected
/// with an `outstanding` task counter; with
/// [`CheckOptions::stealing`] off, no donations happen and workers
/// simply drain the injector, reproducing the old static split.
fn frontier_search<D>(
    domain: &D,
    options: &CheckOptions,
) -> Result<CheckOutcome<Vec<D::Step>>, CheckError>
where
    D: SearchDomain + Sync,
    D::Node: Send + Sync,
    D::Step: Send + Sync,
{
    let start = Instant::now();
    let root = initial_guarded(domain)?;
    if domain.is_goal(&root) {
        return Ok(CheckOutcome { verdict: Verdict::Cal(Vec::new()), stats: CheckStats::default() });
    }
    let sink = options.sink.as_deref();
    if options.max_nodes == 0 {
        if let Some(sink) = sink {
            sink.on_budget_exhausted(0);
        }
        return Ok(CheckOutcome {
            verdict: Verdict::ResourcesExhausted,
            stats: CheckStats::default(),
        });
    }
    // The root expansion is one node, mirroring the sequential search.
    let mut root_ctl = Ctl::new(options, None, None, start);
    root_ctl.stats.nodes = 1;
    if let Some(sink) = sink {
        sink.on_node();
    }
    let mut branches: Vec<(D::Step, D::Node)> = Vec::new();
    {
        let mut obs = ExpandObs { ctl: &mut root_ctl };
        catch_unwind(AssertUnwindSafe(|| domain.expand(&root, &mut obs, &mut branches)))
            .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    }
    let root_stats = root_ctl.stats;
    if let Some(reason) = root_ctl.interrupted {
        return Ok(CheckOutcome { verdict: Verdict::Interrupted { reason }, stats: root_stats });
    }
    if branches.is_empty() {
        return Ok(CheckOutcome { verdict: Verdict::NotCal, stats: root_stats });
    }

    // With stealing, every requested worker is useful even when the root
    // frontier is narrower than the thread count: idle workers steal
    // donated subtrees. Without it, extra workers would only spin.
    let stealing = options.stealing && options.threads > 1;
    let workers = if stealing {
        options.threads
    } else {
        options.threads.max(1).min(branches.len())
    };
    if let Some(sink) = sink {
        sink.on_root_frontier(branches.len(), workers);
    }
    let memo: FpMemo<D::Node> = FpMemo::new();
    let nodes = AtomicU64::new(root_stats.nodes);
    let stop = CancelToken::new();
    let injector: Injector<Task<D>> = Injector::new();
    let outstanding = AtomicUsize::new(branches.len());
    for (step, node) in branches {
        injector.push(Task { node, prefix: vec![step] });
    }
    let hungry = AtomicUsize::new(0);
    let deques: Vec<Worker<Task<D>>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Task<D>>> = deques.iter().map(Worker::stealer).collect();
    let witness: Mutex<Option<Vec<D::Step>>> = Mutex::new(None);
    let panicked: Mutex<Option<String>> = Mutex::new(None);

    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = deques
            .into_iter()
            .enumerate()
            .map(|(wi, my)| {
                let stealers = &stealers;
                let injector = &injector;
                let outstanding = &outstanding;
                let hungry = &hungry;
                let stop = &stop;
                let witness = &witness;
                let panicked = &panicked;
                let memo = &memo;
                let nodes = &nodes;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    loop {
                        if stop.is_cancelled() {
                            break;
                        }
                        // Own donations first (deepest, warm caches),
                        // then fresh root branches, then theft.
                        let mut stolen = false;
                        let task =
                            my.pop().or_else(|| injector.steal().success()).or_else(|| {
                                for (si, s) in stealers.iter().enumerate() {
                                    if si == wi {
                                        continue;
                                    }
                                    if let Steal::Success(t) = s.steal() {
                                        stolen = true;
                                        return Some(t);
                                    }
                                }
                                None
                            });
                        let Some(task) = task else {
                            if outstanding.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            hungry.fetch_add(1, Ordering::SeqCst);
                            std::thread::yield_now();
                            hungry.fetch_sub(1, Ordering::SeqCst);
                            continue;
                        };
                        if stolen {
                            tally.stats.steals += 1;
                            if let Some(sink) = sink {
                                sink.on_steal();
                            }
                        }
                        let support = StealSupport {
                            hungry,
                            outstanding,
                            worker: &my,
                            prefix: &task.prefix,
                        };
                        let mut r = run_root(
                            domain,
                            options,
                            &task.node,
                            MemoTable::Shared(memo),
                            Some(nodes),
                            Some(stop),
                            start,
                            stealing.then_some(&support),
                        );
                        outstanding.fetch_sub(1, Ordering::SeqCst);
                        if let Some(msg) = r.panicked.take() {
                            tally.stats += r.stats;
                            let mut slot = panicked.lock();
                            if slot.is_none() {
                                *slot = Some(msg);
                            }
                            stop.cancel();
                            break;
                        }
                        if let Some(tail) = r.witness.take() {
                            tally.stats += r.stats;
                            let mut full = task.prefix;
                            full.extend(tail);
                            let mut slot = witness.lock();
                            if slot.is_none() {
                                *slot = Some(full);
                            }
                            stop.cancel();
                            break;
                        }
                        tally.absorb(&r, options);
                        if r.interrupted.is_some() || r.exhausted {
                            break;
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("checker worker panicked")).collect()
    });

    if let Some(msg) = panicked.into_inner() {
        return Err(CheckError::SpecPanicked(msg));
    }
    let mut stats = root_stats;
    let mut deadline = false;
    let mut user_cancelled = false;
    let mut exhausted = false;
    for tally in tallies {
        stats += tally.stats;
        deadline |= tally.deadline;
        user_cancelled |= tally.user_cancelled;
        exhausted |= tally.exhausted;
    }
    let verdict = if let Some(w) = witness.into_inner() {
        Verdict::Cal(w)
    } else if deadline {
        Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
    } else if user_cancelled {
        Verdict::Interrupted { reason: InterruptReason::Cancelled }
    } else if exhausted {
        Verdict::ResourcesExhausted
    } else {
        Verdict::NotCal
    };
    Ok(CheckOutcome { verdict, stats })
}

/// One per-object subsearch's result under decomposition.
struct SubResult<T> {
    object: ObjectId,
    witness: Option<Vec<T>>,
    /// `true` when the subsearch completed and refuted the subproblem.
    not_cal: bool,
    tally: Tally,
    panicked: Option<String>,
}

/// Classifies a finished subsearch for
/// [`crate::obs::StatsSink::on_object_done`].
fn classify_subresult<T>(result: &SubResult<T>) -> crate::obs::ObjectOutcome {
    use crate::obs::ObjectOutcome;
    if result.panicked.is_some() {
        ObjectOutcome::SpecPanicked
    } else if result.witness.is_some() {
        ObjectOutcome::Cal
    } else if result.not_cal {
        ObjectOutcome::NotCal
    } else if result.tally.exhausted {
        ObjectOutcome::Exhausted
    } else {
        ObjectOutcome::Interrupted
    }
}

/// Checks each decomposed part independently (locality), in parallel, and
/// merges per-object witnesses via [`SearchDomain::merge_witnesses`].
fn search_decomposed<D>(
    parent: &D,
    parts: Vec<(ObjectId, D)>,
    options: &CheckOptions,
) -> Result<CheckOutcome<Vec<D::Step>>, CheckError>
where
    D: SearchDomain + Sync,
    D::Node: Send + Sync,
    D::Step: Send + Sync,
{
    let start = Instant::now();
    let part_count = parts.len();
    let workers = options.threads.max(1).min(part_count);
    let sink = options.sink.as_deref();
    let nodes = AtomicU64::new(0);
    let stop = CancelToken::new();
    let next = AtomicUsize::new(0);

    let results: Vec<SubResult<D::Step>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<SubResult<D::Step>> = Vec::new();
                    loop {
                        if stop.is_cancelled() {
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some((object, sub)) = parts.get(idx) else { break };
                        if let Some(sink) = sink {
                            sink.on_object_start(*object);
                        }
                        let sub_start = Instant::now();
                        let result = check_part(*object, sub, options, &nodes, &stop, start);
                        if let Some(sink) = sink {
                            sink.on_object_done(
                                *object,
                                sub_start.elapsed(),
                                classify_subresult(&result),
                            );
                        }
                        let decisive_negative = result.not_cal
                            || result.panicked.is_some()
                            || result.tally.exhausted
                            || result.tally.deadline
                            || result.tally.user_cancelled;
                        mine.push(result);
                        if decisive_negative {
                            // Siblings cannot change the aggregate verdict;
                            // wind everyone down.
                            stop.cancel();
                            break;
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("checker worker panicked"))
            .collect()
    });

    let mut stats = CheckStats::default();
    let mut deadline = false;
    let mut user_cancelled = false;
    let mut exhausted = false;
    let mut not_cal = false;
    let mut witnesses: Vec<(ObjectId, Vec<D::Step>)> = Vec::new();
    for result in results {
        stats += result.tally.stats;
        if let Some(msg) = result.panicked {
            return Err(CheckError::SpecPanicked(msg));
        }
        deadline |= result.tally.deadline;
        user_cancelled |= result.tally.user_cancelled;
        exhausted |= result.tally.exhausted;
        not_cal |= result.not_cal;
        if let Some(steps) = result.witness {
            witnesses.push((result.object, steps));
        }
    }
    // A refuted subproblem is decisive regardless of interrupts elsewhere:
    // membership implies per-object membership (locality).
    let verdict = if not_cal {
        Verdict::NotCal
    } else if deadline {
        Verdict::Interrupted { reason: InterruptReason::DeadlineExceeded }
    } else if user_cancelled {
        Verdict::Interrupted { reason: InterruptReason::Cancelled }
    } else if exhausted {
        Verdict::ResourcesExhausted
    } else {
        debug_assert_eq!(witnesses.len(), part_count, "every subcheck must have decided");
        Verdict::Cal(parent.merge_witnesses(witnesses))
    };
    Ok(CheckOutcome { verdict, stats })
}

/// Runs one decomposed part's DFS, charging the shared node budget and
/// observing the shared stop latch.
fn check_part<D: SearchDomain>(
    object: ObjectId,
    sub: &D,
    options: &CheckOptions,
    nodes: &AtomicU64,
    stop: &CancelToken,
    start: Instant,
) -> SubResult<D::Step> {
    let root = match catch_unwind(AssertUnwindSafe(|| sub.initial())) {
        Ok(n) => n,
        Err(p) => {
            return SubResult {
                object,
                witness: None,
                not_cal: false,
                tally: Tally::default(),
                panicked: Some(panic_message(p)),
            }
        }
    };
    let mut r = run_root(
        sub,
        options,
        &root,
        MemoTable::Local(HashSet::new()),
        Some(nodes),
        Some(stop),
        start,
        None,
    );
    let mut tally = Tally::default();
    let panicked = r.panicked.take();
    let witness = r.witness.take();
    tally.absorb(&r, options);
    let not_cal = panicked.is_none()
        && witness.is_none()
        && r.interrupted.is_none()
        && !r.exhausted;
    SubResult { object, witness, not_cal, tally, panicked }
}

/// A reference to a domain's specification: borrowed at the top level,
/// owned by decomposed subdomains (restriction yields an owned spec).
pub(crate) enum SpecRef<'a, S> {
    /// The caller's specification, borrowed.
    Borrowed(&'a S),
    /// A restricted per-object specification, owned by the subdomain.
    Owned(S),
}

impl<S> SpecRef<'_, S> {
    pub(crate) fn get(&self) -> &S {
        match self {
            SpecRef::Borrowed(s) => s,
            SpecRef::Owned(s) => s,
        }
    }
}

/// Greedily interleaves per-object witness queues into one sequence
/// respecting the full history's real-time order.
///
/// Each queue entry is `(step, maxinv, minresp)`: `maxinv` is the largest
/// invocation index among the step's operations in the *full* history and
/// `minresp` the smallest response index (`usize::MAX` for operations the
/// checker completed). `F` must precede `E` in any agreeing witness iff
/// `minresp(F) < maxinv(E)`. With `m` the minimum `minresp` over all
/// remaining steps, any queue head with `maxinv ≤ m` can be emitted next
/// — the queue holding the minimizing step always has one, because
/// per-object witness order already respects the per-object real-time
/// order.
pub(crate) fn merge_by_order<T>(mut queues: Vec<VecDeque<(T, usize, usize)>>) -> Vec<T> {
    let mut merged = Vec::new();
    loop {
        let m = queues.iter().flat_map(|q| q.iter().map(|item| item.2)).min();
        let Some(m) = m else { break };
        let q = queues
            .iter()
            .position(|q| q.front().is_some_and(|head| head.1 <= m))
            .expect("per-object witnesses always have an emittable head");
        let head = queues[q].pop_front().expect("chosen queue has a head");
        merged.push(head.0);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy domain: count down from `n` to 0 by steps of 1 or 2; goal is
    /// 0. Witness steps record the decrement taken.
    struct Countdown {
        n: u32,
        /// Reject every transition (forces exhaustive refutation).
        dead_end: bool,
    }

    impl SearchDomain for Countdown {
        type Node = u32;
        type Step = u32;

        fn initial(&self) -> u32 {
            self.n
        }

        fn is_goal(&self, node: &u32) -> bool {
            *node == 0
        }

        fn expand(&self, node: &u32, obs: &mut ExpandObs<'_, '_>, out: &mut Vec<(u32, u32)>) {
            obs.on_frontier(2);
            for d in [1u32, 2] {
                if obs.should_stop() {
                    break;
                }
                obs.on_element_tried();
                if !self.dead_end && d <= *node {
                    out.push((d, *node - d));
                }
            }
        }
    }

    #[test]
    fn sequential_search_finds_a_witness() {
        let outcome =
            search(&Countdown { n: 5, dead_end: false }, &CheckOptions::default()).unwrap();
        let witness = outcome.verdict.witness().expect("witness").clone();
        assert_eq!(witness.iter().sum::<u32>(), 5);
        assert!(outcome.stats.nodes > 0);
        assert!(outcome.stats.elements_tried > 0);
    }

    #[test]
    fn dead_end_domain_is_refuted() {
        let outcome =
            search(&Countdown { n: 3, dead_end: true }, &CheckOptions::default()).unwrap();
        assert_eq!(outcome.verdict, Verdict::NotCal);
    }

    #[test]
    fn zero_budget_is_exhaustion() {
        let options = CheckOptions { max_nodes: 0, ..CheckOptions::default() };
        let outcome = search(&Countdown { n: 3, dead_end: false }, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn parallel_frontier_matches_sequential() {
        for threads in [1, 2, 8] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = search_par(&Countdown { n: 6, dead_end: false }, &options).unwrap();
            let witness = outcome.verdict.witness().expect("witness");
            assert_eq!(witness.iter().sum::<u32>(), 6, "threads={threads}");
        }
    }

    /// A branching tree with no goal anywhere: every node below the root
    /// has `width` children down to `depth`, all states distinct, so a
    /// refutation must visit the whole tree. Exercises the donated-flag
    /// memo suppression and termination counting under stealing.
    ///
    /// `stall_ms > 0` sleeps that long in every expansion of a node at
    /// depth < 3. This is how the steal test stays deterministic on a
    /// single-core host: a sleeping worker yields the core, so thief
    /// threads are guaranteed to run (and raise the hungry flag) while
    /// the donor still has untried subtrees to give away. Without it, a
    /// release-mode worker can exhaust the whole tree inside its first
    /// scheduler quantum, before any other thread exists to steal.
    struct DeadTree {
        width: u32,
        depth: u32,
        stall_ms: u64,
    }

    impl SearchDomain for DeadTree {
        type Node = (u32, u64);
        type Step = u32;

        fn initial(&self) -> (u32, u64) {
            (0, 0)
        }

        fn is_goal(&self, _: &(u32, u64)) -> bool {
            false
        }

        fn expand(
            &self,
            node: &(u32, u64),
            obs: &mut ExpandObs<'_, '_>,
            out: &mut Vec<(u32, (u32, u64))>,
        ) {
            if node.0 >= self.depth {
                return;
            }
            if self.stall_ms > 0 && node.0 < 3 {
                std::thread::sleep(std::time::Duration::from_millis(self.stall_ms));
            }
            obs.on_frontier(self.width as usize);
            for i in 0..self.width {
                obs.on_element_tried();
                out.push((i, (node.0 + 1, node.1 * u64::from(self.width) + u64::from(i) + 1)));
            }
        }
    }

    #[test]
    fn stealing_off_matches_stealing_on() {
        for n in [4u32, 9, 13] {
            for threads in [2, 4] {
                let on = CheckOptions { threads, ..CheckOptions::default() };
                let off = CheckOptions { threads, stealing: false, ..CheckOptions::default() };
                let a = search_par(&Countdown { n, dead_end: false }, &on).unwrap();
                let b = search_par(&Countdown { n, dead_end: false }, &off).unwrap();
                let wa = a.verdict.witness().expect("witness with stealing");
                let wb = b.verdict.witness().expect("witness without stealing");
                assert_eq!(wa.iter().sum::<u32>(), n, "threads={threads}");
                assert_eq!(wb.iter().sum::<u32>(), n, "threads={threads}");
            }
        }
    }

    #[test]
    fn refutation_under_stealing_matches_sequential() {
        let tree = DeadTree { width: 3, depth: 6, stall_ms: 0 };
        let seq = search(&tree, &CheckOptions::default()).unwrap();
        assert_eq!(seq.verdict, Verdict::NotCal);
        for threads in [2, 4, 8] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = search_par(&tree, &options).unwrap();
            assert_eq!(outcome.verdict, Verdict::NotCal, "threads={threads}");
            // Distinct states everywhere: stealing must neither lose nor
            // double-count subtrees, so the node total is exact.
            assert_eq!(outcome.stats.nodes, seq.stats.nodes, "threads={threads}");
        }
    }

    #[test]
    fn steals_are_counted_when_workers_outnumber_branches() {
        // Three root branches, eight workers: at least five workers can
        // only ever obtain work by stealing donated subtrees. The stall
        // makes donors yield the core during shallow expansions, so the
        // thieves run, raise the hungry flag, and steal — even on one
        // core in release mode.
        let options = CheckOptions { threads: 8, memoize: false, ..CheckOptions::default() };
        let outcome =
            search_par(&DeadTree { width: 3, depth: 6, stall_ms: 2 }, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::NotCal);
        assert!(
            outcome.stats.steals > 0,
            "expected at least one steal, stats: {:?}",
            outcome.stats
        );
    }

    #[test]
    fn cancelled_token_interrupts() {
        let token = CancelToken::new();
        token.cancel();
        let options = CheckOptions {
            cancel: Some(token),
            memoize: false,
            ..CheckOptions::default()
        };
        // Large enough that the tick poll fires before the search ends.
        let outcome = search(&Countdown { n: 4_000, dead_end: false }, &options).unwrap();
        assert_eq!(outcome.verdict, Verdict::Interrupted { reason: InterruptReason::Cancelled });
    }

    #[test]
    fn panicking_domain_is_an_error() {
        struct Panicky;
        impl SearchDomain for Panicky {
            type Node = u32;
            type Step = u32;
            fn initial(&self) -> u32 {
                1
            }
            fn is_goal(&self, node: &u32) -> bool {
                *node == 0
            }
            fn expand(&self, _: &u32, _: &mut ExpandObs<'_, '_>, _: &mut Vec<(u32, u32)>) {
                panic!("domain bug")
            }
        }
        match search(&Panicky, &CheckOptions::default()) {
            Err(CheckError::SpecPanicked(msg)) => assert!(msg.contains("domain bug")),
            other => panic!("expected SpecPanicked, got {other:?}"),
        }
    }

    #[test]
    fn merge_by_order_respects_precedence() {
        // Queue A's step responds before queue B's step is invoked.
        let queues = vec![
            VecDeque::from([("a", 0, 1)]),
            VecDeque::from([("b", 2, 3)]),
        ];
        assert_eq!(merge_by_order(queues), vec!["a", "b"]);
    }
}
