//! A small fixed-capacity bitset used to memoize checker search states.

use std::fmt;

/// A compact set of indices `0..capacity`, hashable so it can key a memo
/// table in the CAL and linearizability checkers.
///
/// # Examples
///
/// ```
/// use cal_core::bitset::BitSet;
/// let mut s = BitSet::new(10);
/// s.insert(3);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of capacity {}", self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity, "index {i} out of capacity {}", self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&i| self.contains(i))
    }
}

impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                f.write_str(",")?;
            }
            write!(f, "{i}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(10);
        s.insert(7);
        s.insert(2);
        s.insert(9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    fn display() {
        let mut s = BitSet::new(8);
        s.insert(1);
        s.insert(5);
        assert_eq!(s.to_string(), "{1,5}");
    }

    #[test]
    fn equality_and_hash_by_contents() {
        use std::collections::HashSet;
        let mut a = BitSet::new(8);
        a.insert(3);
        let mut b = BitSet::new(8);
        b.insert(3);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
