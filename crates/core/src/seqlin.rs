//! Classical linearizability checking (Herlihy & Wing), as the baseline the
//! paper generalizes.
//!
//! [`check_linearizable`] implements the Wing–Gong search with Lowe-style
//! memoization of failed `(matched-set, spec-state)` pairs: repeatedly pick
//! a `≺H`-minimal operation, apply it to the sequential specification, and
//! backtrack on failure. Pending invocations may be completed with
//! spec-proposed return values or dropped, exactly as in the CAL checker —
//! linearizability is the singleton-element special case of CAL, and the
//! test-suite cross-validates the two implementations against each other.
//!
//! Like the CAL checker, this module is a thin domain over the shared
//! search kernel ([`crate::engine`]): `SeqDomain` enumerates candidate
//! minimal operations, and node budgets, deadlines, cancellation,
//! memoization, [`crate::obs::StatsSink`] observability and the parallel
//! drivers ([`check_linearizable_par_with`]) are inherited from the engine
//! rather than re-implemented.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};

use crate::bitset::BitSet;
use crate::engine::{self, ExpandObs, SearchDomain, SpecRef};
use crate::history::{HbRelation, History, HistoryError, PartialHistory, Span};
use crate::ids::ObjectId;
use crate::op::Operation;
use crate::spec::{Invocation, SeqSpec};
use crate::symmetry::SymClasses;
use crate::trace::{CaElement, CaTrace};

pub use crate::engine::{CheckError, CheckOptions, CheckOutcome, Verdict};

/// Decides whether `history` is linearizable with respect to the sequential
/// specification `spec`, with default options.
///
/// On success the verdict carries the linearization as a [`CaTrace`] of
/// singleton elements (a sequential history in trace form).
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
///
/// # Examples
///
/// ```
/// # use cal_core::{seqlin, Action, History, Method, ObjectId, Operation, ThreadId, Value};
/// # use cal_core::spec::{Invocation, SeqSpec};
/// #[derive(Debug)]
/// struct AnyOp;
/// impl SeqSpec for AnyOp {
///     type State = ();
///     fn initial(&self) {}
///     fn apply(&self, _: &(), _: &Operation) -> Option<()> { Some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let o = ObjectId(0);
/// let m = Method("noop");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(0), o, m, Value::Unit),
///     Action::response(ThreadId(0), o, m, Value::Unit),
/// ]);
/// assert!(seqlin::check_linearizable(&h, &AnyOp)?.verdict.is_cal());
/// # Ok::<(), cal_core::check::CheckError>(())
/// ```
pub fn check_linearizable<S: SeqSpec>(
    history: &History,
    spec: &S,
) -> Result<CheckOutcome, CheckError> {
    check_linearizable_with(history, spec, &CheckOptions::default())
}

/// Like [`check_linearizable`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_linearizable_with<S: SeqSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    let domain = SeqDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search(&domain, options)?.map_witness(steps_to_trace))
}

/// Parallel linearizability check using [`CheckOptions::parallel`]; see
/// [`check_linearizable_par_with`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_linearizable_par<S>(history: &History, spec: &S) -> Result<CheckOutcome, CheckError>
where
    S: SeqSpec + Sync,
    S::State: Send + Sync,
{
    check_linearizable_par_with(history, spec, &CheckOptions::parallel())
}

/// Like [`check_linearizable_with`], but run on the engine's parallel
/// driver ([`engine::search_par`]): per-object decomposition when
/// [`SeqSpec::restrict`] covers every object in the history, root-frontier
/// splitting with a shared [`crate::par::ShardedMemo`] otherwise.
/// Inherited from the shared kernel — the same driver the CAL checker
/// uses, with identical verdict and interrupt semantics.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed
/// and [`CheckError::SpecPanicked`] if the specification panics.
pub fn check_linearizable_par_with<S>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError>
where
    S: SeqSpec + Sync,
    S::State: Send + Sync,
{
    let domain = SeqDomain::new(Cow::Borrowed(history), SpecRef::Borrowed(spec))?;
    Ok(engine::search_par(&domain, options)?.map_witness(steps_to_trace))
}

/// Assembles the engine's step sequence into a singleton-element trace.
fn steps_to_trace(steps: Vec<SeqStep>) -> CaTrace {
    CaTrace::from_elements(steps.into_iter().map(|s| CaElement::singleton(s.op)).collect())
}

/// Convenience predicate: `Ok(true)` iff the history is linearizable
/// w.r.t. `spec`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the default node budget runs out before
/// the search decides.
pub fn is_linearizable<S: SeqSpec>(history: &History, spec: &S) -> Result<bool, CheckError> {
    let outcome = check_linearizable(history, spec)?;
    match outcome.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        undecided => Err(CheckError::Undecided(undecided)),
    }
}

/// One step of a linearization: the chosen operation plus the span index
/// it matched (used to interleave per-object witnesses under
/// decomposition).
#[derive(Debug, Clone)]
struct SeqStep {
    op: Operation,
    span: usize,
}

/// The Wing–Gong search as a [`SearchDomain`]: nodes are `(matched-set,
/// spec-state)` pairs (also the memo key) and steps extract one
/// `≺H`-minimal operation, completing pending invocations with
/// spec-proposed return values.
struct SeqDomain<'a, S: SeqSpec> {
    spec: SpecRef<'a, S>,
    history: Cow<'a, History>,
    spans: Vec<Span>,
    /// The order the search runs over: always the real-time instance of
    /// [`PartialHistory`] here — classical linearizability is defined
    /// against `≺H` (causal relaxations go through `crate::causal`).
    hb: HbRelation,
    /// Interchangeability classes for symmetry-reduced memo keys.
    sym: SymClasses,
}

impl<'a, S: SeqSpec> SeqDomain<'a, S> {
    fn new(history: Cow<'a, History>, spec: SpecRef<'a, S>) -> Result<Self, HistoryError> {
        let spans = history.try_spans()?;
        let hb = HbRelation::real_time(&spans);
        let sym = SymClasses::of_order(&spans, &hb);
        Ok(SeqDomain { spec, history, spans, hb, sym })
    }
}

impl<S: SeqSpec> SearchDomain for SeqDomain<'_, S> {
    type Node = (BitSet, S::State);
    type Step = SeqStep;

    fn initial(&self) -> Self::Node {
        (BitSet::new(self.spans.len().max(1)), self.spec.get().initial())
    }

    fn is_goal(&self, node: &Self::Node) -> bool {
        let (matched, _) = node;
        (0..self.spans.len()).all(|i| matched.contains(i) || !self.spans[i].is_complete())
    }

    fn expand(
        &self,
        node: &Self::Node,
        obs: &mut ExpandObs<'_, '_>,
        out: &mut Vec<(Self::Step, Self::Node)>,
    ) {
        let (matched, state) = node;
        let minimal: Vec<usize> = (0..self.spans.len())
            .filter(|&i| {
                !matched.contains(i) && self.hb.preds(i).iter().all(|&j| matched.contains(j))
            })
            .collect();
        obs.on_frontier(minimal.len());
        for &i in &minimal {
            let span = &self.spans[i];
            let candidates: Vec<Operation> = match span.operation() {
                Some(op) => vec![op],
                None => {
                    let inv = Invocation::new(span.thread, span.object, span.method, span.arg);
                    self.spec
                        .get()
                        .completions_of(&inv)
                        .into_iter()
                        .map(|ret| span.operation_with_ret(ret))
                        .collect()
                }
            };
            for op in candidates {
                if obs.should_stop() {
                    return;
                }
                obs.on_element_tried();
                if let Some(next) = self.spec.get().apply(state, &op) {
                    let mut next_matched = matched.clone();
                    next_matched.insert(i);
                    out.push((SeqStep { op, span: i }, (next_matched, next)));
                }
            }
        }
    }

    fn canonical_key(&self, node: &Self::Node) -> Option<Self::Node> {
        if self.sym.is_trivial() {
            return None;
        }
        self.sym.canonical_bits(&node.0).map(|bits| (bits, node.1.clone()))
    }

    fn decompose(&self) -> Option<Vec<(ObjectId, Self)>> {
        let objects = self.history.objects();
        if objects.len() < 2 {
            return None;
        }
        let parts: Option<Vec<(ObjectId, S)>> =
            objects.iter().map(|&o| self.spec.get().restrict(o).map(|s| (o, s))).collect();
        Some(
            parts?
                .into_iter()
                .map(|(o, s)| {
                    let sub = SeqDomain::new(
                        Cow::Owned(self.history.project_object(o)),
                        SpecRef::Owned(s),
                    )
                    .expect("projection of a well-formed history is well-formed");
                    (o, sub)
                })
                .collect(),
        )
    }

    /// Interleaves per-object linearizations respecting the full history's
    /// real-time order; singleton elements make `maxinv`/`minresp` just the
    /// matched span's own invocation and response indices.
    fn merge_witnesses(&self, parts: Vec<(ObjectId, Vec<SeqStep>)>) -> Vec<SeqStep> {
        let mut by_object: HashMap<ObjectId, Vec<&Span>> = HashMap::new();
        for span in &self.spans {
            by_object.entry(span.object).or_default().push(span);
        }
        let queues: Vec<VecDeque<(SeqStep, usize, usize)>> = parts
            .into_iter()
            .map(|(object, steps)| {
                let object_spans = by_object.get(&object).map(Vec::as_slice).unwrap_or(&[]);
                steps
                    .into_iter()
                    .map(|step| {
                        let span = object_spans[step.span];
                        (step, span.inv, span.resp.unwrap_or(usize::MAX))
                    })
                    .collect()
            })
            .collect();
        engine::merge_by_order(queues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::spec::SeqAsCa;

    const R: ObjectId = ObjectId(0);
    const WRITE: Method = Method("write");
    const READ: Method = Method("read");

    /// A sequential register: `read` returns the last written value
    /// (initially 0).
    #[derive(Debug, Clone)]
    struct Register;

    impl SeqSpec for Register {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
            match op.method {
                WRITE => {
                    if op.ret != Value::Unit {
                        return None;
                    }
                    op.arg.as_int()
                }
                READ => (op.ret == Value::Int(*state)).then_some(*state),
                _ => None,
            }
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            match inv.method {
                WRITE => vec![Value::Unit],
                READ => (0..8).map(Value::Int).collect(),
                _ => vec![],
            }
        }

        fn restrict(&self, _: ObjectId) -> Option<Self> {
            Some(self.clone())
        }
    }

    fn w(t: u32, v: i64) -> [Action; 2] {
        [
            Action::invoke(ThreadId(t), R, WRITE, Value::Int(v)),
            Action::response(ThreadId(t), R, WRITE, Value::Unit),
        ]
    }

    fn r(t: u32, v: i64) -> [Action; 2] {
        [
            Action::invoke(ThreadId(t), R, READ, Value::Unit),
            Action::response(ThreadId(t), R, READ, Value::Int(v)),
        ]
    }

    #[test]
    fn sequential_register_history_linearizable() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 5));
        let h = History::from_actions(acts);
        assert!(is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn stale_read_after_write_not_linearizable() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 0)); // reads initial value after the write completed
        let h = History::from_actions(acts);
        assert!(!is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn concurrent_write_read_may_return_old_or_new() {
        // write(5) overlaps read: both 0 and 5 are legal.
        for ret in [0, 5] {
            let h = History::from_actions(vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(1), R, WRITE, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(ret)),
            ]);
            assert!(is_linearizable(&h, &Register).unwrap(), "read of {ret} should linearize");
        }
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
            Action::invoke(ThreadId(2), R, READ, Value::Unit),
            Action::response(ThreadId(1), R, WRITE, Value::Unit),
            Action::response(ThreadId(2), R, READ, Value::Int(3)),
        ]);
        assert!(!is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn pending_write_may_take_effect_or_not() {
        // write(5) never responds; a later read may still see it (the
        // completion adds the response) or see 0 (the invocation dropped).
        for ret in [0, 5] {
            let h = History::from_actions(vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(ret)),
            ]);
            assert!(is_linearizable(&h, &Register).unwrap(), "pending write, read {ret}");
        }
    }

    #[test]
    fn witness_is_sequential_trace() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 5));
        let h = History::from_actions(acts);
        let outcome = check_linearizable(&h, &Register).unwrap();
        let witness = outcome.verdict.witness().unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness.elements().iter().all(|e| e.len() == 1));
    }

    #[test]
    fn agrees_with_ca_checker_on_singleton_spec() {
        // Cross-validation: linearizability == CAL with SeqAsCa.
        let histories = vec![
            {
                let mut acts = Vec::new();
                acts.extend(w(1, 5));
                acts.extend(r(2, 5));
                acts
            },
            {
                let mut acts = Vec::new();
                acts.extend(w(1, 5));
                acts.extend(r(2, 0));
                acts
            },
            vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(1), R, WRITE, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(5)),
            ],
        ];
        let ca = SeqAsCa::new(Register);
        for acts in histories {
            let h = History::from_actions(acts);
            let lin = is_linearizable(&h, &Register).unwrap();
            let cal = crate::check::is_cal(&h, &ca).unwrap();
            assert_eq!(lin, cal, "checkers disagree on {h}");
        }
    }

    #[test]
    fn parallel_matches_sequential_across_objects() {
        // Two registers; object o1's write/read pair is independent of R's.
        let o1 = ObjectId(1);
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
            Action::response(ThreadId(1), R, WRITE, Value::Unit),
            Action::invoke(ThreadId(2), o1, WRITE, Value::Int(7)),
            Action::response(ThreadId(2), o1, WRITE, Value::Unit),
            Action::invoke(ThreadId(1), R, READ, Value::Unit),
            Action::response(ThreadId(1), R, READ, Value::Int(5)),
            Action::invoke(ThreadId(2), o1, READ, Value::Unit),
            Action::response(ThreadId(2), o1, READ, Value::Int(7)),
        ]);
        for threads in [1, 2, 4] {
            let options = CheckOptions { threads, ..CheckOptions::default() };
            let outcome = check_linearizable_par_with(&h, &Register, &options).unwrap();
            assert!(outcome.verdict.is_cal(), "threads={threads}: {:?}", outcome.verdict);
            let witness = outcome.verdict.witness().unwrap();
            assert_eq!(witness.len(), 4, "threads={threads}");
            assert!(witness.elements().iter().all(|e| e.len() == 1));
        }
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = History::from_actions(vec![Action::response(ThreadId(1), R, READ, Value::Int(0))]);
        assert!(check_linearizable(&h, &Register).is_err());
    }
}
