//! Classical linearizability checking (Herlihy & Wing), as the baseline the
//! paper generalizes.
//!
//! [`check_linearizable`] implements the Wing–Gong search with Lowe-style
//! memoization of failed `(matched-set, spec-state)` pairs: repeatedly pick
//! a `≺H`-minimal operation, apply it to the sequential specification, and
//! backtrack on failure. Pending invocations may be completed with
//! spec-proposed return values or dropped, exactly as in the CAL checker —
//! linearizability is the singleton-element special case of CAL, and the
//! test-suite cross-validates the two implementations against each other.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::bitset::BitSet;
use crate::check::{panic_message, CheckError, CheckOptions, CheckOutcome, CheckStats, InterruptReason, Verdict};
use crate::history::{History, Span};
use crate::op::Operation;
use crate::spec::{Invocation, SeqSpec};
use crate::trace::{CaElement, CaTrace};

/// Decides whether `history` is linearizable with respect to the sequential
/// specification `spec`, with default options.
///
/// On success the verdict carries the linearization as a [`CaTrace`] of
/// singleton elements (a sequential history in trace form).
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
///
/// # Examples
///
/// ```
/// # use cal_core::{seqlin, Action, History, Method, ObjectId, Operation, ThreadId, Value};
/// # use cal_core::spec::{Invocation, SeqSpec};
/// #[derive(Debug)]
/// struct AnyOp;
/// impl SeqSpec for AnyOp {
///     type State = ();
///     fn initial(&self) {}
///     fn apply(&self, _: &(), _: &Operation) -> Option<()> { Some(()) }
///     fn completions_of(&self, _: &Invocation) -> Vec<Value> { vec![] }
/// }
/// let o = ObjectId(0);
/// let m = Method("noop");
/// let h = History::from_actions(vec![
///     Action::invoke(ThreadId(0), o, m, Value::Unit),
///     Action::response(ThreadId(0), o, m, Value::Unit),
/// ]);
/// assert!(seqlin::check_linearizable(&h, &AnyOp)?.verdict.is_cal());
/// # Ok::<(), cal_core::check::CheckError>(())
/// ```
pub fn check_linearizable<S: SeqSpec>(
    history: &History,
    spec: &S,
) -> Result<CheckOutcome, CheckError> {
    check_linearizable_with(history, spec, &CheckOptions::default())
}

/// Like [`check_linearizable`], with explicit [`CheckOptions`].
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] if the history is not well-formed.
pub fn check_linearizable_with<S: SeqSpec>(
    history: &History,
    spec: &S,
    options: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    let spans = history.try_spans()?;
    let mut search = Search {
        spans: &spans,
        spec,
        options,
        stats: CheckStats::default(),
        failed: HashSet::new(),
        exhausted: false,
        witness: Vec::new(),
        start: Instant::now(),
        ticks: 0,
        interrupted: None,
        panicked: None,
    };
    let mut matched = BitSet::new(spans.len().max(1));
    let initial = catch_unwind(AssertUnwindSafe(|| spec.initial()))
        .map_err(|p| CheckError::SpecPanicked(panic_message(p)))?;
    let found = search.dfs(&mut matched, &initial);
    if let Some(msg) = search.panicked {
        return Err(CheckError::SpecPanicked(msg));
    }
    let verdict = if found {
        Verdict::Cal(CaTrace::from_elements(
            std::mem::take(&mut search.witness).into_iter().map(CaElement::singleton).collect(),
        ))
    } else if let Some(reason) = search.interrupted {
        Verdict::Interrupted { reason }
    } else if search.exhausted {
        Verdict::ResourcesExhausted
    } else {
        Verdict::NotCal
    };
    Ok(CheckOutcome { verdict, stats: search.stats })
}

/// Convenience predicate: `Ok(true)` iff the history is linearizable
/// w.r.t. `spec`.
///
/// # Errors
///
/// Returns [`CheckError::IllFormed`] for ill-formed histories,
/// [`CheckError::SpecPanicked`] when the spec panics, and
/// [`CheckError::Undecided`] when the default node budget runs out before
/// the search decides.
pub fn is_linearizable<S: SeqSpec>(history: &History, spec: &S) -> Result<bool, CheckError> {
    let outcome = check_linearizable(history, spec)?;
    match outcome.verdict {
        Verdict::Cal(_) => Ok(true),
        Verdict::NotCal => Ok(false),
        undecided => Err(CheckError::Undecided(undecided)),
    }
}

/// Poll cadence for deadline/cancellation checks; see the CAL checker.
const POLL_INTERVAL_MASK: u64 = 255;

struct Search<'a, S: SeqSpec> {
    spans: &'a [Span],
    spec: &'a S,
    options: &'a CheckOptions,
    stats: CheckStats,
    failed: HashSet<(BitSet, S::State)>,
    exhausted: bool,
    witness: Vec<Operation>,
    start: Instant,
    ticks: u64,
    interrupted: Option<InterruptReason>,
    panicked: Option<String>,
}

impl<'a, S: SeqSpec> Search<'a, S> {
    fn should_stop(&mut self) -> bool {
        if self.interrupted.is_some() || self.panicked.is_some() {
            return true;
        }
        self.ticks += 1;
        if self.ticks & POLL_INTERVAL_MASK == 0 {
            if let Some(deadline) = self.options.deadline {
                if self.start.elapsed() >= deadline {
                    self.interrupted = Some(InterruptReason::DeadlineExceeded);
                    return true;
                }
            }
            if let Some(cancel) = &self.options.cancel {
                if cancel.is_cancelled() {
                    self.interrupted = Some(InterruptReason::Cancelled);
                    return true;
                }
            }
        }
        false
    }

    fn apply_guarded(&mut self, state: &S::State, op: &Operation) -> Option<S::State> {
        match catch_unwind(AssertUnwindSafe(|| self.spec.apply(state, op))) {
            Ok(next) => next,
            Err(payload) => {
                self.panicked = Some(panic_message(payload));
                None
            }
        }
    }

    fn dfs(&mut self, matched: &mut BitSet, state: &S::State) -> bool {
        if (0..self.spans.len()).all(|i| matched.contains(i) || !self.spans[i].is_complete()) {
            return true;
        }
        if self.should_stop() {
            return false;
        }
        if self.stats.nodes >= self.options.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.stats.nodes += 1;
        if self.options.memoize && self.failed.contains(&(matched.clone(), state.clone())) {
            self.stats.memo_hits += 1;
            return false;
        }
        for i in 0..self.spans.len() {
            if matched.contains(i) {
                continue;
            }
            let is_minimal = (0..self.spans.len()).all(|j| {
                matched.contains(j) || !History::spans_precede(&self.spans[j], &self.spans[i])
            });
            if !is_minimal {
                continue;
            }
            let span = &self.spans[i];
            let candidates: Vec<Operation> = match span.operation() {
                Some(op) => vec![op],
                None => {
                    let inv = Invocation::new(span.thread, span.object, span.method, span.arg);
                    self.spec
                        .completions_of(&inv)
                        .into_iter()
                        .map(|ret| span.operation_with_ret(ret))
                        .collect()
                }
            };
            for op in candidates {
                if self.should_stop() {
                    return false;
                }
                self.stats.elements_tried += 1;
                if let Some(next) = self.apply_guarded(state, &op) {
                    matched.insert(i);
                    self.witness.push(op);
                    if self.dfs(matched, &next) {
                        return true;
                    }
                    self.witness.pop();
                    matched.remove(i);
                }
            }
        }
        if self.options.memoize
            && self.interrupted.is_none()
            && self.panicked.is_none()
            && !self.exhausted
        {
            self.failed.insert((matched.clone(), state.clone()));
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::ids::{Method, ObjectId, ThreadId, Value};
    use crate::spec::SeqAsCa;

    const R: ObjectId = ObjectId(0);
    const WRITE: Method = Method("write");
    const READ: Method = Method("read");

    /// A sequential register: `read` returns the last written value
    /// (initially 0).
    #[derive(Debug)]
    struct Register;

    impl SeqSpec for Register {
        type State = i64;

        fn initial(&self) -> i64 {
            0
        }

        fn apply(&self, state: &i64, op: &Operation) -> Option<i64> {
            match op.method {
                WRITE => {
                    if op.ret != Value::Unit {
                        return None;
                    }
                    op.arg.as_int()
                }
                READ => (op.ret == Value::Int(*state)).then_some(*state),
                _ => None,
            }
        }

        fn completions_of(&self, inv: &Invocation) -> Vec<Value> {
            match inv.method {
                WRITE => vec![Value::Unit],
                READ => (0..8).map(Value::Int).collect(),
                _ => vec![],
            }
        }
    }

    fn w(t: u32, v: i64) -> [Action; 2] {
        [
            Action::invoke(ThreadId(t), R, WRITE, Value::Int(v)),
            Action::response(ThreadId(t), R, WRITE, Value::Unit),
        ]
    }

    fn r(t: u32, v: i64) -> [Action; 2] {
        [
            Action::invoke(ThreadId(t), R, READ, Value::Unit),
            Action::response(ThreadId(t), R, READ, Value::Int(v)),
        ]
    }

    #[test]
    fn sequential_register_history_linearizable() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 5));
        let h = History::from_actions(acts);
        assert!(is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn stale_read_after_write_not_linearizable() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 0)); // reads initial value after the write completed
        let h = History::from_actions(acts);
        assert!(!is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn concurrent_write_read_may_return_old_or_new() {
        // write(5) overlaps read: both 0 and 5 are legal.
        for ret in [0, 5] {
            let h = History::from_actions(vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(1), R, WRITE, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(ret)),
            ]);
            assert!(is_linearizable(&h, &Register).unwrap(), "read of {ret} should linearize");
        }
        let h = History::from_actions(vec![
            Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
            Action::invoke(ThreadId(2), R, READ, Value::Unit),
            Action::response(ThreadId(1), R, WRITE, Value::Unit),
            Action::response(ThreadId(2), R, READ, Value::Int(3)),
        ]);
        assert!(!is_linearizable(&h, &Register).unwrap());
    }

    #[test]
    fn pending_write_may_take_effect_or_not() {
        // write(5) never responds; a later read may still see it (the
        // completion adds the response) or see 0 (the invocation dropped).
        for ret in [0, 5] {
            let h = History::from_actions(vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(ret)),
            ]);
            assert!(is_linearizable(&h, &Register).unwrap(), "pending write, read {ret}");
        }
    }

    #[test]
    fn witness_is_sequential_trace() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        acts.extend(r(2, 5));
        let h = History::from_actions(acts);
        let outcome = check_linearizable(&h, &Register).unwrap();
        let witness = outcome.verdict.witness().unwrap();
        assert_eq!(witness.len(), 2);
        assert!(witness.elements().iter().all(|e| e.len() == 1));
    }

    #[test]
    fn agrees_with_ca_checker_on_singleton_spec() {
        // Cross-validation: linearizability == CAL with SeqAsCa.
        let histories = vec![
            {
                let mut acts = Vec::new();
                acts.extend(w(1, 5));
                acts.extend(r(2, 5));
                acts
            },
            {
                let mut acts = Vec::new();
                acts.extend(w(1, 5));
                acts.extend(r(2, 0));
                acts
            },
            vec![
                Action::invoke(ThreadId(1), R, WRITE, Value::Int(5)),
                Action::invoke(ThreadId(2), R, READ, Value::Unit),
                Action::response(ThreadId(1), R, WRITE, Value::Unit),
                Action::response(ThreadId(2), R, READ, Value::Int(5)),
            ],
        ];
        let ca = SeqAsCa::new(Register);
        for acts in histories {
            let h = History::from_actions(acts);
            let lin = is_linearizable(&h, &Register).unwrap();
            let cal = crate::check::is_cal(&h, &ca).unwrap();
            assert_eq!(lin, cal, "checkers disagree on {h}");
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut acts = Vec::new();
        acts.extend(w(1, 5));
        let h = History::from_actions(acts);
        let outcome =
            check_linearizable_with(&h, &Register, &CheckOptions { max_nodes: 0, ..CheckOptions::default() }).unwrap();
        assert_eq!(outcome.verdict, Verdict::ResourcesExhausted);
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = History::from_actions(vec![Action::response(ThreadId(1), R, READ, Value::Int(0))]);
        assert!(check_linearizable(&h, &Register).is_err());
    }
}
